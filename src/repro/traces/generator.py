"""Standalone spot-price trace generator.

Generates price-change event series ``[(time, price), ...]`` with the
qualitative properties the paper documents for real EC2 markets:

* a mean-reverting base level around ~0.1x the on-demand price;
* Poisson spike arrivals with lognormal magnitude (occasionally far
  above the on-demand price) and lognormal duration;
* the 10x-on-demand bid cap;
* optional cross-market correlation (for Figure 5.1's family and
  cross-zone comparisons).

The full platform simulator (:mod:`repro.ec2`) produces prices
endogenously; this generator is for analyses that only need plausible
price *series* (Figures 2.1, 5.1, 5.3) and for fast app simulations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.rng import RngStream


@dataclass
class TraceConfig:
    """Parameters of one market's synthetic price process."""

    on_demand_price: float = 0.42  # c3.2xlarge Linux us-east-1
    base_fraction: float = 0.10  # mean price as a fraction of on-demand
    reversion: float = 0.05  # mean-reversion strength per step
    volatility: float = 0.08  # log-price noise per step
    spike_rate_per_day: float = 1.2  # Poisson spike arrivals
    spike_magnitude_mu: float = 0.9  # lognormal multiplier (x on-demand)
    spike_magnitude_sigma: float = 0.8
    spike_duration_mean_s: float = 2400.0
    step_seconds: float = 300.0
    floor_fraction: float = 0.03
    cap_multiple: float = 10.0
    diurnal_amplitude: float = 0.10

    def __post_init__(self) -> None:
        if self.on_demand_price <= 0:
            raise ValueError(f"on-demand price must be positive: {self.on_demand_price}")
        if not 0 < self.base_fraction <= 1:
            raise ValueError(f"base fraction must be in (0, 1]: {self.base_fraction}")
        if self.step_seconds <= 0:
            raise ValueError(f"step must be positive: {self.step_seconds}")


@dataclass
class _Spike:
    end: float
    multiple: float  # price multiple (x on-demand) while active


class SpotPriceTraceGenerator:
    """Seeded generator of spot-price event series."""

    def __init__(self, config: TraceConfig, seed: int = 7, name: str = "trace") -> None:
        self.config = config
        self.rng = RngStream(seed, name)
        self._log_level = math.log(config.base_fraction)
        self._spikes: list[_Spike] = []

    def generate(self, duration_seconds: float, start: float = 0.0) -> list[tuple[float, float]]:
        """Generate price-change events over ``[start, start+duration]``."""
        cfg = self.config
        events: list[tuple[float, float]] = []
        last_price: float | None = None
        now = start
        end = start + duration_seconds
        log_base = math.log(cfg.base_fraction)
        spike_prob = cfg.spike_rate_per_day * cfg.step_seconds / 86400.0
        while now <= end:
            # Mean-reverting log-level with diurnal modulation.
            self._log_level += cfg.reversion * (log_base - self._log_level)
            self._log_level += self.rng.normal(0.0, cfg.volatility)
            diurnal = 1.0 + cfg.diurnal_amplitude * math.sin(
                2 * math.pi * now / 86400.0
            )
            fraction = math.exp(self._log_level) * diurnal

            # Spike arrivals and expiry.
            if self.rng.random() < spike_prob:
                multiple = self.rng.lognormal(
                    cfg.spike_magnitude_mu, cfg.spike_magnitude_sigma
                )
                duration = self.rng.lognormal(
                    math.log(cfg.spike_duration_mean_s), 0.8
                )
                self._spikes.append(_Spike(now + duration, multiple))
            self._spikes = [s for s in self._spikes if s.end > now]
            spike_level = max((s.multiple for s in self._spikes), default=0.0)

            multiple_now = max(fraction, spike_level)
            price = cfg.on_demand_price * multiple_now
            price = max(price, cfg.on_demand_price * cfg.floor_fraction)
            price = min(price, cfg.on_demand_price * cfg.cap_multiple)
            price = round(price, 4)
            if price != last_price:
                events.append((now, price))
                last_price = price
            now += cfg.step_seconds
        return events

    def generate_correlated(
        self,
        duration_seconds: float,
        siblings: int,
        correlation: float = 0.5,
        start: float = 0.0,
    ) -> list[list[tuple[float, float]]]:
        """Generate ``siblings`` series sharing a fraction of spikes.

        With probability ``correlation`` a spike is shared (scaled
        per-sibling); otherwise it is private — reproducing the partial
        cross-market correlation of Figure 5.1.
        """
        if not 0.0 <= correlation <= 1.0:
            raise ValueError(f"correlation must be in [0, 1]: {correlation}")
        if siblings < 1:
            raise ValueError(f"need at least one sibling: {siblings}")
        generators = [
            SpotPriceTraceGenerator(
                self.config, seed=self.rng.child(f"sib{i}").seed, name=f"sib{i}"
            )
            for i in range(siblings)
        ]
        base_events = self.generate(duration_seconds, start)
        series = [g.generate(duration_seconds, start) for g in generators]
        if correlation == 0.0:
            return series
        # Blend: overlay scaled copies of the base series' spikes.
        od = self.config.on_demand_price
        out: list[list[tuple[float, float]]] = []
        for i, sibling_events in enumerate(series):
            share_rng = self.rng.child(f"blend{i}")
            blended: list[tuple[float, float]] = []
            base_iter = dict(base_events)
            for t, p in sibling_events:
                base_p = base_iter.get(t, 0.0)
                if base_p > od and share_rng.bernoulli(correlation):
                    p = max(p, round(base_p * share_rng.uniform(0.7, 1.1), 4))
                    p = min(p, od * self.config.cap_multiple)
                blended.append((t, p))
            out.append(blended)
        return out

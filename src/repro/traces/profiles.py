"""Canned trace profiles matching the markets the paper plots."""

from __future__ import annotations

from repro.traces.generator import TraceConfig

#: Profiles keyed by a descriptive name.  Prices are the 2015 Linux
#: on-demand prices of the corresponding instance types.
TRACE_PROFILES: dict[str, TraceConfig] = {
    # Figure 2.1 / 5.1: c3.2xlarge in us-east-1d — volatile, spikes to
    # several times the on-demand price.
    "c3.2xlarge-us-east-1d": TraceConfig(
        on_demand_price=0.42,
        spike_rate_per_day=1.6,
        spike_magnitude_mu=1.1,
        spike_magnitude_sigma=0.9,
    ),
    # Larger family members: calmer (the inversion source in Fig 5.1a).
    "c3.4xlarge-us-east-1d": TraceConfig(
        on_demand_price=0.84,
        spike_rate_per_day=0.5,
        spike_magnitude_mu=0.4,
        spike_magnitude_sigma=0.6,
    ),
    "c3.8xlarge-us-east-1d": TraceConfig(
        on_demand_price=1.68,
        spike_rate_per_day=0.4,
        spike_magnitude_mu=0.3,
        spike_magnitude_sigma=0.6,
    ),
    # Figure 5.2: c3.8xlarge us-east-1e — moderately volatile.
    "c3.8xlarge-us-east-1e": TraceConfig(
        on_demand_price=1.68,
        spike_rate_per_day=0.8,
        spike_magnitude_mu=0.0,
        spike_magnitude_sigma=0.7,
        volatility=0.12,
    ),
    # A stable market (for contrast and query-API examples).
    "m3.medium-us-west-2a": TraceConfig(
        on_demand_price=0.067,
        spike_rate_per_day=0.1,
        spike_magnitude_mu=-0.5,
        spike_magnitude_sigma=0.4,
        volatility=0.03,
    ),
    # Under-provisioned market (sa-east-1 style).
    "c3.large-sa-east-1a": TraceConfig(
        on_demand_price=0.168,
        spike_rate_per_day=2.5,
        spike_magnitude_mu=1.2,
        spike_magnitude_sigma=1.0,
    ),
}


def profile(name: str) -> TraceConfig:
    """Fetch a profile by name (KeyError lists the valid names)."""
    try:
        return TRACE_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown trace profile {name!r}; valid: {sorted(TRACE_PROFILES)}"
        ) from None

"""Trace persistence: CSV in the shape of EC2's price history export."""

from __future__ import annotations

import csv
from pathlib import Path


def save_trace_csv(
    path: str | Path, events: list[tuple[float, float]], market: str = ""
) -> int:
    """Write (timestamp, price) events; returns the row count."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["timestamp", "spot_price", "market"])
        for when, price in events:
            writer.writerow([f"{when:.1f}", f"{price:.4f}", market])
    return len(events)


def load_trace_csv(path: str | Path) -> list[tuple[float, float]]:
    """Read events written by :func:`save_trace_csv`."""
    events: list[tuple[float, float]] = []
    with Path(path).open(newline="") as handle:
        for row in csv.DictReader(handle):
            events.append((float(row["timestamp"]), float(row["spot_price"])))
    if any(t1 > t2 for (t1, _), (t2, _) in zip(events, events[1:])):
        raise ValueError(f"{path}: events out of time order")
    return events

"""Synthetic spot-price trace generation and persistence.

The paper's price analyses (Figures 2.1, 5.1, 5.2, 5.3) rely on
three-month spot price histories from EC2's public feed; offline we
generate statistically similar traces: a mean-reverting base price with
a heavy-tailed spike process, per-market regime profiles.
"""

from repro.traces.generator import SpotPriceTraceGenerator, TraceConfig
from repro.traces.io import load_trace_csv, save_trace_csv
from repro.traces.profiles import TRACE_PROFILES, profile

__all__ = [
    "SpotPriceTraceGenerator",
    "TraceConfig",
    "TRACE_PROFILES",
    "profile",
    "save_trace_csv",
    "load_trace_csv",
]

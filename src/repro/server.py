"""The network serving tier: SpotLight on the wire.

:class:`SpotLightServer` puts a :class:`~repro.core.frontend.QueryFrontend`
behind a stdlib-only ``asyncio`` HTTP/1.1 endpoint:

* ``POST /query`` — the frontend's dict request/response schema as
  JSON (``{"query": <name>, "params": {...}}``);
* ``POST /batch`` — up to :data:`MAX_BATCH_QUERIES` queries in one
  request (``{"queries": [...]}``), answered in one response whose
  per-query results are byte-identical to the equivalent sequence of
  single ``/query`` calls;
* ``GET /healthz`` — liveness (never rate-limited);
* ``GET /stats`` — serving counters, per-endpoint latency histograms,
  and the frontend's cache statistics;
* ``GET /watch`` — when the server follows a recorder (see
  :mod:`repro.replication`), a chunked-JSON change feed of replication
  events (price spikes, revocations, availability transitions) with
  periodic heartbeats and a resumable ``since_seq`` cursor.

It is shaped for real traffic, not demos:

* **keep-alive** connection handling with per-request read timeouts,
  a request body size cap, and graceful shutdown (the listener stops,
  in-flight requests drain, idle connections are closed);
* **single-flight coalescing** — identical in-flight ``/query``
  requests (canonicalized by :meth:`QueryFrontend.request_key`) share
  one engine computation.  The frontend's TTL cache only dedupes
  *completed* results; under a thundering herd of identical cold
  queries the coalescing map is what keeps the engine from computing
  the same answer K times.  Batch sub-queries go through the same
  map, so K identical sub-queries in one batch cost one engine call;
* a **zero-re-serialization hot path**: queries are answered from the
  frontend's wire byte cache (:meth:`QueryFrontend.handle_wire`), so a
  cache hit is a dict lookup plus one ``writer.write`` of preassembled
  header and body bytes — no ``json.dumps`` per hit, and no
  thread-pool round-trip (the loop takes the frontend lock
  opportunistically and falls back to the executor only on a miss);
* **conditional requests**: every OK ``/query`` response carries a
  strong ``ETag``; a request whose ``If-None-Match`` matches is
  answered ``304 Not Modified`` with no body (counted in
  ``not_modified``).  Tags are content-hashed with an invalidation
  generation, so repeat pollers keep getting 304s across TTL
  refreshes but never across :meth:`QueryFrontend.invalidate`;
* **token-bucket admission control** per client host (the same bucket
  idiom the simulated EC2 substrate uses for API rate limits),
  answering ``429`` with a ``Retry-After`` hint when a client
  overruns its budget — a batch of N queries consumes N tokens;
* engine work runs on a worker thread (the event loop never blocks on
  a cold query), serialized by a lock because the frontend's cache is
  not thread-safe — coalescing and the TTL cache keep that serialization
  cheap.

:class:`BackgroundServer` runs the same server on a daemon thread with
its own event loop, for blocking callers (tests, benchmarks, examples).
One server is one event loop — one core; :mod:`repro.server_pool`
pre-forks several of them onto a shared ``SO_REUSEPORT`` address when
throughput should scale across cores.
"""

from __future__ import annotations

import asyncio
import bisect
import contextlib
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Awaitable, Callable
from urllib.parse import parse_qs

from repro.core.frontend import (
    STACKABLE_QUERIES,
    STACKED_BATCH_MIN,
    QueryFrontend,
    QueryRequest,
    WireResponse,
    assemble_batch_body,
    wire_encode,
)
from repro.ec2.limits import TokenBucket

#: Admission-control defaults: generous enough that a well-behaved
#: client never sees them, small enough that one host cannot starve
#: the rest of the fleet.
DEFAULT_RATE_PER_SECOND = 500.0
DEFAULT_BURST = 1000.0

DEFAULT_MAX_REQUEST_BYTES = 1 << 20
DEFAULT_REQUEST_TIMEOUT = 30.0
DEFAULT_SHUTDOWN_GRACE = 5.0

#: Overall budget for reading ONE request (request line + headers +
#: body) once its first byte has arrived.  ``request_timeout`` bounds
#: how long an idle keep-alive connection may sit quiet between
#: requests; this bounds how long a peer may *dribble* — a slow-loris
#: client that trickles one header byte per second resets a per-read
#: timeout forever but cannot outrun a deadline.
DEFAULT_READ_DEADLINE = 10.0

#: Header-section guards (the body has ``max_request_bytes``; without
#: these a peer could stream headers forever).
MAX_HEADER_LINES = 100

#: Idle per-client admission buckets are swept once the map passes this
#: size, so a parade of one-shot client IPs cannot grow memory forever.
MAX_CLIENT_BUCKETS = 4096

#: Upper bound on queries per ``/batch`` request.  Combined with the
#: body-size cap this bounds the work one request can pin; a batch of N
#: also consumes N admission tokens, so batching cannot outrun the
#: per-client rate limit.
MAX_BATCH_QUERIES = 256

#: Latency histogram bucket upper bounds, in seconds (the last bucket
#: is open-ended).  Spans 100 µs cache hits to multi-second cold scans.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

_REASONS = {
    200: "OK", 304: "Not Modified", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Preassembled response heads, one per (status, keep_alive): every
#: header byte that does not vary per response is baked at import, so
#: writing a response is head + content-length digits + extra header
#: lines + blank line + body — no per-request string formatting.
_RESPONSE_HEADS = {
    (status, keep_alive): (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"Content-Length: "
    ).encode("latin-1")
    for status, reason in _REASONS.items()
    for keep_alive in (True, False)
}

#: Content-Length values for every body size a cached answer plausibly
#: has, formatted once at import.
_CONTENT_LENGTHS = tuple(b"%d" % n for n in range(8192))


def _content_length(n: int) -> bytes:
    return _CONTENT_LENGTHS[n] if n < 8192 else b"%d" % n


#: The cluster counter schema — single source of truth shared by
#: :meth:`SpotLightServer._board_counters`, the multi-worker stats
#: board (``repro.server_pool.StatsBoard``), and the client SDK's
#: single-process ``cluster_stats`` fallback.
CLUSTER_COUNTER_FIELDS = (
    "requests", "queries", "errors", "coalesced", "throttled",
    "slow_shed", "cache_hits", "cache_misses", "connections",
    "batch_queries", "not_modified", "wire_generation", "replica_lag",
)

#: The subset of :data:`CLUSTER_COUNTER_FIELDS` that are gauges
#: (point-in-time readings), not monotone counters: cluster aggregation
#: takes their max across worker rows instead of summing.
CLUSTER_GAUGE_FIELDS = frozenset({"wire_generation", "replica_lag"})


class LatencyHistogram:
    """Fixed-bucket latency histogram with quantile estimation."""

    def __init__(self) -> None:
        self.count = 0
        self.total_seconds = 0.0
        self.bucket_counts = [0] * (len(LATENCY_BUCKETS) + 1)

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        self.bucket_counts[bisect.bisect_left(LATENCY_BUCKETS, seconds)] += 1

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile sample (the
        last finite bound for the open-ended overflow bucket)."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            seen += bucket_count
            if seen >= rank:
                return LATENCY_BUCKETS[min(index, len(LATENCY_BUCKETS) - 1)]
        return LATENCY_BUCKETS[-1]

    def snapshot(self) -> dict[str, object]:
        return {
            "count": self.count,
            "total_seconds": round(self.total_seconds, 6),
            "mean_seconds": (
                round(self.total_seconds / self.count, 6) if self.count else 0.0
            ),
            "p50_seconds": self.quantile(0.50),
            "p99_seconds": self.quantile(0.99),
            "buckets": {
                **{
                    f"le_{bound:g}": self.bucket_counts[i]
                    for i, bound in enumerate(LATENCY_BUCKETS)
                },
                "inf": self.bucket_counts[-1],
            },
        }


class _EndpointStats:
    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.latency = LatencyHistogram()

    def snapshot(self) -> dict[str, object]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "latency": self.latency.snapshot(),
        }


class _HttpError(Exception):
    """An HTTP-level failure (malformed framing, oversized body, ...)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class _IdleTimeout(Exception):
    """A keep-alive connection idled past the request timeout."""


class SpotLightServer:
    """An asyncio HTTP/1.1 JSON endpoint over a query frontend."""

    def __init__(
        self,
        frontend: QueryFrontend,
        host: str = "127.0.0.1",
        port: int = 0,
        rate_per_second: float = DEFAULT_RATE_PER_SECOND,
        burst: float = DEFAULT_BURST,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        read_deadline: float = DEFAULT_READ_DEADLINE,
        shutdown_grace: float = DEFAULT_SHUTDOWN_GRACE,
        clock: Callable[[], float] = time.monotonic,
        reuse_port: bool = False,
        worker_id: int = 0,
        stats_board: "object | None" = None,
        replica: "object | None" = None,
        frontend_lock: "threading.Lock | None" = None,
    ) -> None:
        self.frontend = frontend
        self.host = host
        self.port = port
        self.reuse_port = reuse_port
        self.worker_id = worker_id
        # A cross-process counter board (see repro.server_pool): each
        # pre-forked worker publishes its row after every request, and
        # /stats folds the rows into a cluster-wide aggregate.
        self._stats_board = stats_board
        self.rate_per_second = rate_per_second
        self.burst = burst
        self.max_request_bytes = max_request_bytes
        self.request_timeout = request_timeout
        self.read_deadline = read_deadline
        self.shutdown_grace = shutdown_grace
        self._clock = clock
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._inflight: dict[str, asyncio.Future] = {}
        self._buckets: dict[str, TokenBucket] = {}
        # A ReplicaTailer (repro.replication) when this server follows
        # a recorder's directory: source of the /watch change feed, the
        # replica-lag gauge, and the "replica-stale" health detail.
        self.replica = replica
        # The frontend mutates its cache with no locking; one worker
        # lock serializes engine calls across connections.  A follower
        # passes its tailer's lock here so replicated inserts and
        # engine reads serialize on the same mutex.
        self._frontend_lock = (
            frontend_lock if frontend_lock is not None else threading.Lock()
        )
        self._executor = ThreadPoolExecutor(
            max_workers=4, thread_name_prefix="spotlight-query"
        )
        self._closing = False
        self._started_at = 0.0
        self.connections_accepted = 0
        self.coalesced = 0
        self.throttled = 0
        self.slow_shed = 0
        self.batch_queries = 0
        self.not_modified = 0
        self.watch_connections = 0
        self.watch_events = 0
        # Pre-encoded header lines appended to every response (e.g. a
        # router's X-Shard-Epoch); empty for a plain server.
        self._extra_headers: bytes = b""
        self._endpoints: dict[str, _EndpointStats] = {
            "/query": _EndpointStats(),
            "/batch": _EndpointStats(),
            "/healthz": _EndpointStats(),
            "/stats": _EndpointStats(),
        }

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (resolves ``port=0``).

        With ``reuse_port`` the listener joins an ``SO_REUSEPORT``
        group: several worker processes bind the same address and the
        kernel spreads incoming connections across them.
        """
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port,
            reuse_port=self.reuse_port or None,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = self._clock()

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain in-flight requests
        for up to ``shutdown_grace`` seconds, then close stragglers."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = {task for task in self._connections if not task.done()}
        if pending:
            _, pending = await asyncio.wait(pending, timeout=self.shutdown_grace)
        for task in pending:  # idle keep-alive readers, hung peers
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._executor.shutdown(wait=True)

    # -- connection handling ------------------------------------------------
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_accepted += 1
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        client_host = peer[0] if isinstance(peer, tuple) else "unknown"
        try:
            while not self._closing:
                try:
                    request = await self._read_request(reader)
                except _IdleTimeout:
                    break  # quiet peer between requests: just close
                except asyncio.TimeoutError:
                    # Stalled or dribbling mid-request (slow-loris):
                    # shed the connection rather than hold it open.
                    self.slow_shed += 1
                    await self._write_response(
                        writer, 408,
                        wire_encode(
                            _error_body("timeout", "request read timed out")
                        ),
                        keep_alive=False,
                    )
                    break
                except _HttpError as exc:
                    await self._write_response(
                        writer, exc.status,
                        wire_encode(_error_body("http-error", exc.message)),
                        keep_alive=False,
                    )
                    # Lingering close: swallow what the peer already
                    # sent so closing on unread input doesn't RST the
                    # error response out from under them.
                    with contextlib.suppress(Exception):
                        await asyncio.wait_for(
                            reader.read(self.max_request_bytes), 0.25
                        )
                    break
                if request is None:  # clean EOF between requests
                    break
                method, target, body, keep_alive, headers = request
                path, _, query = target.partition("?")
                keep_alive = keep_alive and not self._closing
                if path == "/watch":
                    # A long-lived chunked stream, not a framed
                    # request/response — it owns the connection.
                    await self._handle_watch(writer, method, query)
                    break
                status, payload, extra = await self._dispatch(
                    method, path, body, headers, client_host
                )
                await self._write_response(
                    writer, status, payload,
                    keep_alive=keep_alive, extra=extra,
                    include_body=method != "HEAD",
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes, bool, dict[str, str]] | None:
        """Read one framed request; None on clean EOF before a request.

        The wait for the request's *first byte* is the idle keep-alive
        timeout (``request_timeout``).  From that byte on, the whole
        request — line, headers, body — must arrive within
        ``read_deadline``: the rest of the read runs under ONE
        ``wait_for`` (on 3.11 every ``wait_for`` spawns a task, so the
        old per-read deadline cost several task spin-ups per request),
        and a peer dribbling one byte per read still cannot hold the
        connection past the deadline.
        """
        try:
            first = await asyncio.wait_for(
                reader.read(1), self.request_timeout
            )
        except asyncio.TimeoutError:
            raise _IdleTimeout() from None
        if not first:
            return None
        return await asyncio.wait_for(
            self._read_rest(reader, first), self.read_deadline
        )

    async def _read_rest(
        self, reader: asyncio.StreamReader, first: bytes
    ) -> tuple[str, str, bytes, bool, dict[str, str]]:
        try:
            request_line = first + await reader.readline()
        except ValueError:  # StreamReader line-length limit overrun
            raise _HttpError(431, "request line too long") from None
        try:
            method, target, version = request_line.decode("latin-1").split()
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers: dict[str, str] = {}
        header_lines = 0
        while True:
            # Count lines, not dict entries: repeats of one header name
            # collapse in the dict but still arrive on the wire.
            header_lines += 1
            if header_lines > MAX_HEADER_LINES:
                raise _HttpError(431, "too many header fields")
            try:
                line = await reader.readline()
            except ValueError:
                raise _HttpError(431, "header line too long") from None
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise _HttpError(400, "truncated headers")
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        try:
            content_length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if content_length < 0:
            raise _HttpError(400, "bad Content-Length")
        if content_length > self.max_request_bytes:
            raise _HttpError(
                413,
                f"request body of {content_length} bytes exceeds the "
                f"{self.max_request_bytes} byte limit",
            )
        body = b""
        if content_length:
            body = await reader.readexactly(content_length)
        keep_alive = (
            headers.get("connection", "").lower() != "close"
            and version.upper() != "HTTP/1.0"
        )
        return method.upper(), target, body, keep_alive, headers

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        keep_alive: bool,
        extra: bytes = b"",
        include_body: bool = True,
    ) -> None:
        # A HEAD response advertises the GET body's length but must not
        # send the body itself, or the keep-alive stream desyncs.
        # ``extra`` is zero or more complete header lines (each ending
        # CRLF), pre-encoded by the dispatch path.
        writer.write(
            _RESPONSE_HEADS[(status, keep_alive)]
            + _content_length(len(body)) + b"\r\n" + extra + b"\r\n"
            + (body if include_body else b"")
        )
        await writer.drain()

    # -- routing ------------------------------------------------------------
    async def _dispatch(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: dict[str, str],
        client_host: str,
    ) -> tuple[int, bytes, bytes]:
        """Route one request; returns ``(status, body_bytes, extra)``
        where ``extra`` is pre-encoded additional header lines."""
        endpoint = self._endpoints.get(path)
        if endpoint is None:
            return (
                404,
                wire_encode(
                    _error_body("not-found", f"no such endpoint: {path}")
                ),
                b"",
            )
        started = self._clock()
        endpoint.requests += 1
        extra = b""
        try:
            if path == "/query":
                if method != "POST":
                    status, payload = 405, wire_encode(_error_body(
                        "method-not-allowed", "use POST for /query"
                    ))
                else:
                    status, payload, extra = await self._handle_query(
                        body, headers, client_host
                    )
            elif path == "/batch":
                if method != "POST":
                    status, payload = 405, wire_encode(_error_body(
                        "method-not-allowed", "use POST for /batch"
                    ))
                else:
                    status, payload, extra = await self._handle_batch(
                        body, client_host
                    )
            elif method not in ("GET", "HEAD"):
                status, payload = 405, wire_encode(_error_body(
                    "method-not-allowed", f"use GET for {path}"
                ))
            elif path == "/healthz":
                health = self._healthz()
                if asyncio.iscoroutine(health):
                    # A router's health probe fans out to its shards.
                    health = await health
                status, payload = 200, wire_encode(health)
            elif path == "/stats":
                status, payload = 200, wire_encode(self.stats())
            else:  # a subclass-registered GET endpoint (e.g. /shards)
                status, payload = self._handle_extra_get(path)
        except Exception as exc:  # last-ditch: never drop the connection
            status, payload = 500, wire_encode(_error_body(
                "internal-error", f"{type(exc).__name__}: {exc}"
            ))
        finally:
            endpoint.latency.observe(self._clock() - started)
        if status >= 400:
            endpoint.errors += 1
        if self._stats_board is not None:
            self._stats_board.publish(self.worker_id, self._board_counters())
        if self._extra_headers:
            extra = extra + self._extra_headers
        return status, payload, extra

    def _handle_extra_get(self, path: str) -> tuple[int, bytes]:
        """GET handler for endpoints a subclass added to
        ``self._endpoints`` beyond the built-in four.  The base server
        registers none, so this is unreachable until a subclass both
        registers a path and forgets to override this."""
        return 404, wire_encode(
            _error_body("not-found", f"no such endpoint: {path}")
        )

    def _healthz(self) -> dict:
        """Liveness plus — for pool workers — cluster degradation.

        A worker always answers 200 (it is, after all, alive); the
        ``status`` string escalates to ``"degraded"`` when the pool
        supervisor reports dead or budget-exhausted workers, so health
        checks see trouble even though the surviving workers answer.
        """
        health_status = "shutting-down" if self._closing else "serving"
        detail: list[str] = []
        payload: dict[str, object] = {
            "ok": True,
            "uptime_seconds": round(self._clock() - self._started_at, 3),
        }
        pool_health = getattr(self._stats_board, "health", None)
        if callable(pool_health):
            pool = pool_health()
            if pool.get("workers"):
                payload["pool"] = pool
                if not self._closing and pool["alive"] < pool["workers"]:
                    health_status = "degraded"
                    detail.append("worker-dead")
                if not self._closing and pool["failed"]:
                    health_status = "degraded"
                    detail.append("worker-failed")
        if self.replica is not None:
            try:
                replica = self.replica.health()
            except Exception as exc:
                replica = {"error": f"{type(exc).__name__}: {exc}"}
            payload["replica"] = replica
            if not self._closing and replica.get("stale"):
                health_status = "degraded"
                detail.append("replica-stale")
        payload["status"] = health_status
        # ``detail`` names *why* a degrade happened — "worker-dead" is a
        # supervision failure, "replica-stale" is replication lag — so
        # operators can tell them apart from one probe.
        payload["detail"] = detail
        return payload

    def _board_counters(self) -> dict[str, float]:
        """This worker's running totals, in stats-board schema.

        Keyed off ``CLUSTER_COUNTER_FIELDS`` so schema drift fails
        loudly (KeyError on the first request) instead of silently
        publishing zeros for a forgotten field.
        """
        values = {
            "requests": sum(e.requests for e in self._endpoints.values()),
            "queries": self._endpoints["/query"].requests,
            "errors": sum(e.errors for e in self._endpoints.values()),
            "coalesced": self.coalesced,
            "throttled": self.throttled,
            "slow_shed": self.slow_shed,
            "cache_hits": self.frontend.hits,
            "cache_misses": self.frontend.misses,
            "connections": self.connections_accepted,
            "batch_queries": self.batch_queries,
            "not_modified": self.not_modified,
            "wire_generation": self.frontend.generation,
            "replica_lag": self._replica_lag(),
        }
        return {field: values[field] for field in CLUSTER_COUNTER_FIELDS}

    def _replica_lag(self) -> int:
        """The cheap per-request lag gauge (cached watermark; /healthz
        and /stats re-read the watermark for the authoritative value)."""
        if self.replica is None:
            return 0
        try:
            return int(self.replica.health(fresh=False)["lag"])
        except Exception:
            return 0

    # -- /query: admission + single flight ----------------------------------
    def _admit(self, client_host: str, tokens: float = 1.0) -> float | None:
        """None if the request may proceed, else a retry-after hint.

        A batch consumes one token per sub-query, so the per-client
        rate limit holds regardless of how queries are framed.
        """
        bucket = self._buckets.get(client_host)
        if bucket is None:
            if len(self._buckets) >= MAX_CLIENT_BUCKETS:
                self._sweep_idle_buckets()
            bucket = TokenBucket(self._clock, self.rate_per_second, self.burst)
            self._buckets[client_host] = bucket
        if bucket.try_consume(tokens):
            return None
        return bucket.seconds_until_available(tokens)

    def _sweep_idle_buckets(self) -> None:
        """Drop buckets that have refilled to full burst (their client
        has been idle long enough to carry no admission state), then —
        if every client is somehow active — oldest-first so the map
        stays bounded even under synthetic client-address floods."""
        idle = [
            host for host, bucket in self._buckets.items()
            if bucket.available >= bucket.burst
        ]
        for host in idle:
            del self._buckets[host]
        while len(self._buckets) >= MAX_CLIENT_BUCKETS:
            del self._buckets[next(iter(self._buckets))]

    def _throttle_response(
        self, client_host: str, retry_after: float
    ) -> tuple[int, bytes, bytes]:
        self.throttled += 1
        body = wire_encode({
            "ok": False,
            "error": {
                "code": "throttled",
                "message": (
                    f"client {client_host} exceeded "
                    f"{self.rate_per_second:g} queries/s"
                ),
                "retry_after": round(retry_after, 3),
            },
        })
        return 429, body, f"Retry-After: {retry_after:.3f}\r\n".encode("latin-1")

    async def _handle_query(
        self, body: bytes, headers: dict[str, str], client_host: str
    ) -> tuple[int, bytes, bytes]:
        retry_after = self._admit(client_host)
        if retry_after is not None:
            return self._throttle_response(client_host, retry_after)
        try:
            request = json.loads(body)
        except json.JSONDecodeError as exc:
            return (
                400,
                wire_encode(
                    _error_body("bad-request", f"body is not JSON: {exc}")
                ),
                b"",
            )
        if not isinstance(request, dict):
            return (
                400,
                wire_encode(
                    _error_body("bad-request", "request must be an object")
                ),
                b"",
            )
        wire = await self._coalesced_wire(QueryRequest.from_dict(request))
        if wire.etag is None:
            return wire.status, wire.body, b""
        etag_line = b"ETag: " + wire.etag.encode("latin-1") + b"\r\n"
        if self._etag_matches(headers.get("if-none-match"), wire.etag):
            self.not_modified += 1
            return 304, b"", etag_line
        return wire.status, wire.body, etag_line

    @staticmethod
    def _etag_matches(if_none_match: str | None, etag: str) -> bool:
        if if_none_match is None:
            return False
        if if_none_match == etag or if_none_match == "*":
            return True
        return etag in (tag.strip() for tag in if_none_match.split(","))

    async def _handle_batch(
        self, body: bytes, client_host: str
    ) -> tuple[int, bytes, bytes]:
        """N queries, one request.  Each sub-query runs through the same
        wire cache and single-flight map as ``/query``, so the
        ``results`` array is byte-identical to what the equivalent
        sequence of single calls would have returned — and K identical
        sub-queries cost one engine call."""
        try:
            parsed = json.loads(body)
        except json.JSONDecodeError as exc:
            return (
                400,
                wire_encode(
                    _error_body("bad-request", f"body is not JSON: {exc}")
                ),
                b"",
            )
        queries = parsed.get("queries") if isinstance(parsed, dict) else parsed
        if not isinstance(queries, list) or not queries:
            return (
                400,
                wire_encode(_error_body(
                    "bad-request",
                    'batch body must be {"queries": [...]} with at least '
                    "one query",
                )),
                b"",
            )
        if len(queries) > MAX_BATCH_QUERIES:
            return (
                400,
                wire_encode(_error_body(
                    "bad-request",
                    f"batch of {len(queries)} exceeds the "
                    f"{MAX_BATCH_QUERIES} query limit",
                )),
                b"",
            )
        retry_after = self._admit(client_host, tokens=float(len(queries)))
        if retry_after is not None:
            return self._throttle_response(client_host, retry_after)
        self.batch_queries += len(queries)
        results = await self._execute_batch(queries)
        return 200, assemble_batch_body([wire.body for wire in results]), b""

    async def _execute_batch(self, queries: list) -> list[WireResponse]:
        """Resolve an admitted batch to per-query responses, in order.

        Enough distinct cold stackable point queries are answered by
        one stacked kernel pass (:meth:`QueryFrontend.stacked_wire`);
        everything else is dispatched concurrently, and duplicates
        coalesce on the in-flight map (the leader registers its future
        before first awaiting, so in-batch duplicates deterministically
        follow it).  gather preserves order.  A router subclass
        overrides this to split the batch by owning shard.
        """
        requests = [
            QueryRequest.from_dict(item) if isinstance(item, dict) else None
            for item in queries
        ]
        stacked: dict[str, WireResponse] = {}
        stackable = [
            request for request in requests
            if request is not None
            and isinstance(request.query, str)
            and request.query in STACKABLE_QUERIES
        ]
        if len(stackable) >= STACKED_BATCH_MIN:
            loop = asyncio.get_running_loop()
            stacked = await loop.run_in_executor(
                self._executor, self._locked_stacked_wire, stackable
            )
        coros = []
        for request in requests:
            if request is None:
                coros.append(self._bad_subquery())
                continue
            leader = stacked.pop(request.key, None)
            if leader is not None:
                coros.append(self._ready_wire(leader))
            else:
                coros.append(self._coalesced_wire(request))
        return await asyncio.gather(*coros)

    async def _ready_wire(self, wire: WireResponse) -> WireResponse:
        return wire

    async def _bad_subquery(self) -> WireResponse:
        body = wire_encode(_error_body("bad-request", "request must be an object"))
        return WireResponse(400, body, None, False, body)

    async def _coalesced_wire(self, request: QueryRequest) -> WireResponse:
        """Serve one query as wire bytes, sharing one computation
        between identical in-flight requests.

        The hot path never leaves the event loop: if the frontend lock
        is free (it almost always is — holders are cold engine calls),
        a wire-cache hit is answered inline instead of paying a
        thread-pool round-trip.
        """
        key = request.key
        if self._frontend_lock.acquire(blocking=False):
            try:
                hit = self.frontend.wire_lookup(key)
            finally:
                self._frontend_lock.release()
            if hit is not None:
                return hit
        loop = asyncio.get_running_loop()
        leader_future = self._inflight.get(key)
        if leader_future is not None:
            self.coalesced += 1
            leader: WireResponse = await asyncio.shield(leader_future)
            return leader.as_follower()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        try:
            response = await self._compute_wire(request)
            future.set_result(response)
        except BaseException as exc:
            future.set_exception(exc)
            # Followers re-raise from the shared future; retrieving the
            # exception here keeps it from ever counting as unobserved.
            future.exception()
            raise
        finally:
            del self._inflight[key]
        return response

    async def _compute_wire(self, request: QueryRequest) -> WireResponse:
        """Compute one uncached query as a single-flight leader.  The
        base server runs the engine on the thread pool under the
        frontend lock; a router overrides this with shard fan-out."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, self._locked_handle_wire, request
        )

    def _locked_handle_wire(self, request: QueryRequest) -> WireResponse:
        with self._frontend_lock:
            return self.frontend.handle_wire(request)

    def _locked_stacked_wire(
        self, requests: list[QueryRequest]
    ) -> dict[str, WireResponse]:
        with self._frontend_lock:
            return self.frontend.stacked_wire(requests)

    # -- /watch: the chunked change feed -------------------------------------
    async def _handle_watch(
        self, writer: asyncio.StreamWriter, method: str, query: str
    ) -> None:
        """Stream the replica's change feed as chunked JSON lines.

        The stream opens with a hello frame
        (``{"watch": true, "since_seq": N, "latest_seq": L}``), then
        carries one JSON object per event.  ``?since_seq=N`` resumes
        after cursor N (omitted: from the live tail); a cursor that has
        fallen off the bounded ring gets an explicit
        ``{"gap": true, ...}`` marker before the oldest retained event
        — bounded resumability, never silent loss.  Heartbeat frames
        every ``?heartbeat=`` seconds (default 5) keep idle streams
        distinguishable from dead ones.
        """
        feed = getattr(self.replica, "feed", None)
        if method not in ("GET", "HEAD") or feed is None:
            status, code, message = (
                (405, "method-not-allowed", "use GET for /watch")
                if feed is not None
                else (404, "not-found",
                      "no change feed: this server does not follow a "
                      "recorder (start it with --follow)")
            )
            await self._write_response(
                writer, status, wire_encode(_error_body(code, message)),
                keep_alive=False,
            )
            return
        try:
            params = parse_qs(query)
            since = (
                int(params["since_seq"][0]) if "since_seq" in params else None
            )
            heartbeat = float(params.get("heartbeat", ["5.0"])[0])
        except (ValueError, IndexError):
            await self._write_response(
                writer, 400,
                wire_encode(_error_body(
                    "bad-request", "since_seq and heartbeat must be numbers"
                )),
                keep_alive=False,
            )
            return
        heartbeat = min(max(heartbeat, 0.2), 60.0)
        cursor = feed.latest_seq if since is None else max(int(since), 0)
        self.watch_connections += 1
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/json\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n"
        )
        try:
            await self._watch_stream(writer, feed, cursor, heartbeat)
            writer.write(b"0\r\n\r\n")  # clean end of stream
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # subscriber went away mid-stream

    @staticmethod
    def _watch_chunk(payload: dict) -> bytes:
        data = wire_encode(payload) + b"\n"
        return b"%x\r\n%s\r\n" % (len(data), data)

    async def _watch_stream(
        self,
        writer: asyncio.StreamWriter,
        feed: "object",
        cursor: int,
        heartbeat: float,
    ) -> None:
        writer.write(self._watch_chunk(
            {"watch": True, "since_seq": cursor, "latest_seq": feed.latest_seq}
        ))
        await writer.drain()
        last_write = self._clock()
        poll = min(0.1, heartbeat / 4)
        while not self._closing:
            events, gap = feed.since(cursor)
            if gap:
                writer.write(self._watch_chunk(
                    {"gap": True, "oldest_seq": feed.oldest_seq}
                ))
            if events:
                for event in events:
                    writer.write(self._watch_chunk(event))
                    cursor = event["seq"]
                self.watch_events += len(events)
                last_write = self._clock()
                await writer.drain()
                continue
            if self._clock() - last_write >= heartbeat:
                writer.write(self._watch_chunk(
                    {"heartbeat": True, "seq": feed.latest_seq}
                ))
                last_write = self._clock()
                await writer.drain()
            await asyncio.sleep(poll)

    # -- stats ---------------------------------------------------------------
    def stats(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "ok": True,
            "worker": self.worker_id,
            "uptime_seconds": round(self._clock() - self._started_at, 3),
            "connections_accepted": self.connections_accepted,
            "open_connections": len(self._connections),
            "coalesced": self.coalesced,
            "throttled": self.throttled,
            "slow_shed": self.slow_shed,
            "batch_queries": self.batch_queries,
            "not_modified": self.not_modified,
            "clients": len(self._buckets),
            "endpoints": {
                path: endpoint.snapshot()
                for path, endpoint in self._endpoints.items()
            },
            "frontend": self.frontend.stats(),
            "watch": {
                "connections": self.watch_connections,
                "events_sent": self.watch_events,
            },
        }
        if self.replica is not None:
            try:
                payload["replica"] = self.replica.stats()
            except Exception as exc:
                payload["replica"] = {
                    "error": f"{type(exc).__name__}: {exc}"
                }
        if self._stats_board is not None:
            # Publish first so the aggregate includes this request.
            self._stats_board.publish(self.worker_id, self._board_counters())
            payload["cluster"] = self._stats_board.aggregate()
        return payload


def _error_body(code: str, message: str) -> dict:
    return {"ok": False, "error": {"code": code, "message": message}}


class BackgroundServer:
    """A :class:`SpotLightServer` on a daemon thread, for blocking
    callers::

        with BackgroundServer(frontend) as server:
            client = SpotLightClient(*server.address)
            ...

    The thread owns a private event loop; ``stop()`` performs the same
    graceful shutdown as the foreground server and joins the thread.
    """

    def __init__(
        self,
        frontend: QueryFrontend | None = None,
        server: SpotLightServer | None = None,
        **server_kwargs: object,
    ) -> None:
        if server is not None:
            if frontend is not None or server_kwargs:
                raise ValueError(
                    "pass either a prebuilt server or frontend+kwargs, not both"
                )
            self.server = server
        else:
            if frontend is None:
                raise ValueError("a frontend is required to build a server")
            self.server = SpotLightServer(frontend, **server_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="spotlight-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("server did not start within 30s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # bind failure, bad args
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def stop(self) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None or not thread.is_alive():
            return
        done = asyncio.run_coroutine_threadsafe(self.server.stop(), loop)
        done.result(timeout=self.server.shutdown_grace + 30.0)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30.0)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


async def serve(
    frontend: QueryFrontend,
    host: str = "127.0.0.1",
    port: int = 0,
    shutdown: "asyncio.Event | None" = None,
    on_start: Callable[[SpotLightServer], object] | None = None,
    **server_kwargs: object,
) -> SpotLightServer:
    """Start a server, optionally run until ``shutdown`` is set, and
    shut down gracefully.  Returns the (stopped) server for its stats."""
    server = SpotLightServer(frontend, host=host, port=port, **server_kwargs)
    await server.start()
    if on_start is not None:
        result = on_start(server)
        if isinstance(result, Awaitable):
            await result
    if shutdown is not None:
        await shutdown.wait()
        await server.stop()
    return server

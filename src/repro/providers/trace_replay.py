"""Replay recorded spot-price histories as a (passive) cloud provider.

The paper's service is meant to run against captured price histories as
well as a live platform: trace-driven cost tools (EMRio-style planners,
the Chapter 6 app studies) are built on recorded spot-price CSVs.  The
:class:`TraceReplayProvider` turns such a recording back into a price
feed on its own simulated clock, so a full SpotLight instance — scope
filtering, price recording, datastore, query engine, frontend — runs
against it unchanged, with **no simulator**.

Replay is passive: there is no capacity model behind a recorded trace,
so the probe surface is unsupported (``supports_probes`` is False) and
SpotLight runs in passive mode against it.  Events are scheduled
lazily — one pending event per market — so a multi-million-sample
recording never materialises more than ``len(markets)`` heap entries.

Two recorded formats load directly:

* the multi-market price CSV written by
  :meth:`repro.core.database.ProbeDatabase.export_prices_csv` (the PR 1
  round-trip format), via :meth:`TraceReplayProvider.from_prices_csv`;
* the single-market ``traces/`` generator format written by
  :func:`repro.traces.io.save_trace_csv`, via
  :meth:`TraceReplayProvider.from_trace_csv`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Mapping

from repro.common.clock import SimClock
from repro.common.events import EventQueue
from repro.core.database import ProbeDatabase
from repro.core.market_id import MarketID
from repro.ec2.catalog import Catalog, default_catalog
from repro.ec2.limits import RegionLimits
from repro.providers.base import PriceObserver, ProbeUnsupportedError
from repro.traces.io import load_trace_csv


class TraceReplayProvider:
    """A price-feed-only provider over recorded ``(time, price)`` events."""

    supports_probes = False

    def __init__(
        self,
        events_by_market: Mapping[MarketID, list[tuple[float, float]]],
        catalog: Catalog | None = None,
        start_time: float = 0.0,
    ) -> None:
        self._catalog = catalog or default_catalog()
        self.clock = SimClock(start_time)
        self.queue = EventQueue(self.clock)
        self._events: dict[MarketID, list[tuple[float, float]]] = {}
        self._cursor: dict[MarketID, int] = {}
        self._last_price: dict[MarketID, float] = {}
        self._observers: list[PriceObserver] = []
        self._limits: dict[str, RegionLimits] = {}
        self.end_time = start_time

        for market, events in sorted(events_by_market.items()):
            if not events:
                continue
            if any(t1 > t2 for (t1, _), (t2, _) in zip(events, events[1:])):
                raise ValueError(f"{market}: price events out of time order")
            if events[0][0] < start_time:
                raise ValueError(
                    f"{market}: first event at {events[0][0]} precedes the "
                    f"replay start time {start_time}"
                )
            # Fail fast on markets the catalog cannot price: every query
            # the service serves needs the on-demand reference price.
            self._catalog.on_demand_price(
                market.instance_type, market.region, market.product
            )
            self._events[market] = list(events)
            self._cursor[market] = 0
            self.end_time = max(self.end_time, events[-1][0])
            self._limits.setdefault(
                market.region, RegionLimits(market.region, self.clock)
            )
            self._schedule_next(market)

    # -- replay machinery ---------------------------------------------------
    def _schedule_next(self, market: MarketID) -> None:
        index = self._cursor[market]
        events = self._events[market]
        if index >= len(events):
            return
        when = events[index][0]
        self.queue.schedule_at(
            when, lambda: self._fire(market), label=f"replay/{market}"
        )

    def _fire(self, market: MarketID) -> None:
        index = self._cursor[market]
        when, price = self._events[market][index]
        self._cursor[market] = index + 1
        self._last_price[market] = price
        for observer in self._observers:
            observer(market, when, price)
        self._schedule_next(market)

    def replay_all(self) -> int:
        """Drive the replay through its last recorded event."""
        return self.run_until(self.end_time)

    # -- provider surface ---------------------------------------------------
    @property
    def catalog(self) -> Catalog:
        return self._catalog

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def limits(self) -> Mapping[str, RegionLimits]:
        return self._limits

    def market_ids(self) -> Iterable[MarketID]:
        return list(self._events)

    def subscribe_prices(self, observer: PriceObserver) -> None:
        self._observers.append(observer)

    def schedule_in(self, delay: float, callback: Callable[[], None],
                    label: str = "") -> None:
        self.queue.schedule_in(delay, callback, label=label)

    def run_until(self, when: float) -> int:
        return self.queue.run_until(when)

    def run_for(self, duration: float) -> int:
        return self.queue.run_until(self.clock.now + duration)

    # -- pricing ------------------------------------------------------------
    def on_demand_price(self, instance_type: str, availability_zone: str,
                        product: str) -> float:
        region = self._catalog.region_of_zone(availability_zone)
        return self._catalog.on_demand_price(instance_type, region, product)

    def current_spot_price(self, instance_type: str, availability_zone: str,
                           product: str) -> float:
        market = MarketID(availability_zone, instance_type, product)
        price = self._last_price.get(market)
        if price is None:
            raise KeyError(f"no price replayed yet for {market}")
        return price

    # -- probe surface (unsupported) ---------------------------------------
    def _no_probes(self) -> ProbeUnsupportedError:
        return ProbeUnsupportedError(
            "a trace replay has no capacity model to probe"
        )

    @property
    def spot_requests(self) -> Mapping[str, object]:
        return {}

    def run_instances(self, instance_type: str, availability_zone: str,
                      product: str):
        raise self._no_probes()

    def terminate_instances(self, instance_ids: Iterable[str]) -> None:
        raise self._no_probes()

    def request_spot_instances(self, instance_type: str, availability_zone: str,
                               product: str, bid_price: float):
        raise self._no_probes()

    def cancel_spot_request(self, request_id: str):
        raise self._no_probes()

    def terminate_spot_instance(self, request_id: str) -> None:
        raise self._no_probes()

    # -- loading ------------------------------------------------------------
    @classmethod
    def from_prices_csv(
        cls,
        path: str | Path,
        catalog: Catalog | None = None,
        start_time: float = 0.0,
    ) -> "TraceReplayProvider":
        """Load the multi-market CSV written by
        :meth:`ProbeDatabase.export_prices_csv`."""
        db = ProbeDatabase.import_prices_csv(path)
        events: dict[MarketID, list[tuple[float, float]]] = {}
        for market, times, prices in db.iter_price_arrays():
            events[market] = list(zip(times.tolist(), prices.tolist()))
        return cls(events, catalog=catalog, start_time=start_time)

    @classmethod
    def from_trace_csv(
        cls,
        path: str | Path,
        market: MarketID,
        catalog: Catalog | None = None,
        start_time: float = 0.0,
    ) -> "TraceReplayProvider":
        """Load a single-market ``traces/`` CSV
        (:func:`repro.traces.io.save_trace_csv` format) as ``market``."""
        return cls(
            {market: load_trace_csv(path)}, catalog=catalog, start_time=start_time
        )

"""Cloud providers — the data sources SpotLight can run against.

* :class:`~repro.providers.base.CloudProvider` — the protocol;
* :class:`~repro.providers.simulator.SimulatorProvider` — the
  in-process EC2 simulator (full probe surface);
* :class:`~repro.providers.trace_replay.TraceReplayProvider` — replay
  of recorded price CSVs (passive: prices only, no probing).
"""

from repro.providers.base import (
    CloudProvider,
    PriceObserver,
    ProbeUnsupportedError,
)
from repro.providers.simulator import SimulatorProvider
from repro.providers.trace_replay import TraceReplayProvider

__all__ = [
    "CloudProvider",
    "PriceObserver",
    "ProbeUnsupportedError",
    "SimulatorProvider",
    "TraceReplayProvider",
]

"""The simulator-backed provider.

A thin adapter: the in-process :class:`~repro.ec2.platform.EC2Simulator`
already speaks the EC2-shaped probe surface, so most calls delegate
directly.  The adapter's real work is normalising the price feed (the
simulator publishes :class:`~repro.ec2.market.SpotMarket` objects; the
provider contract speaks :class:`~repro.core.market_id.MarketID`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.core.market_id import MarketID
from repro.ec2.catalog import Catalog
from repro.ec2.instance import Instance
from repro.ec2.limits import RegionLimits
from repro.ec2.market import SpotMarket
from repro.ec2.platform import EC2Simulator
from repro.ec2.spot_request import SpotRequest
from repro.providers.base import PriceObserver


class SimulatorProvider:
    """Serve SpotLight from an in-process :class:`EC2Simulator`."""

    supports_probes = True

    def __init__(self, simulator: EC2Simulator) -> None:
        self.simulator = simulator

    @property
    def catalog(self) -> Catalog:
        return self.simulator.catalog

    @property
    def now(self) -> float:
        return self.simulator.now

    @property
    def limits(self) -> Mapping[str, RegionLimits]:
        return self.simulator.limits

    # -- scope + feed -------------------------------------------------------
    def market_ids(self) -> Iterable[MarketID]:
        for az, itype, product in self.simulator.markets:
            yield MarketID(az, itype, product)

    def subscribe_prices(self, observer: PriceObserver) -> None:
        def adapt(market: SpotMarket, now: float, price: float) -> None:
            observer(MarketID(*market.market_key), now, price)

        self.simulator.subscribe_market_updates(adapt)

    # -- time ---------------------------------------------------------------
    def schedule_in(self, delay: float, callback: Callable[[], None],
                    label: str = "") -> None:
        self.simulator.queue.schedule_in(delay, callback, label=label)

    def run_until(self, when: float) -> int:
        return self.simulator.run_until(when)

    def run_for(self, duration: float) -> int:
        return self.simulator.run_for(duration)

    # -- pricing ------------------------------------------------------------
    def on_demand_price(self, instance_type: str, availability_zone: str,
                        product: str) -> float:
        return self.simulator.on_demand_price(
            instance_type, availability_zone, product
        )

    def current_spot_price(self, instance_type: str, availability_zone: str,
                           product: str) -> float:
        return self.simulator.current_spot_price(
            instance_type, availability_zone, product
        )

    # -- probe surface ------------------------------------------------------
    @property
    def spot_requests(self) -> Mapping[str, SpotRequest]:
        return self.simulator.spot_requests

    def run_instances(self, instance_type: str, availability_zone: str,
                      product: str) -> Instance:
        return self.simulator.run_instances(
            instance_type, availability_zone, product
        )

    def terminate_instances(self, instance_ids: Iterable[str]) -> None:
        self.simulator.terminate_instances(instance_ids)

    def request_spot_instances(self, instance_type: str, availability_zone: str,
                               product: str, bid_price: float) -> SpotRequest:
        return self.simulator.request_spot_instances(
            instance_type, availability_zone, product, bid_price=bid_price
        )

    def cancel_spot_request(self, request_id: str) -> SpotRequest:
        return self.simulator.cancel_spot_request(request_id)

    def terminate_spot_instance(self, request_id: str) -> None:
        self.simulator.terminate_spot_instance(request_id)

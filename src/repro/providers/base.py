"""The provider abstraction SpotLight is written against.

The paper's information service outlives any one data source: the same
probing/serving machinery should run against a live cloud, a simulated
one, or a recorded price history.  :class:`CloudProvider` is the
contract between SpotLight and whatever is behind it:

* a **catalog** of instance types, regions, and on-demand prices;
* a **price feed** (``subscribe_prices``) delivering one callback per
  observed spot-price update;
* a **probe surface** — the EC2-shaped request/terminate calls the five
  probe functions of Chapter 4 need — which a provider may not support
  (``supports_probes`` is False for pure replay sources; SpotLight then
  runs passively, recording prices without probing);
* per-region **limit state** (API token bucket, instance slots) that
  admission control paces against;
* a **clock and scheduler** so recovery loops and periodic probes run
  in the provider's own time domain (simulated, replayed, or real).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Protocol, runtime_checkable

from repro.common.errors import ProbeUnsupportedError  # noqa: F401  (re-export)
from repro.core.market_id import MarketID

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ec2.catalog import Catalog
    from repro.ec2.instance import Instance
    from repro.ec2.limits import RegionLimits
    from repro.ec2.spot_request import SpotRequest

#: Price-feed callback: ``observer(market, now, price)``.
PriceObserver = Callable[[MarketID, float, float], None]


@runtime_checkable
class CloudProvider(Protocol):
    """What SpotLight needs from the platform behind it."""

    #: Whether the probe surface below is functional.  Passive providers
    #: (trace replay) expose prices only; SpotLight disables its active
    #: probing policies against them.
    supports_probes: bool

    @property
    def catalog(self) -> "Catalog": ...

    @property
    def now(self) -> float: ...

    @property
    def limits(self) -> Mapping[str, "RegionLimits"]: ...

    # -- scope + feed -------------------------------------------------------
    def market_ids(self) -> Iterable[MarketID]:
        """Every market this provider can observe."""
        ...

    def subscribe_prices(self, observer: PriceObserver) -> None:
        """Register a price-feed observer."""
        ...

    # -- time ---------------------------------------------------------------
    def schedule_in(self, delay: float, callback: Callable[[], None],
                    label: str = "") -> None:
        """Run ``callback`` after ``delay`` seconds of provider time."""
        ...

    def run_until(self, when: float) -> int:
        """Advance the provider to absolute time ``when``."""
        ...

    def run_for(self, duration: float) -> int:
        """Advance the provider by ``duration`` seconds."""
        ...

    # -- pricing ------------------------------------------------------------
    def on_demand_price(self, instance_type: str, availability_zone: str,
                        product: str) -> float: ...

    def current_spot_price(self, instance_type: str, availability_zone: str,
                           product: str) -> float: ...

    # -- probe surface (EC2-shaped) ----------------------------------------
    @property
    def spot_requests(self) -> Mapping[str, "SpotRequest"]: ...

    def run_instances(self, instance_type: str, availability_zone: str,
                      product: str) -> "Instance": ...

    def terminate_instances(self, instance_ids: Iterable[str]) -> None: ...

    def request_spot_instances(self, instance_type: str, availability_zone: str,
                               product: str, bid_price: float) -> "SpotRequest": ...

    def cancel_spot_request(self, request_id: str) -> "SpotRequest": ...

    def terminate_spot_instance(self, request_id: str) -> None: ...

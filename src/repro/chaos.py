"""Deterministic fault injection: failure as a first-class surface.

The serving stack survives the clean world by construction; this module
exists to prove it survives the dirty one.  Everything here is
**seeded** — the same plan with the same seed kills the same workers,
dribbles the same bytes, and fires the same fsync errors — so a chaos
run that fails is a chaos run someone can replay.

Three layers:

* :class:`FaultInjector` — in-process fault *points*.  Code that wants
  to be attackable calls ``injector.fire("datastore.save.commit")`` at
  its vulnerable moments; an armed rule raises there with a seeded
  probability and a bounded count.  The default injector has no rules
  and costs one dict lookup per point.
* :class:`ChaosPlan` — a declarative, JSON-loadable schedule of fault
  events (kill a pool worker, slow-loris the listener, reset sockets
  mid-request, truncate or garble a WAL tail, pause or kill a recorder
  process, hold a replica tailer back) validated up front.
* :class:`ChaosHarness` — a thread that executes a plan against a
  running :class:`~repro.server_pool.WorkerPool` and/or a served
  address, recording what each event did so tests (and the CLI's
  ``serve --chaos-plan``) can assert on the outcome.

File-level helpers (:func:`truncate_tail`, :func:`garble_tail`) shear
or corrupt the last bytes of a file — the on-disk shape of a crash mid
``write()`` — and are what the datastore recovery tests drive.
"""

from __future__ import annotations

import json
import os
import random
import signal
import socket
import struct
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "ChaosHarness",
    "ChaosPlan",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "garble_tail",
    "truncate_tail",
]


class FaultError(OSError):
    """The error an armed fault point raises (an ``OSError`` so code
    under test exercises its real IO-failure handling)."""


# -- in-process fault points -------------------------------------------------
@dataclass
class _FaultRule:
    probability: float
    times: int | None  # None = unlimited
    error: Exception | None
    fired: int = 0


class FaultInjector:
    """Seeded, armable fault points.

    ::

        faults = FaultInjector(seed=7)
        faults.arm("datastore.save.commit", times=1)
        store = SnapshotDatastore(root, fault_injector=faults)
        with pytest.raises(FaultError):
            store.save()  # "crashes" at the commit point

    A rule armed at ``"datastore.save"`` also matches the dotted points
    beneath it (``"datastore.save.commit"`` ...), so one rule can cover
    a whole subsystem.  ``fire()`` on an un-armed injector is a cheap
    no-op, which is why production objects can carry one unconditionally.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._rules: dict[str, _FaultRule] = {}
        self.checked: dict[str, int] = {}
        self.fired: dict[str, int] = {}

    def arm(
        self,
        point: str,
        probability: float = 1.0,
        times: int | None = None,
        error: Exception | None = None,
    ) -> "FaultInjector":
        """Arm ``point`` (and its dotted children) to raise ``error``
        — a :class:`FaultError` by default — with ``probability`` per
        crossing, at most ``times`` times (``None`` = forever)."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        if times is not None and times < 1:
            raise ValueError(f"times must be >= 1: {times}")
        self._rules[point] = _FaultRule(probability, times, error)
        return self

    def disarm(self, point: str) -> None:
        self._rules.pop(point, None)

    def _rule_for(self, point: str) -> _FaultRule | None:
        rule = self._rules.get(point)
        if rule is not None:
            return rule
        # Prefix rules: most-specific dotted ancestor wins.
        while "." in point:
            point = point.rsplit(".", 1)[0]
            rule = self._rules.get(point)
            if rule is not None:
                return rule
        return None

    def fire(self, point: str) -> None:
        """Cross a fault point; raises if an armed rule triggers."""
        if not self._rules:
            return
        self.checked[point] = self.checked.get(point, 0) + 1
        rule = self._rule_for(point)
        if rule is None:
            return
        if rule.times is not None and rule.fired >= rule.times:
            return
        if rule.probability < 1.0 and self._rng.random() >= rule.probability:
            return
        rule.fired += 1
        self.fired[point] = self.fired.get(point, 0) + 1
        if rule.error is not None:
            raise rule.error
        raise FaultError(f"injected fault at {point}")


#: The shared do-nothing injector production objects default to.
NO_FAULTS = FaultInjector()


# -- file-tail chaos ---------------------------------------------------------
def truncate_tail(path: str | Path, nbytes: int) -> int:
    """Shear the last ``nbytes`` off a file (a torn final write).
    Returns the new size."""
    path = Path(path)
    size = path.stat().st_size
    new_size = max(0, size - nbytes)
    with path.open("rb+") as handle:
        handle.truncate(new_size)
    return new_size


def garble_tail(path: str | Path, nbytes: int, seed: int = 0) -> None:
    """Overwrite the last ``nbytes`` of a file with seeded garbage that
    contains no newline (a corrupted-in-place final record, not a new
    row boundary)."""
    path = Path(path)
    size = path.stat().st_size
    nbytes = min(nbytes, size)
    rng = random.Random(seed)
    junk = bytes(rng.choice(b"#$%&*+-=@^~") for _ in range(nbytes))
    with path.open("rb+") as handle:
        handle.seek(size - nbytes)
        handle.write(junk)


# -- chaos plans -------------------------------------------------------------
@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``action`` fires ``at`` seconds into the
    run, with action-specific ``params``."""

    at: float
    action: str
    params: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"at": self.at, "action": self.action, **self.params}


#: action -> allowed parameter names (validation happens at load time,
#: not three minutes into a chaos run).
PLAN_ACTIONS: dict[str, frozenset[str]] = {
    "kill-worker": frozenset({"worker", "signal"}),
    "kill-shard": frozenset({"shard", "signal", "respawn"}),
    "slow-loris": frozenset({"connections", "interval", "hold"}),
    "reset-sockets": frozenset({"connections"}),
    "truncate-wal": frozenset({"root", "kind", "bytes"}),
    "garble-wal": frozenset({"root", "kind", "bytes"}),
    "pause-recorder": frozenset({"hold"}),
    "kill-recorder": frozenset({"signal"}),
    "lag-replica": frozenset({"hold"}),
}


class ChaosPlan:
    """A validated, seed-stamped schedule of :class:`FaultEvent`.

    JSON shape (the ``serve --chaos-plan`` file format)::

        {
          "seed": 7,
          "events": [
            {"at": 2.0, "action": "kill-worker"},
            {"at": 4.0, "action": "slow-loris", "connections": 4, "hold": 8.0},
            {"at": 6.0, "action": "reset-sockets", "connections": 8}
          ]
        }
    """

    def __init__(self, events: list[FaultEvent], seed: int = 0) -> None:
        for event in events:
            if event.action not in PLAN_ACTIONS:
                raise ValueError(
                    f"unknown chaos action {event.action!r} "
                    f"(know: {sorted(PLAN_ACTIONS)})"
                )
            unknown = set(event.params) - PLAN_ACTIONS[event.action]
            if unknown:
                raise ValueError(
                    f"{event.action!r} does not take {sorted(unknown)}"
                )
            if event.at < 0:
                raise ValueError(f"event time must be >= 0: {event.at}")
        self.events = sorted(events, key=lambda e: e.at)
        self.seed = seed

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ChaosPlan":
        if not isinstance(data, dict):
            raise ValueError(f"chaos plan must be an object, got {type(data)}")
        raw_events = data.get("events", [])
        if not isinstance(raw_events, list):
            raise ValueError("chaos plan 'events' must be a list")
        events = []
        for raw in raw_events:
            if not isinstance(raw, dict) or "action" not in raw:
                raise ValueError(f"malformed chaos event: {raw!r}")
            params = {
                k: v for k, v in raw.items() if k not in ("at", "action")
            }
            events.append(
                FaultEvent(float(raw.get("at", 0.0)), str(raw["action"]), params)
            )
        return cls(events, seed=int(data.get("seed", 0)))

    @classmethod
    def load(cls, path: str | Path) -> "ChaosPlan":
        try:
            data = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: chaos plan is not valid JSON: {exc}")
        return cls.from_dict(data)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }


# -- the harness -------------------------------------------------------------
def _drip_connection(
    host: str, port: int, interval: float, hold: float, record: dict
) -> None:
    """One slow-loris connection: open, then dribble header bytes —
    never completing a request — until the server sheds us or ``hold``
    expires.  ``record['shed']`` says who gave up."""
    payload = b"POST /query HTTP/1.1\r\nHost: chaos\r\nX-Drip: "
    deadline = time.monotonic() + hold
    try:
        conn = socket.create_connection((host, port), timeout=hold)
    except OSError:
        record["shed"] = "connect-failed"
        return
    try:
        conn.settimeout(max(interval, 0.05))
        index = 0
        while time.monotonic() < deadline:
            try:
                conn.sendall(payload[index % len(payload):][:1])
            except OSError:
                record["shed"] = "server"  # reset under our feet
                return
            index += 1
            # A response (408) or EOF before we ever finished a request
            # means the server shed us — mission accomplished (for it).
            try:
                got = conn.recv(256)
            except socket.timeout:
                continue
            except OSError:
                record["shed"] = "server"
                return
            record["shed"] = "server"
            record["response"] = got[:64].decode("latin-1", "replace")
            return
        record["shed"] = "timeout"  # server held us the whole window
    finally:
        conn.close()


def _reset_connection(host: str, port: int) -> None:
    """Connect, send half a request, then abortively close (RST)."""
    try:
        conn = socket.create_connection((host, port), timeout=5.0)
    except OSError:
        return
    try:
        conn.sendall(b"POST /query HTTP/1.1\r\nContent-Length: 999\r\n\r\n{")
        conn.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    except OSError:
        pass
    finally:
        conn.close()


class ChaosHarness:
    """Execute a :class:`ChaosPlan` against a live deployment.

    ``pool`` (a :class:`~repro.server_pool.WorkerPool`) is the target of
    ``kill-worker`` events; ``address`` (defaulting to the pool's) is
    the target of the socket attacks.  ``recorder`` — a pid, or a
    zero-argument callable returning the current pid (recorders restart;
    the callable re-resolves at fire time) — is the target of
    ``pause-recorder``/``kill-recorder``; ``replica`` (an object with
    ``pause()``/``resume()``, i.e. a
    :class:`~repro.replication.ReplicaTailer`) is the target of
    ``lag-replica``.  ``start()`` launches a daemon thread that sleeps
    to each event's ``at`` offset and fires it; ``join()`` waits the
    plan out and returns the per-event results.
    """

    def __init__(
        self,
        plan: ChaosPlan,
        pool: "object | None" = None,
        address: tuple[str, int] | None = None,
        log: Callable[[str], None] | None = None,
        recorder: "int | Callable[[], int | None] | None" = None,
        replica: "object | None" = None,
    ) -> None:
        if pool is None and address is None and recorder is None \
                and replica is None:
            raise ValueError(
                "chaos harness needs a pool, an address, a recorder, "
                "or a replica"
            )
        self.plan = plan
        self.pool = pool
        self.recorder = recorder
        self.replica = replica
        if address is None and pool is not None:
            address = pool.address  # type: ignore[union-attr]
        self.address = address
        self.results: list[dict[str, Any]] = []
        self._rng = random.Random(plan.seed)
        self._log = log or (lambda line: print(f"chaos: {line}", flush=True))
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- actions ------------------------------------------------------------
    def _kill_worker(self, params: dict) -> dict:
        if self.pool is None:
            return {"error": "no pool to kill workers in"}
        pids = self.pool.worker_pids()
        if not pids:
            return {"error": "no live workers"}
        worker = params.get("worker")
        if worker is None:
            worker = self._rng.choice(sorted(pids))
        pid = pids.get(worker)
        if pid is None:
            return {"error": f"worker {worker} not alive"}
        signum = int(params.get("signal", signal.SIGKILL))
        os.kill(pid, signum)
        self._log(f"killed worker {worker} (pid {pid}, signal {signum})")
        return {"worker": worker, "pid": pid, "signal": signum}

    def _kill_shard(self, params: dict) -> dict:
        """Kill one shard worker and (by default) keep it dead: the
        point is to observe scatter-gather *degrading* — partial
        answers, a degraded /healthz — not a quick respawn.  Pass
        ``"respawn": true`` to let the supervisor bring it back."""
        if self.pool is None:
            return {"error": "no shard cluster to kill shards in"}
        pids = self.pool.worker_pids()
        if not pids:
            return {"error": "no live shards"}
        shard = params.get("shard")
        if shard is None:
            shard = self._rng.choice(sorted(pids))
        pid = pids.get(shard)
        if pid is None:
            return {"error": f"shard {shard} not alive"}
        respawn = bool(params.get("respawn", False))
        if not respawn:
            disable = getattr(self.pool, "disable_respawn", None)
            if disable is not None:
                disable(shard)
        signum = int(params.get("signal", signal.SIGKILL))
        os.kill(pid, signum)
        self._log(
            f"killed shard {shard} (pid {pid}, signal {signum}, "
            f"respawn={'on' if respawn else 'off'})"
        )
        return {"shard": shard, "pid": pid, "signal": signum,
                "respawn": respawn}

    def _slow_loris(self, params: dict) -> dict:
        if self.address is None:
            return {"error": "no address for socket attacks"}
        host, port = self.address
        connections = int(params.get("connections", 4))
        interval = float(params.get("interval", 0.2))
        hold = float(params.get("hold", 10.0))
        records = [{"shed": "pending"} for _ in range(connections)]
        threads = [
            threading.Thread(
                target=_drip_connection,
                args=(host, port, interval, hold, record),
                daemon=True,
            )
            for record in records
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=hold + 5.0)
        shed = sum(1 for r in records if r["shed"] == "server")
        self._log(
            f"slow-loris: {shed}/{connections} connections shed by the server"
        )
        return {"connections": connections, "shed_by_server": shed,
                "records": records}

    def _reset_sockets(self, params: dict) -> dict:
        if self.address is None:
            return {"error": "no address for socket attacks"}
        host, port = self.address
        connections = int(params.get("connections", 8))
        for _ in range(connections):
            _reset_connection(host, port)
        self._log(f"reset {connections} mid-request connections")
        return {"connections": connections}

    def _wal_attack(self, params: dict, garble: bool) -> dict:
        root = params.get("root")
        if root is None:
            return {"error": "truncate/garble-wal needs a 'root' directory"}
        kind = params.get("kind", "probes")
        nbytes = int(params.get("bytes", 16))
        candidates = sorted(Path(root).glob(f"{kind}.wal.*.csv"))
        if not candidates:
            return {"error": f"no {kind} WAL under {root}"}
        target = candidates[-1]
        if garble:
            garble_tail(target, nbytes, seed=self._rng.randrange(2**31))
            verb = "garbled"
        else:
            truncate_tail(target, nbytes)
            verb = "truncated"
        self._log(f"{verb} {nbytes} bytes of {target.name}")
        return {"path": str(target), "bytes": nbytes}

    def _recorder_pid(self) -> int | None:
        if callable(self.recorder):
            try:
                pid = self.recorder()
            except Exception:
                return None
            return int(pid) if pid else None
        return int(self.recorder) if self.recorder else None

    def _pause_recorder(self, params: dict) -> dict:
        pid = self._recorder_pid()
        if pid is None:
            return {"error": "no recorder pid to pause"}
        hold = float(params.get("hold", 5.0))
        try:
            os.kill(pid, signal.SIGSTOP)
        except ProcessLookupError:
            return {"error": f"recorder pid {pid} is gone"}
        self._log(f"paused recorder (pid {pid}) for {hold:.1f}s")
        try:
            self._stop.wait(hold)
        finally:
            try:
                os.kill(pid, signal.SIGCONT)
            except ProcessLookupError:
                return {"pid": pid, "hold": hold, "resumed": False}
        self._log(f"resumed recorder (pid {pid})")
        return {"pid": pid, "hold": hold, "resumed": True}

    def _kill_recorder(self, params: dict) -> dict:
        pid = self._recorder_pid()
        if pid is None:
            return {"error": "no recorder pid to kill"}
        signum = int(params.get("signal", signal.SIGKILL))
        try:
            os.kill(pid, signum)
        except ProcessLookupError:
            return {"error": f"recorder pid {pid} is gone"}
        self._log(f"killed recorder (pid {pid}, signal {signum})")
        return {"pid": pid, "signal": signum}

    def _lag_replica(self, params: dict) -> dict:
        if self.replica is None:
            return {"error": "no replica to lag"}
        hold = float(params.get("hold", 5.0))
        self.replica.pause()
        self._log(f"lagging replica for {hold:.1f}s")
        try:
            self._stop.wait(hold)
        finally:
            self.replica.resume()
        self._log("replica resumed")
        return {"hold": hold}

    def _fire(self, event: FaultEvent) -> dict[str, Any]:
        if event.action == "kill-worker":
            outcome = self._kill_worker(event.params)
        elif event.action == "kill-shard":
            outcome = self._kill_shard(event.params)
        elif event.action == "slow-loris":
            outcome = self._slow_loris(event.params)
        elif event.action == "reset-sockets":
            outcome = self._reset_sockets(event.params)
        elif event.action == "truncate-wal":
            outcome = self._wal_attack(event.params, garble=False)
        elif event.action == "pause-recorder":
            outcome = self._pause_recorder(event.params)
        elif event.action == "kill-recorder":
            outcome = self._kill_recorder(event.params)
        elif event.action == "lag-replica":
            outcome = self._lag_replica(event.params)
        else:  # garble-wal (plan validation bounds the action set)
            outcome = self._wal_attack(event.params, garble=True)
        return {"at": event.at, "action": event.action, **outcome}

    # -- scheduling ---------------------------------------------------------
    def _run(self) -> None:
        started = time.monotonic()
        for event in self.plan.events:
            delay = event.at - (time.monotonic() - started)
            if delay > 0 and self._stop.wait(delay):
                return
            if self._stop.is_set():
                return
            try:
                self.results.append(self._fire(event))
            except Exception as exc:  # a failed attack must not kill the run
                self.results.append(
                    {"at": event.at, "action": event.action,
                     "error": f"{type(exc).__name__}: {exc}"}
                )

    def start(self) -> "ChaosHarness":
        self._thread = threading.Thread(
            target=self._run, name="chaos-harness", daemon=True
        )
        self._thread.start()
        return self

    def join(self, timeout: float | None = None) -> list[dict[str, Any]]:
        if self._thread is not None:
            self._thread.join(timeout)
        return self.results

    def stop(self) -> None:
        """Abandon any not-yet-fired events and join."""
        self._stop.set()
        self.join(timeout=5.0)

    def run(self) -> list[dict[str, Any]]:
        """Execute the whole plan synchronously."""
        self._run()
        return self.results

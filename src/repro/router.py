"""The scatter-gather router tier for sharded serving.

A :class:`SpotLightRouter` speaks the exact wire protocol of
:class:`~repro.server.SpotLightServer` — same endpoints, same envelope
bytes, same ETags — but owns no catalog data.  Behind it sit N shard
workers, each serving a :class:`~repro.core.shard.ShardMap`-filtered
slice of the snapshot:

* **point queries** (a ``market`` param) route to the owning shard and
  the shard's answer bytes are returned verbatim (the canonical wire
  encoding round-trips byte-identically through a decode/re-encode);
* **catalog-wide queries** scatter to every shard and merge:
  ``top-stable-markets`` as a distributed top-k (each shard returns its
  local top-n with metric columns; the router re-sorts the union by the
  engine's exact ranking key with the market as the final tie-breaker,
  which reproduces the single-node stable-sort order because shards
  partition the sorted catalog), ``unavailability-periods`` by a
  (start, market) merge, and the global ``rejection-rate`` by summing
  per-shard ``rejection-counts`` and dividing once — a mean of
  per-shard *rates* would weight shards wrongly;
* ``/batch`` splits sub-queries by owning shard, forwards one sub-batch
  per shard concurrently, and reassembles the results in request order
  — byte-identical to the equivalent sequence of single queries;
* ``/healthz`` probes every shard concurrently and *degrades* (status
  ``"degraded"``, detail ``"shard-N-dead"``) instead of failing when a
  shard is down; scatter answers over the survivors carry
  ``"partial": true`` plus the missing shard list and are never cached.

The router reuses the single-flight in-flight map and the
serialized-bytes/ETag wire cache it inherits (its
:class:`~repro.core.frontend.QueryFrontend` has no engine — it is pure
cache), so a hot catalog-wide answer is one dict lookup and never
re-scatters until the TTL lapses.

Every response carries the shard-map epoch in an ``X-Shard-Epoch``
header; ``GET /shards`` serves the map itself so shard-aware clients
(``SpotLightClient(direct_routing=True)``) can route point queries
straight to shards and fall back through the router on a topology
change.

Shards behind a router should run with effectively unlimited admission
(the :class:`~repro.server_pool.ShardCluster` default): the router
enforces per-client rate limits itself, and all shard traffic arrives
from the router's address.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from typing import Callable

from repro.core.frontend import (
    BadRequestError,
    QueryFrontend,
    QueryRequest,
    WireResponse,
    _Params,
    _parse_market,
    wire_encode,
)
from repro.core.shard import ShardMap
from repro.server import SpotLightServer, _EndpointStats

__all__ = ["ShardClient", "ShardError", "SpotLightRouter"]

#: Queries that require a ``market`` param: always owned by one shard.
_POINT_QUERIES = frozenset({
    "availability",
    "availability-at-bid",
    "mean-time-to-revocation",
    "mean-price",
    "on-demand-price",
})

#: Queries whose ``market`` param is optional: owned by one shard when
#: it is present, catalog-wide scatters when it is absent.
_OPTIONAL_MARKET_QUERIES = frozenset({
    "unavailability-periods",
    "rejection-rate",
    "rejection-counts",
})


def _market_sort_key(entry: dict) -> tuple[str, str, str]:
    """MarketID's ordering, reconstructed from a result row's columns —
    the tie-breaker that makes merge order match the single-node
    engine's stable sort over the sorted catalog."""
    return (
        entry["availability_zone"],
        entry["instance_type"],
        entry["product"],
    )


class ShardError(Exception):
    """A shard did not produce a usable response (after one retry)."""


class ShardClient:
    """A minimal asyncio HTTP/1.1 client for one shard.

    Keep-alive connections are pooled; every request gets exactly one
    retry on a fresh connection, which covers both a stale pooled
    connection and the contract that the router retries the owning
    shard once before failing a point query.
    """

    def __init__(
        self, host: str, port: int, timeout: float = 10.0, max_idle: int = 4
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_idle = max_idle
        self._idle: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    async def request(
        self, method: str, path: str, body: bytes = b""
    ) -> tuple[int, bytes]:
        """One round trip; returns ``(status, body)`` or raises
        :class:`ShardError` after the single retry fails too."""
        payload = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        ).encode("latin-1") + body
        try:
            return await asyncio.wait_for(self._attempt(payload), self.timeout)
        except (OSError, TimeoutError, asyncio.IncompleteReadError, ShardError):
            self.close()
            try:
                return await asyncio.wait_for(
                    self._attempt(payload), self.timeout
                )
            except (
                OSError, TimeoutError, asyncio.IncompleteReadError, ShardError
            ) as exc:
                self.close()
                raise ShardError(
                    f"{self.host}:{self.port}: {type(exc).__name__}: {exc}"
                ) from exc

    async def _attempt(self, payload: bytes) -> tuple[int, bytes]:
        if self._idle:
            reader, writer = self._idle.pop()
        else:
            reader, writer = await asyncio.open_connection(self.host, self.port)
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            writer.write(payload)
            await writer.drain()
            status, headers, body = await self._read_response(reader)
        except BaseException:
            writer.close()
            raise
        if headers.get("connection", "").lower() == "close":
            writer.close()
        elif len(self._idle) < self.max_idle:
            self._idle.append((reader, writer))
        else:
            writer.close()
        return status, body

    @staticmethod
    async def _read_response(
        reader: asyncio.StreamReader,
    ) -> tuple[int, dict[str, str], bytes]:
        status_line = await reader.readline()
        if not status_line:
            raise ShardError("connection closed before response")
        parts = status_line.split(None, 2)
        if len(parts) < 2:
            raise ShardError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise ShardError("connection closed mid-headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await reader.readexactly(length) if length else b""
        return status, headers, body

    def close(self) -> None:
        """Drop every pooled connection."""
        while self._idle:
            _, writer = self._idle.pop()
            writer.close()


class SpotLightRouter(SpotLightServer):
    """The scatter-gather wire-protocol router over N shard servers."""

    def __init__(
        self,
        shard_addresses: list[tuple[str, int]],
        shard_map: ShardMap | None = None,
        frontend: QueryFrontend | None = None,
        shard_timeout: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
        **server_kwargs: object,
    ) -> None:
        if not shard_addresses:
            raise ValueError("a router needs at least one shard address")
        if shard_map is None:
            shard_map = ShardMap(len(shard_addresses))
        if shard_map.shards != len(shard_addresses):
            raise ValueError(
                f"shard map covers {shard_map.shards} shards but "
                f"{len(shard_addresses)} addresses were given"
            )
        if frontend is None:
            # Engine-less frontend: pure wire/object cache.  All actual
            # computation happens on the shards.
            frontend = QueryFrontend(None, clock=clock)
        super().__init__(frontend, clock=clock, **server_kwargs)
        self.shard_map = shard_map
        self.shard_addresses = [tuple(address) for address in shard_addresses]
        self._clients = [
            ShardClient(host, port, timeout=shard_timeout)
            for host, port in self.shard_addresses
        ]
        self._endpoints["/shards"] = _EndpointStats()
        self._extra_headers = (
            f"X-Shard-Epoch: {self.shard_map.epoch}\r\n".encode("latin-1")
        )
        self.forwarded_queries = 0
        self.scatter_queries = 0
        self.shard_errors = 0
        self.partial_answers = 0

    async def stop(self) -> None:
        await super().stop()
        for client in self._clients:
            client.close()

    # -- routing --------------------------------------------------------------
    def _owner_of(self, request: QueryRequest) -> int | None:
        """The owning shard for a point query, or None when the request
        is catalog-wide, malformed, or not shard-routable (those flow
        through the scatter/forward paths instead)."""
        query, params = request.query, request.params
        if not isinstance(query, str) or not isinstance(params, dict):
            return None
        if query in _POINT_QUERIES or (
            query in _OPTIONAL_MARKET_QUERIES
            and params.get("market") is not None
        ):
            market = params.get("market")
            if market is None:
                return None
            try:
                return self.shard_map.owner(_parse_market(market))
            except BadRequestError:
                return None
        return None

    async def _compute_wire(self, request: QueryRequest) -> WireResponse:
        """Single-flight leader: route to a shard or scatter-merge.

        Requests that a single-node server would reject (unknown query,
        malformed params) are forwarded to shard 0, whose frontend
        renders exactly the error bytes the unsharded server would —
        errors stay byte-identical without duplicating the schema here.
        """
        self.frontend.wire_misses += 1
        owner = self._owner_of(request)
        if owner is not None:
            return await self._forward(request, owner)
        query, params = request.query, request.params
        if not isinstance(query, str) or not isinstance(params, dict):
            return await self._forward(request, 0)
        try:
            if query == "top-stable-markets":
                return await self._merge_top_stable(request)
            if query == "unavailability-periods":
                return await self._merge_periods(request)
            if query in ("rejection-rate", "rejection-counts"):
                return await self._merge_rejections(request)
            if query == "least-unavailable-markets":
                return await self._merge_least_unavailable(request)
        except BadRequestError:
            pass  # shard 0 renders the identical bad-request bytes
        return await self._forward(request, 0)

    async def _forward(self, request: QueryRequest, shard: int) -> WireResponse:
        """Route one query to a single shard and cache its answer."""
        self.forwarded_queries += 1
        try:
            _, body = await self._clients[shard].request(
                "POST", "/query", wire_encode(request.as_dict())
            )
            response = json.loads(body)
        except (ShardError, ValueError) as exc:
            return self._shard_unavailable(shard, exc)
        if not isinstance(response, dict):
            return self._shard_unavailable(shard, "malformed shard response")
        return self.frontend.store_wire(request.key, response)

    def _shard_unavailable(self, shard: int, detail: object) -> WireResponse:
        self.shard_errors += 1
        body = wire_encode({
            "ok": False,
            "error": {
                "code": "shard-unavailable",
                "message": f"shard {shard} did not answer: {detail}",
            },
        })
        return WireResponse(503, body, None, False, body)

    def _shards_unavailable(self) -> WireResponse:
        body = wire_encode({
            "ok": False,
            "error": {
                "code": "shards-unavailable",
                "message": f"all {len(self._clients)} shards unavailable",
            },
        })
        return WireResponse(503, body, None, False, body)

    # -- scatter-gather merges -------------------------------------------------
    async def _scatter(
        self, request_dict: dict, shards: list[int] | None = None
    ) -> tuple[dict[int, dict], list[int]]:
        """POST one request to many shards concurrently.

        Returns ``(responses by shard, missing shards)``; a shard that
        fails after its retry lands in ``missing`` instead of raising,
        so one dead shard degrades the merge rather than failing it.
        """
        self.scatter_queries += 1
        targets = list(range(len(self._clients))) if shards is None else shards
        body = wire_encode(request_dict)

        async def one(shard: int) -> tuple[int, dict | None]:
            try:
                _, payload = await self._clients[shard].request(
                    "POST", "/query", body
                )
                parsed = json.loads(payload)
                return shard, parsed if isinstance(parsed, dict) else None
            except (ShardError, ValueError):
                return shard, None

        gathered = await asyncio.gather(*(one(shard) for shard in targets))
        responses = {shard: r for shard, r in gathered if r is not None}
        missing = [shard for shard, r in gathered if r is None]
        if missing:
            self.shard_errors += len(missing)
        return responses, missing

    def _first_error(
        self, request: QueryRequest, responses: dict[int, dict]
    ) -> WireResponse | None:
        """Propagate a shard-side error (bad params reach every shard
        identically; the lowest shard's bytes stand for all)."""
        for shard in sorted(responses):
            response = responses[shard]
            if not response.get("ok"):
                return self.frontend.store_wire(request.key, response)
        return None

    def _finish_merge(
        self, request: QueryRequest, result: object, missing: list[int]
    ) -> WireResponse:
        """Wrap a merged result in the standard envelope.

        Complete answers are cached and ETagged exactly like a
        single-node answer; partial answers (some shards missing) carry
        ``"partial": true`` plus the missing shard list and are never
        cached, so the next request re-scatters and heals as soon as
        the shard returns.
        """
        if missing:
            self.partial_answers += 1
            body = wire_encode({
                "ok": True,
                "query": request.query,
                "result": result,
                "cached": False,
                "served_at": self._clock(),
                "partial": True,
                "missing_shards": sorted(missing),
            })
            return WireResponse(200, body, None, False, body)
        return self.frontend.store_wire(request.key, {
            "ok": True,
            "query": request.query,
            "result": result,
            "cached": False,
            "served_at": self._clock(),
        })

    async def _merge_top_stable(self, request: QueryRequest) -> WireResponse:
        """Distributed top-k: each shard returns its local top-n; the
        union re-sorted by the engine's exact ranking key (with the
        market as final tie-breaker) is the global top-n."""
        p = _Params(request.params)
        n = p.integer("n", 10)
        responses, missing = await self._scatter(request.as_dict())
        if not responses:
            return self._shards_unavailable()
        error = self._first_error(request, responses)
        if error is not None:
            return error
        entries = [
            entry
            for shard in sorted(responses)
            for entry in responses[shard]["result"]
        ]
        entries.sort(key=lambda e: (
            -e["mean_time_to_revocation"],
            -e["availability_at_bid"],
            e["mean_price"],
            _market_sort_key(e),
        ))
        return self._finish_merge(request, entries[: max(n, 0)], missing)

    async def _merge_periods(self, request: QueryRequest) -> WireResponse:
        responses, missing = await self._scatter(request.as_dict())
        if not responses:
            return self._shards_unavailable()
        error = self._first_error(request, responses)
        if error is not None:
            return error
        entries = [
            entry
            for shard in sorted(responses)
            for entry in responses[shard]["result"]
        ]
        # The single-node engine sorts by (start, market).
        entries.sort(key=lambda e: (e["start"], _market_sort_key(e)))
        return self._finish_merge(request, entries, missing)

    async def _merge_rejections(self, request: QueryRequest) -> WireResponse:
        """Global rejection rate/counts: sum per-shard counts, divide
        once — bit-identical to the single-node int/int division."""
        counts_request = {"query": "rejection-counts", "params": request.params}
        responses, missing = await self._scatter(counts_request)
        if not responses:
            return self._shards_unavailable()
        error = self._first_error(request, responses)
        if error is not None:
            return error
        rejected = sum(r["result"]["rejected"] for r in responses.values())
        total = sum(r["result"]["total"] for r in responses.values())
        if request.query == "rejection-counts":
            result: object = {"rejected": rejected, "total": total}
        else:
            result = rejected / total if total else 0.0
        return self._finish_merge(request, result, missing)

    async def _merge_least_unavailable(
        self, request: QueryRequest
    ) -> WireResponse:
        """Split candidates by owner, scatter to owning shards only,
        reassemble in candidate order, stable-sort by score — ties keep
        candidate order, exactly like the single-node engine."""
        p = _Params(request.params)
        markets = p.markets("candidates")
        raw = request.params["candidates"]
        by_owner: dict[int, list[object]] = {}
        for raw_item, market in zip(raw, markets):
            owner = self.shard_map.owner(market)
            by_owner.setdefault(owner, []).append(raw_item)
        sub_requests = {
            shard: {
                "query": request.query,
                "params": {**request.params, "candidates": sub},
            }
            for shard, sub in by_owner.items()
        }

        async def one(shard: int) -> tuple[int, dict | None]:
            try:
                _, payload = await self._clients[shard].request(
                    "POST", "/query", wire_encode(sub_requests[shard])
                )
                parsed = json.loads(payload)
                return shard, parsed if isinstance(parsed, dict) else None
            except (ShardError, ValueError):
                return shard, None

        self.scatter_queries += 1
        gathered = await asyncio.gather(*(one(shard) for shard in by_owner))
        responses = {shard: r for shard, r in gathered if r is not None}
        missing = [shard for shard, r in gathered if r is None]
        if missing:
            self.shard_errors += len(missing)
        if not responses:
            return self._shards_unavailable()
        error = self._first_error(request, responses)
        if error is not None:
            return error
        by_market = {
            entry["market"]: entry
            for response in responses.values()
            for entry in response["result"]
        }
        merged = [
            by_market[str(market)]
            for market in markets
            if str(market) in by_market
        ]
        merged.sort(key=lambda e: e["unavailable_seconds"])
        return self._finish_merge(request, merged, missing)

    # -- /batch: shard-split -------------------------------------------------
    async def _execute_batch(self, queries: list) -> list[WireResponse]:
        """Split an admitted batch by owning shard: one sub-batch per
        shard, forwarded concurrently, reassembled in request order.

        Router-cached sub-queries answer inline; catalog-wide and
        error-destined sub-queries flow through the normal single-query
        path (scatter merges coalesce on the in-flight map).  The shard
        executes each sub-batch with its own duplicate coalescing, so
        bytes match the equivalent sequence of single queries.
        """
        requests = [
            QueryRequest.from_dict(item) if isinstance(item, dict) else None
            for item in queries
        ]
        results: list[WireResponse | None] = [None] * len(requests)
        by_shard: dict[int, list[int]] = {}
        single_idx: list[int] = []
        single_coros = []
        for i, request in enumerate(requests):
            if request is None:
                results[i] = await self._bad_subquery()
                continue
            hit = self._cached_wire(request.key)
            if hit is not None:
                results[i] = hit
                continue
            owner = self._owner_of(request)
            if owner is None:
                single_idx.append(i)
                single_coros.append(self._coalesced_wire(request))
            else:
                by_shard.setdefault(owner, []).append(i)
        shard_jobs = [
            self._shard_batch(shard, idxs, requests, results)
            for shard, idxs in by_shard.items()
        ]
        gathered = await asyncio.gather(*single_coros, *shard_jobs)
        for i, wire in zip(single_idx, gathered[: len(single_idx)]):
            results[i] = wire
        return results  # type: ignore[return-value]

    def _cached_wire(self, key: str) -> WireResponse | None:
        if self._frontend_lock.acquire(blocking=False):
            try:
                return self.frontend.wire_lookup(key)
            finally:
                self._frontend_lock.release()
        return None

    async def _shard_batch(
        self,
        shard: int,
        idxs: list[int],
        requests: list[QueryRequest | None],
        results: list[WireResponse | None],
    ) -> None:
        """Forward one per-shard sub-batch and fan its results back out
        to their original positions."""
        self.forwarded_queries += len(idxs)
        body = wire_encode(
            {"queries": [requests[i].as_dict() for i in idxs]}
        )
        try:
            _, payload = await self._clients[shard].request(
                "POST", "/batch", body
            )
            parsed = json.loads(payload)
            parts = parsed["results"]
            if not isinstance(parts, list) or len(parts) != len(idxs):
                raise ValueError("shard batch result count mismatch")
        except (ShardError, ValueError, KeyError, TypeError) as exc:
            for i in idxs:
                results[i] = self._shard_unavailable(shard, exc)
            return
        for i, response in zip(idxs, parts):
            self.frontend.wire_misses += 1
            if isinstance(response, dict):
                results[i] = self.frontend.store_wire(requests[i].key, response)
            else:
                results[i] = self._shard_unavailable(
                    shard, "malformed shard batch entry"
                )

    # -- health, stats, and the shard map -------------------------------------
    async def _healthz(self) -> dict:  # type: ignore[override]
        """Aggregate shard health: probe every shard concurrently; a
        dead shard degrades the router's status instead of failing it."""
        health_status = "shutting-down" if self._closing else "serving"
        detail: list[str] = []
        payload: dict[str, object] = {
            "ok": True,
            "uptime_seconds": round(self._clock() - self._started_at, 3),
        }

        async def probe(shard: int) -> dict[str, object]:
            try:
                _, body = await self._clients[shard].request("GET", "/healthz")
                parsed = json.loads(body)
                status = parsed.get("status", "unknown")
            except (ShardError, ValueError):
                status = "dead"
            return {"shard": shard, "status": status}

        shard_health = await asyncio.gather(
            *(probe(shard) for shard in range(len(self._clients)))
        )
        alive = sum(1 for h in shard_health if h["status"] != "dead")
        payload["shards"] = {
            "total": len(self._clients),
            "alive": alive,
            "epoch": self.shard_map.epoch,
            "health": list(shard_health),
        }
        if not self._closing:
            for h in shard_health:
                if h["status"] == "dead":
                    health_status = "degraded"
                    detail.append(f"shard-{h['shard']}-dead")
                elif h["status"] not in ("serving", "shutting-down"):
                    health_status = "degraded"
                    detail.append(f"shard-{h['shard']}-{h['status']}")
        payload["status"] = health_status
        payload["detail"] = detail
        return payload

    def stats(self) -> dict[str, object]:
        payload = super().stats()
        payload["shards"] = {
            "total": len(self._clients),
            "epoch": self.shard_map.epoch,
            "forwarded_queries": self.forwarded_queries,
            "scatter_queries": self.scatter_queries,
            "shard_errors": self.shard_errors,
            "partial_answers": self.partial_answers,
        }
        return payload

    def _handle_extra_get(self, path: str) -> tuple[int, bytes]:
        if path == "/shards":
            return 200, wire_encode({
                "ok": True,
                **self.shard_map.to_dict(),
                "addresses": [list(address) for address in self.shard_addresses],
            })
        return super()._handle_extra_get(path)

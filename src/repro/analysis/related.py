"""Related-market analyses — Figures 5.7 and 5.8.

* Figure 5.7: of all rejected on-demand probes, what share was found by
  the related-market fan-out versus by the price-spike trigger itself,
  per spike-size bucket (the paper: roughly 70% / 30%, flat in size).
* Figure 5.8: after detecting an unavailable on-demand server, the
  probability that at least one related market in *another*
  availability zone is also unavailable within a window — decreasing
  in spike size (big spikes are local hotspots).
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.context import AnalysisContext
from repro.analysis.spikes import CUMULATIVE_SPIKE_BUCKETS
from repro.core.records import ProbeKind, ProbeTrigger

#: Trigger classes counted as "found by related probing".
RELATED_TRIGGERS = frozenset(
    {ProbeTrigger.RELATED_FAMILY, ProbeTrigger.RELATED_ZONE}
)


def rejection_attribution(
    context: AnalysisContext,
    buckets: tuple[float, ...] = CUMULATIVE_SPIKE_BUCKETS,
) -> dict[str, dict[float, float]]:
    """Figure 5.7: ``{"by_price_spikes"|"by_related_markets":
    {bucket: share}}`` — shares of rejected on-demand probes by what
    triggered them, cumulative in spike size."""
    spike_counts: dict[float, int] = defaultdict(int)
    related_counts: dict[float, int] = defaultdict(int)
    for record in context.database.probes(
        kind=ProbeKind.ON_DEMAND, rejected=True
    ):
        if record.trigger is ProbeTrigger.PRICE_SPIKE:
            target = spike_counts
        elif record.trigger in RELATED_TRIGGERS:
            target = related_counts
        else:
            continue
        for threshold in buckets:
            if record.spike_multiple > threshold or (
                threshold == 0.0 and record.spike_multiple > 0.0
            ):
                target[threshold] += 1
    result = {"by_price_spikes": {}, "by_related_markets": {}}
    for threshold in buckets:
        total = spike_counts[threshold] + related_counts[threshold]
        if total == 0:
            continue
        result["by_price_spikes"][threshold] = spike_counts[threshold] / total
        result["by_related_markets"][threshold] = related_counts[threshold] / total
    return result


def related_detections_per_trigger(context: AnalysisContext) -> float:
    """Average number of related-market rejections per spike-triggered
    rejection (the paper: "on average ... two servers within the same
    family")."""
    spike_rejections = 0
    related_rejections = 0
    for record in context.database.probes(kind=ProbeKind.ON_DEMAND, rejected=True):
        if record.trigger is ProbeTrigger.PRICE_SPIKE:
            spike_rejections += 1
        elif record.trigger in RELATED_TRIGGERS:
            related_rejections += 1
    if spike_rejections == 0:
        return 0.0
    return related_rejections / spike_rejections


def cross_zone_unavailability(
    context: AnalysisContext,
    windows: tuple[float, ...] = (300.0, 600.0, 900.0, 1800.0, 2400.0, 3600.0),
    buckets: tuple[float, ...] = CUMULATIVE_SPIKE_BUCKETS,
) -> dict[float, dict[float, float]]:
    """Figure 5.8: ``{window: {bucket: P(related zone unavailable)}}``.

    For each detected on-demand rejection (the *initial*, spike-
    triggered ones), whether at least one same-family market in a
    different availability zone was also rejected within the window.
    """
    detections = [
        (record.time, record.market, record.spike_multiple)
        for record in context.database.probes(
            kind=ProbeKind.ON_DEMAND, rejected=True
        )
        if record.trigger is ProbeTrigger.PRICE_SPIKE
    ]
    result: dict[float, dict[float, float]] = {}
    for window in windows:
        hits: dict[float, int] = defaultdict(int)
        totals: dict[float, int] = defaultdict(int)
        for when, market, multiple in detections:
            related = context.related_markets(market, other_zones_only=True)
            found = any(
                context.rejected_within(rel, ProbeKind.ON_DEMAND, when, window)
                for rel in related
            )
            for threshold in buckets:
                if multiple > threshold or (
                    threshold == 0.0 and multiple > 0.0
                ):
                    totals[threshold] += 1
                    if found:
                        hits[threshold] += 1
        result[window] = {
            threshold: hits[threshold] / totals[threshold]
            for threshold in buckets
            if totals[threshold] > 0
        }
    return result

"""Intrinsic bid prices — Figures 5.2 and 5.3.

* Figure 5.2: the bid that *actually* obtains a spot instance can
  exceed the published spot price (propagation lag + urgent demand);
  SpotLight measures it with the BidSpread probe.
* Figure 5.3: the least bid needed to *hold* an instance for the next
  ``k`` hours is the rolling maximum of the future spot price —
  substantially above the current price for volatile markets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class IntrinsicSample:
    """One BidSpread measurement."""

    time: float
    published_price: float
    intrinsic_price: float
    requests_used: int

    @property
    def premium(self) -> float:
        if self.published_price <= 0:
            return 0.0
        return self.intrinsic_price / self.published_price - 1.0


def least_price_to_hold(
    price_events: list[tuple[float, float]],
    horizon_hours: float,
    step: float = 300.0,
) -> list[tuple[float, float]]:
    """Figure 5.3: for each time, the minimum bid that would have held
    an instance (no price-triggered revocation) for ``horizon_hours``.

    That is the running maximum of the spot price over the next
    ``horizon_hours``; computed on a fixed ``step`` grid.
    """
    if horizon_hours <= 0:
        raise ValueError(f"horizon must be positive: {horizon_hours}")
    if not price_events:
        return []
    horizon = horizon_hours * 3600.0
    times = np.array([t for t, _ in price_events])
    prices = np.array([p for _, p in price_events])
    grid = np.arange(times[0], times[-1] + step, step)
    out: list[tuple[float, float]] = []
    for now in grid:
        end = now + horizon
        # Price in force at `now` plus all changes inside the horizon.
        idx_now = np.searchsorted(times, now, side="right") - 1
        idx_now = max(idx_now, 0)
        mask = (times > now) & (times <= end)
        level = prices[idx_now]
        held_max = max(level, prices[mask].max()) if mask.any() else level
        out.append((float(now), float(held_max)))
    return out


def intrinsic_premium_summary(samples: list[IntrinsicSample]) -> dict[str, float]:
    """Headline stats for Figure 5.2: how often and by how much the
    intrinsic price exceeds the published one, and how many requests
    BidSpread needed (the paper: 2-3 on average, at most 6)."""
    if not samples:
        return {
            "count": 0,
            "fraction_above_published": 0.0,
            "mean_premium": 0.0,
            "max_premium": 0.0,
            "mean_requests": 0.0,
            "max_requests": 0,
        }
    premiums = np.array([s.premium for s in samples])
    requests = np.array([s.requests_used for s in samples])
    return {
        "count": len(samples),
        "fraction_above_published": float((premiums > 0.005).mean()),
        "mean_premium": float(premiums.mean()),
        "max_premium": float(premiums.max()),
        "mean_requests": float(requests.mean()),
        "max_requests": int(requests.max()),
    }

"""Spot unavailability analyses — Figures 5.10 and 5.11.

Spot availability moves opposite to on-demand: the *lower* the spot
price, the more likely a spot request is held ``capacity-not-available``
(EC2 will not sell below its operating cost).  Figure 5.10 plots the
cumulative probability per price level and region; Figure 5.11 the
distribution of insufficiency events over price levels.
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.context import AnalysisContext
from repro.common import errors
from repro.core.records import ProbeKind, ProbeTrigger

#: Figures 5.10/5.11 sample the spot market with the *periodic*
#: CheckCapacity probes only — recovery re-probes and cross-checks are
#: issued exactly when unavailability is suspected and would bias the
#: estimate upward.
UNBIASED_TRIGGERS = frozenset({ProbeTrigger.PERIODIC})


def _unbiased_spot_probes(context: AnalysisContext):
    for record in context.database.probes(kind=ProbeKind.SPOT):
        if record.trigger in UNBIASED_TRIGGERS:
            yield record

#: Figure 5.10 cumulative price-level thresholds: the spot price as a
#: fraction of the on-demand price (``<1/10X`` ... ``<1X``, then >1X).
CUMULATIVE_PRICE_LEVELS: tuple[float, ...] = (
    1 / 10, 1 / 9, 1 / 8, 1 / 7, 1 / 6, 1 / 5, 1 / 4, 1 / 3, 1 / 2, 1.0,
)

#: Figure 5.11 interval price levels.
INTERVAL_PRICE_LEVELS: tuple[tuple[float, float], ...] = (
    (0.0, 1 / 10),
    (1 / 10, 1 / 9),
    (1 / 9, 1 / 8),
    (1 / 8, 1 / 7),
    (1 / 7, 1 / 6),
    (1 / 6, 1 / 5),
    (1 / 5, 1 / 4),
    (1 / 4, 1 / 3),
    (1 / 3, 1 / 2),
    (1 / 2, 1.0),
    (1.0, float("inf")),
)


def price_level_label(level: float) -> str:
    """``0.1`` -> ``"<1/10X"``, ``1.0`` -> ``"<1X"``."""
    if level >= 1.0:
        return "<1X"
    return f"<1/{round(1 / level)}X"


def spot_unavailability_by_price(
    context: AnalysisContext,
    levels: tuple[float, ...] = CUMULATIVE_PRICE_LEVELS,
    by_region: bool = True,
) -> dict[str, dict[float, float]]:
    """Figure 5.10: ``{region (or "all"): {level: P(capacity-not-available)}}``.

    Among spot probes whose trigger-time price fraction was below each
    level, the fraction held ``capacity-not-available``.
    """
    totals: dict[str, dict[float, int]] = defaultdict(lambda: defaultdict(int))
    hits: dict[str, dict[float, int]] = defaultdict(lambda: defaultdict(int))

    for record in _unbiased_spot_probes(context):
        fraction = record.spike_multiple  # spot price / on-demand price
        cna = record.outcome == errors.STATUS_CAPACITY_NOT_AVAILABLE
        keys = ["all"]
        if by_region:
            keys.append(record.market.region)
        for level in levels:
            if fraction < level:
                for key in keys:
                    totals[key][level] += 1
                    if cna:
                        hits[key][level] += 1
    return {
        key: {
            level: hits[key][level] / totals[key][level]
            for level in levels
            if totals[key][level] > 0
        }
        for key in totals
    }


def spot_insufficiency_distribution(
    context: AnalysisContext,
    levels: tuple[tuple[float, float], ...] = INTERVAL_PRICE_LEVELS,
) -> dict[str, dict[tuple[float, float], float]]:
    """Figure 5.11: per region, the share of its capacity-not-available
    events falling in each price-level interval (shares sum to 1)."""
    counts: dict[str, dict[tuple[float, float], int]] = defaultdict(
        lambda: defaultdict(int)
    )
    for record in _unbiased_spot_probes(context):
        if record.outcome != errors.STATUS_CAPACITY_NOT_AVAILABLE:
            continue
        for bucket in levels:
            lo, hi = bucket
            if lo <= record.spike_multiple < hi:
                counts[record.market.region][bucket] += 1
                break
    result: dict[str, dict[tuple[float, float], float]] = {}
    for region, region_counts in counts.items():
        total = sum(region_counts.values())
        result[region] = {
            bucket: region_counts[bucket] / total for bucket in levels
        }
    return result


def fraction_below_on_demand(context: AnalysisContext) -> float:
    """The paper's headline: ~98% of spot insufficiency happens while
    the spot price is below the on-demand price."""
    below = 0
    total = 0
    for record in _unbiased_spot_probes(context):
        if record.outcome != errors.STATUS_CAPACITY_NOT_AVAILABLE:
            continue
        total += 1
        if record.spike_multiple < 1.0:
            below += 1
    return below / total if total else 0.0

"""Spot unavailability analyses — Figures 5.10 and 5.11.

Spot availability moves opposite to on-demand: the *lower* the spot
price, the more likely a spot request is held ``capacity-not-available``
(EC2 will not sell below its operating cost).  Figure 5.10 plots the
cumulative probability per price level and region; Figure 5.11 the
distribution of insufficiency events over price levels.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.context import AnalysisContext
from repro.common import errors
from repro.core.records import ProbeKind, ProbeTrigger

#: Figures 5.10/5.11 sample the spot market with the *periodic*
#: CheckCapacity probes only — recovery re-probes and cross-checks are
#: issued exactly when unavailability is suspected and would bias the
#: estimate upward.
UNBIASED_TRIGGERS = frozenset({ProbeTrigger.PERIODIC})


def _unbiased_spot_columns(
    context: AnalysisContext,
) -> tuple[np.ndarray, np.ndarray, list[str]]:
    """The unbiased probes as columns: (price fraction, is-CNA, region).

    Read straight off the database's columnar probe view — boolean
    masks over packed code columns — instead of materializing a
    ``ProbeRecord`` object per sample on every figure call.  (Rows
    arrive market-major rather than globally time-ordered; the tallies
    below are order-free.)
    """
    columns = context.database.probe_columns()
    mask = columns.kind_mask(ProbeKind.SPOT) & columns.trigger_mask(
        *UNBIASED_TRIGGERS
    )
    fractions = columns.spike_multiples[mask]  # spot / on-demand price
    cna_code = columns.outcome_code(errors.STATUS_CAPACITY_NOT_AVAILABLE)
    cna = columns.outcome_codes[mask] == cna_code
    regions = columns.record_regions()[mask].tolist()
    return fractions, cna, regions

#: Figure 5.10 cumulative price-level thresholds: the spot price as a
#: fraction of the on-demand price (``<1/10X`` ... ``<1X``, then >1X).
CUMULATIVE_PRICE_LEVELS: tuple[float, ...] = (
    1 / 10, 1 / 9, 1 / 8, 1 / 7, 1 / 6, 1 / 5, 1 / 4, 1 / 3, 1 / 2, 1.0,
)

#: Figure 5.11 interval price levels.
INTERVAL_PRICE_LEVELS: tuple[tuple[float, float], ...] = (
    (0.0, 1 / 10),
    (1 / 10, 1 / 9),
    (1 / 9, 1 / 8),
    (1 / 8, 1 / 7),
    (1 / 7, 1 / 6),
    (1 / 6, 1 / 5),
    (1 / 5, 1 / 4),
    (1 / 4, 1 / 3),
    (1 / 3, 1 / 2),
    (1 / 2, 1.0),
    (1.0, float("inf")),
)


def price_level_label(level: float) -> str:
    """``0.1`` -> ``"<1/10X"``, ``1.0`` -> ``"<1X"``."""
    if level >= 1.0:
        return "<1X"
    return f"<1/{round(1 / level)}X"


def spot_unavailability_by_price(
    context: AnalysisContext,
    levels: tuple[float, ...] = CUMULATIVE_PRICE_LEVELS,
    by_region: bool = True,
) -> dict[str, dict[float, float]]:
    """Figure 5.10: ``{region (or "all"): {level: P(capacity-not-available)}}``.

    Among spot probes whose trigger-time price fraction was below each
    level, the fraction held ``capacity-not-available``.
    """
    fractions, cna, regions = _unbiased_spot_columns(context)
    if len(fractions) == 0:
        return {}
    groups: dict[str, np.ndarray] = {"all": np.ones(len(fractions), dtype=bool)}
    if by_region:
        region_array = np.asarray(regions)
        for region in dict.fromkeys(regions):  # first-seen order
            groups[region] = region_array == region

    result: dict[str, dict[float, float]] = {}
    for key, group in groups.items():
        per_level = {}
        for level in levels:
            below = group & (fractions < level)
            total = int(below.sum())
            if total > 0:
                per_level[level] = int((below & cna).sum()) / total
        if per_level:
            result[key] = per_level
    return result


def spot_insufficiency_distribution(
    context: AnalysisContext,
    levels: tuple[tuple[float, float], ...] = INTERVAL_PRICE_LEVELS,
) -> dict[str, dict[tuple[float, float], float]]:
    """Figure 5.11: per region, the share of its capacity-not-available
    events falling in each price-level interval (shares sum to 1)."""
    fractions, cna, regions = _unbiased_spot_columns(context)
    result: dict[str, dict[tuple[float, float], float]] = {}
    if not cna.any():
        return result
    # Each event lands in the *first* interval containing it, and the
    # shares are over bucketed events only — with partial level sets an
    # event outside every interval does not dilute the distribution.
    assigned = np.zeros(len(fractions), dtype=bool)
    bucket_masks = {}
    for lo, hi in levels:
        mask = cna & ~assigned & (fractions >= lo) & (fractions < hi)
        bucket_masks[(lo, hi)] = mask
        assigned |= mask
    region_array = np.asarray(regions)
    for region in dict.fromkeys(regions):
        in_region = region_array == region
        total = int((assigned & in_region).sum())
        if total == 0:
            continue
        result[region] = {
            bucket: int((mask & in_region).sum()) / total
            for bucket, mask in bucket_masks.items()
        }
    return result


def fraction_below_on_demand(context: AnalysisContext) -> float:
    """The paper's headline: ~98% of spot insufficiency happens while
    the spot price is below the on-demand price."""
    fractions, cna, _ = _unbiased_spot_columns(context)
    total = int(cna.sum())
    if not total:
        return 0.0
    return int((cna & (fractions < 1.0)).sum()) / total

"""Chapter 5 analyses, one module per figure family.

Each function takes a :class:`~repro.core.database.ProbeDatabase`
(usually via :class:`AnalysisContext`) and returns plain data series —
the same rows/series the paper's figures plot.

* :mod:`repro.analysis.spikes` — spike-event extraction and the
  cumulative ``>kX`` bucketing used throughout;
* :mod:`repro.analysis.availability` — Figures 5.4, 5.5, 5.6;
* :mod:`repro.analysis.related` — Figures 5.7, 5.8;
* :mod:`repro.analysis.duration` — Figure 5.9;
* :mod:`repro.analysis.spot` — Figures 5.10, 5.11;
* :mod:`repro.analysis.cross` — Figure 5.12;
* :mod:`repro.analysis.efficiency` — Figure 5.1 (market inefficiency);
* :mod:`repro.analysis.intrinsic` — Figures 5.2, 5.3.
"""

from repro.analysis.context import AnalysisContext
from repro.analysis.spikes import (
    CUMULATIVE_SPIKE_BUCKETS,
    SpikeEvent,
    bucket_label,
    cluster_spikes,
    extract_spike_events,
)

__all__ = [
    "AnalysisContext",
    "SpikeEvent",
    "extract_spike_events",
    "cluster_spikes",
    "CUMULATIVE_SPIKE_BUCKETS",
    "bucket_label",
]

"""On-demand vs spot unavailability relationship — Figure 5.12.

Four conditional probabilities as a function of the time window:

* ``od-od`` — after an on-demand rejection, at least one *related*
  on-demand market (same family, any availability zone) also rejected;
* ``spot-spot`` — the same for spot capacity-not-available;
* ``od-spot`` — after an on-demand rejection, a related spot market
  (including the same market) held capacity-not-available;
* ``spot-od`` — the reverse.

The paper reports od-od the strongest (12.9% -> 17.6% over 300-3600 s),
spot-spot next (2.5% -> 8.2%), and the two cross measures under 3%.
"""

from __future__ import annotations

from repro.analysis.context import AnalysisContext
from repro.core.market_id import MarketID
from repro.core.records import ProbeKind

PAIR_LABELS = ("od-od", "spot-spot", "od-spot", "spot-od")

_KIND = {"od": ProbeKind.ON_DEMAND, "spot": ProbeKind.SPOT}


def _related_including_self(
    context: AnalysisContext, market: MarketID
) -> list[MarketID]:
    return [market] + context.related_markets(market)


def cross_unavailability(
    context: AnalysisContext,
    windows: tuple[float, ...] = (300.0, 900.0, 1800.0, 2400.0, 3600.0),
) -> dict[str, dict[float, float]]:
    """Figure 5.12: ``{pair: {window: probability}}``.

    Source detections are the *initial* ones — spike-triggered probes
    for on-demand, periodic CheckCapacity probes for spot — so that
    recovery re-probes and cross-checks (which are issued exactly when
    the other contract is already known to be unavailable) do not bias
    the conditional probabilities.
    """
    from repro.core.records import ProbeTrigger

    detections = {
        "od": context.detections(
            ProbeKind.ON_DEMAND, triggers={ProbeTrigger.PRICE_SPIKE}
        ),
        "spot": context.detections(
            ProbeKind.SPOT, triggers={ProbeTrigger.PERIODIC}
        ),
    }
    result: dict[str, dict[float, float]] = {label: {} for label in PAIR_LABELS}
    for pair in PAIR_LABELS:
        source_name, target_name = pair.split("-")
        target_kind = _KIND[target_name]
        source = detections[source_name]
        for window in windows:
            hits = 0
            for when, market, _multiple in source:
                if source_name == target_name:
                    candidates = context.related_markets(market)
                else:
                    candidates = _related_including_self(context, market)
                if any(
                    context.rejected_within(rel, target_kind, when, window)
                    for rel in candidates
                ):
                    hits += 1
            result[pair][window] = hits / len(source) if source else 0.0
    return result

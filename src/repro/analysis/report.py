"""Study report generation.

Renders a complete availability-study report (the Chapter 5 numbers)
from a monitoring run as markdown — what a deployed SpotLight would
publish to its users on a schedule.
"""

from __future__ import annotations

from io import StringIO

from repro.analysis import availability as av
from repro.analysis import cross as cr
from repro.analysis import duration as du
from repro.analysis import related as rel
from repro.analysis import spot as spa
from repro.analysis.context import AnalysisContext
from repro.analysis.spikes import bucket_label
from repro.core.records import ProbeKind
from repro.core.service import SpotLight


def render_study_report(
    spotlight: SpotLight,
    context: AnalysisContext | None = None,
    windows: tuple[float, ...] = (900.0, 3600.0),
) -> str:
    """Render the full availability study as a markdown document."""
    context = context or AnalysisContext(
        spotlight.database, spotlight.provider.catalog
    )
    out = StringIO()
    stats = spotlight.stats()

    out.write("# SpotLight availability study\n\n")
    out.write(f"- markets monitored: {stats['monitored_markets']}\n")
    out.write(f"- probes issued: {stats['probes_logged']}\n")
    out.write(f"- unavailability detections: {stats['unavailability_detections']}\n")
    out.write(f"- probing spend: ${stats['budget_spent']:.2f}\n\n")

    out.write("## On-demand unavailability vs spot price spikes\n\n")
    result = av.unavailability_vs_spike(context, windows=windows)
    buckets = sorted(result[windows[0]])
    out.write("| window | " + " | ".join(bucket_label(b) for b in buckets) + " |\n")
    out.write("|" + "---|" * (len(buckets) + 1) + "\n")
    for window in windows:
        row = result[window]
        cells = " | ".join(f"{row[b]:.2%}" for b in buckets)
        out.write(f"| {window:.0f} s | {cells} |\n")

    out.write("\n## Per-region picture (window 900 s)\n\n")
    by_region = av.unavailability_by_region(context, window=900.0)
    out.write("| region | P(unavailable) at >1x |\n|---|---|\n")
    for region in sorted(by_region, key=lambda r: -by_region[r].get(1.0, 0.0)):
        out.write(f"| {region} | {by_region[region].get(1.0, 0.0):.2%} |\n")

    out.write("\n## Related-market probing\n\n")
    attribution = rel.rejection_attribution(context)
    share = attribution["by_related_markets"].get(0.0, 0.0)
    ratio = rel.related_detections_per_trigger(context)
    out.write(
        f"{share:.0%} of rejections were found by probing related markets "
        f"({ratio:.1f} related rejections per spike-triggered one).\n"
    )

    out.write("\n## Unavailability durations\n\n")
    summary = du.duration_summary(du.unavailability_durations(context))
    out.write(
        f"{summary['count']} periods; {summary['fraction_under_1h']:.0%} under "
        f"an hour; median {summary['median_hours']:.2f} h; "
        f"max {summary['max_hours']:.1f} h.\n"
    )

    out.write("\n## Spot capacity\n\n")
    below = spa.fraction_below_on_demand(context)
    spot_periods = context.database.unavailability_periods(kind=ProbeKind.SPOT)
    out.write(
        f"{len(spot_periods)} spot capacity-not-available periods; "
        f"{below:.0%} of insufficiency events occurred below the on-demand "
        f"price.\n"
    )

    out.write("\n## On-demand vs spot relationship (1 h window)\n\n")
    pairs = cr.cross_unavailability(context, windows=(3600.0,))
    out.write("| pair | probability |\n|---|---|\n")
    for pair in ("od-od", "spot-spot", "od-spot", "spot-od"):
        out.write(f"| {pair} | {pairs[pair][3600.0]:.1%} |\n")

    return out.getvalue()

"""Spike-event extraction and bucketing.

Throughout Chapter 5 the x-axis is the size of a spot price spike in
multiples of the on-demand price (``>kX`` cumulative buckets), and
"short periods of unavailability are clustered together": within a
window, only the first spike that correlates with a rejection counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.database import ProbeDatabase
from repro.core.market_id import MarketID

#: The paper's cumulative spike buckets: ``>0, >1X, ..., >10X``.
CUMULATIVE_SPIKE_BUCKETS: tuple[float, ...] = (
    0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0,
)

#: Non-cumulative interval buckets ``<1X, 1X-2X, ..., >10X`` (Fig 5.5).
INTERVAL_SPIKE_BUCKETS: tuple[tuple[float, float], ...] = tuple(
    [(0.0, 1.0)]
    + [(float(k), float(k + 1)) for k in range(1, 10)]
    + [(10.0, float("inf"))]
)


def bucket_label(threshold: float) -> str:
    """``1.0`` -> ``">1X"`` (``0.0`` -> ``">0"``), matching the paper."""
    if threshold == 0.0:
        return ">0"
    return f">{threshold:g}X"


def interval_label(bucket: tuple[float, float]) -> str:
    lo, hi = bucket
    if lo == 0.0:
        return "<1X"
    if hi == float("inf"):
        return ">10X"
    return f"{lo:g}X-{hi:g}X"


@dataclass(frozen=True)
class SpikeEvent:
    """A spot price observation at or above a trigger threshold."""

    time: float
    market: MarketID
    multiple: float  # price / on-demand price


def extract_spike_events(
    database: ProbeDatabase,
    on_demand_price,
    threshold_multiple: float = 1.0,
    markets: list[MarketID] | None = None,
) -> list[SpikeEvent]:
    """All price observations at/above ``threshold x on-demand``.

    ``on_demand_price`` is a callable ``MarketID -> float`` (usually
    ``SpotLightQuery.on_demand_price``).  Works directly on the
    database's columnar price views: the threshold filter is one
    vectorized comparison per market and only the qualifying samples
    are materialized as events.
    """
    events: list[SpikeEvent] = []
    market_set = None if markets is None else set(markets)
    for market, times, prices in database.iter_price_arrays():
        if market_set is not None and market not in market_set:
            continue
        multiples = prices / on_demand_price(market)
        hits = multiples >= threshold_multiple
        events.extend(
            SpikeEvent(t, market, m)
            for t, m in zip(times[hits].tolist(), multiples[hits].tolist())
        )
    events.sort(key=lambda e: (e.time, e.market))
    return events


def cluster_spikes(
    events: list[SpikeEvent], window: float
) -> list[SpikeEvent]:
    """Keep only the first spike per market per ``window`` seconds.

    This is the paper's clustering rule: "if the window is one hour,
    and there are multiple spikes within the hour ... we only count the
    first spike within the hour".
    """
    if window <= 0:
        raise ValueError(f"window must be positive: {window}")
    last_kept: dict[MarketID, float] = {}
    kept: list[SpikeEvent] = []
    for event in events:
        last = last_kept.get(event.market)
        if last is not None and event.time - last < window:
            continue
        last_kept[event.market] = event.time
        kept.append(event)
    return kept

"""Shared indexes over a probe database for the Chapter 5 analyses."""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict

from repro.core.database import ProbeDatabase
from repro.core.market_id import MarketID
from repro.core.records import ProbeKind, ProbeRecord
from repro.ec2.catalog import Catalog


class AnalysisContext:
    """Precomputed per-market indexes used by every analysis."""

    def __init__(self, database: ProbeDatabase, catalog: Catalog) -> None:
        self.database = database
        self.catalog = catalog
        # (market, kind) -> sorted times of rejected / fulfilled probes
        self._rejected_times: dict[tuple[MarketID, ProbeKind], list[float]] = (
            defaultdict(list)
        )
        self._probe_times: dict[tuple[MarketID, ProbeKind], list[float]] = (
            defaultdict(list)
        )
        for record in database.probes():
            key = (record.market, record.kind)
            self._probe_times[key].append(record.time)
            if record.rejected and self._is_capacity_rejection(record):
                self._rejected_times[key].append(record.time)
        self._related_cache: dict[MarketID, list[MarketID]] = {}

    @staticmethod
    def _is_capacity_rejection(record: ProbeRecord) -> bool:
        """Only genuine capacity errors count as unavailability.

        ``capacity-oversubscribed`` is a bid-level tie (too many bids at
        the clearing price) that a higher bid resolves — SpotLight's
        BidSpread treats it as "raise the bid", not "no capacity".
        """
        return record.outcome in (
            "InsufficientInstanceCapacity",
            "capacity-not-available",
        )

    # -- lookups -----------------------------------------------------------
    def rejected_within(
        self,
        market: MarketID,
        kind: ProbeKind,
        start: float,
        window: float,
    ) -> bool:
        """Any capacity rejection of (market, kind) in [start, start+window]."""
        times = self._rejected_times.get((market, kind), [])
        idx = bisect_left(times, start)
        return idx < len(times) and times[idx] <= start + window

    def probed_within(
        self, market: MarketID, kind: ProbeKind, start: float, window: float
    ) -> bool:
        """Any probe at all of (market, kind) in the window."""
        times = self._probe_times.get((market, kind), [])
        idx = bisect_left(times, start)
        return idx < len(times) and times[idx] <= start + window

    def rejection_count(
        self, market: MarketID, kind: ProbeKind
    ) -> int:
        return len(self._rejected_times.get((market, kind), []))

    def related_markets(
        self, market: MarketID, other_zones_only: bool = False
    ) -> list[MarketID]:
        """Markets in the same family/region/product (the fan-out set)."""
        if market not in self._related_cache:
            zones = self.catalog.zones_in_region(market.region)
            family_types = [
                t.name for t in self.catalog.types_in_family(market.family)
            ]
            self._related_cache[market] = [
                MarketID(az, itype, market.product)
                for az in zones
                for itype in family_types
                if not (az == market.availability_zone
                        and itype == market.instance_type)
            ]
        related = self._related_cache[market]
        if other_zones_only:
            return [
                m for m in related
                if m.availability_zone != market.availability_zone
            ]
        return related

    def detections(
        self, kind: ProbeKind, triggers=None
    ) -> list[tuple[float, MarketID, float]]:
        """Capacity rejections as (time, market, spike_multiple).

        ``triggers`` restricts to initial detections (e.g. only
        spike-triggered probes), excluding the recovery re-probes that
        would otherwise over-count long unavailability periods.
        """
        out = []
        for record in self.database.probes(kind=kind, rejected=True):
            if not self._is_capacity_rejection(record):
                continue
            if triggers is not None and record.trigger not in triggers:
                continue
            out.append((record.time, record.market, record.spike_multiple))
        out.sort(key=lambda item: item[0])
        return out

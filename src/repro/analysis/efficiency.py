"""Spot market inefficiency — Figure 5.1 and the arbitrage observation.

Two phenomena the paper demonstrates with price series:

* *within-family inversion* (Figure 5.1a): a smaller type (c3.2xlarge)
  sometimes trades above a larger one (c3.8xlarge), so one could buy
  the large instance cheap, split it, and resell — arbitrage an
  efficient market would not allow;
* *cross-zone divergence* (Figure 5.1b): the same type's price differs
  by 5-6x between availability zones of one region.

Both readers sample every market's step-function price series on a
shared time grid.  They work on the database's columnar views: one
``searchsorted`` per market resamples its whole series onto the grid,
instead of a per-sample Python scan per grid point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.database import ProbeDatabase
from repro.core.market_id import MarketID


def _sample_grid(
    db: ProbeDatabase, markets: list[MarketID], interval: float
) -> np.ndarray:
    """The shared sample times: ``interval`` steps over the union span."""
    first = None
    last = None
    for market in markets:
        times, _ = db.price_arrays(market)
        if len(times) == 0:
            continue
        first = times[0] if first is None else min(first, times[0])
        last = times[-1] if last is None else max(last, times[-1])
    if first is None:
        return np.empty(0)
    # Inclusive of the last observation but never past it, matching the
    # `while clock <= last` loop this replaces (the epsilon absorbs
    # float division error when the span is an exact multiple).
    steps = int(np.floor((last - first) / interval + 1e-9)) + 1
    return first + interval * np.arange(steps)


def _sampled_prices(
    db: ProbeDatabase, market: MarketID, grid: np.ndarray
) -> np.ndarray:
    """Step-function lookup of a market's price at each grid time.

    Returns NaN before the market's first sample.
    """
    times, prices = db.price_arrays(market)
    out = np.full(len(grid), np.nan)
    if len(times) == 0:
        return out
    idx = np.searchsorted(times, grid, side="right") - 1
    seen = idx >= 0
    out[seen] = prices[idx[seen]]
    return out


@dataclass(frozen=True)
class ArbitrageWindow:
    """A period where a smaller type cost more per unit than a larger one."""

    time: float
    small_type: str
    large_type: str
    small_price: float
    large_price: float

    @property
    def unit_ratio(self) -> float:
        """Small type's price relative to the same capacity bought large.

        Sizes within a family differ by powers of two; a ratio above 1
        means you could buy the large instance, split it, and undercut.
        """
        return self.small_price / self.large_price


def family_inversions(
    db: ProbeDatabase,
    markets: list[MarketID],
    units: dict[str, int],
    sample_interval: float = 900.0,
) -> list[ArbitrageWindow]:
    """Figure 5.1a: times when a smaller family member's *per-unit*
    price exceeded a larger member's.

    ``units`` maps instance type name to its capacity units.
    """
    grid = _sample_grid(db, markets, sample_interval)
    if len(grid) == 0:
        return []
    ordered = sorted(markets, key=lambda m: units[m.instance_type])
    sampled = {m: _sampled_prices(db, m, grid) for m in ordered}

    # Collect (grid index, small index, large index) hits, then sort by
    # time so the output order matches the per-instant scan it replaces.
    hits: list[tuple[int, int, int]] = []
    for i, small in enumerate(ordered):
        per_unit_small = sampled[small] / units[small.instance_type]
        for j in range(i + 1, len(ordered)):
            large = ordered[j]
            per_unit_large = sampled[large] / units[large.instance_type]
            with np.errstate(invalid="ignore"):
                inverted = per_unit_small > per_unit_large
            hits.extend((k, i, j) for k in np.flatnonzero(inverted))
    hits.sort()
    return [
        ArbitrageWindow(
            float(grid[k]),
            ordered[i].instance_type,
            ordered[j].instance_type,
            float(sampled[ordered[i]][k]),
            float(sampled[ordered[j]][k]),
        )
        for k, i, j in hits
    ]


def cross_zone_divergence(
    db: ProbeDatabase,
    markets: list[MarketID],
    sample_interval: float = 900.0,
) -> list[tuple[float, float]]:
    """Figure 5.1b: (time, max/min price ratio) across zones for one
    instance type.  An efficient market would keep the ratio near 1;
    the paper observes ratios of 5-6x."""
    grid = _sample_grid(db, markets, sample_interval)
    if len(grid) == 0:
        return []
    matrix = np.vstack([_sampled_prices(db, m, grid) for m in markets])
    defined = ~np.isnan(matrix)
    enough = defined.sum(axis=0) >= 2
    with np.errstate(invalid="ignore"):
        highest = np.nanmax(np.where(defined, matrix, -np.inf), axis=0)
        lowest = np.nanmin(np.where(defined, matrix, np.inf), axis=0)
    usable = enough & (lowest > 0)
    return list(
        zip(grid[usable].tolist(), (highest[usable] / lowest[usable]).tolist())
    )

"""Spot market inefficiency — Figure 5.1 and the arbitrage observation.

Two phenomena the paper demonstrates with price series:

* *within-family inversion* (Figure 5.1a): a smaller type (c3.2xlarge)
  sometimes trades above a larger one (c3.8xlarge), so one could buy
  the large instance cheap, split it, and resell — arbitrage an
  efficient market would not allow;
* *cross-zone divergence* (Figure 5.1b): the same type's price differs
  by 5-6x between availability zones of one region.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.database import ProbeDatabase
from repro.core.market_id import MarketID


def _price_series(db: ProbeDatabase, market: MarketID) -> list[tuple[float, float]]:
    return [(r.time, r.price) for r in db.prices(market)]


def _price_at(series: list[tuple[float, float]], when: float) -> float | None:
    """Step-function lookup (None before the first sample)."""
    result = None
    for t, p in series:
        if t > when:
            break
        result = p
    return result


@dataclass(frozen=True)
class ArbitrageWindow:
    """A period where a smaller type cost more per unit than a larger one."""

    time: float
    small_type: str
    large_type: str
    small_price: float
    large_price: float

    @property
    def unit_ratio(self) -> float:
        """Small type's price relative to the same capacity bought large.

        Sizes within a family differ by powers of two; a ratio above 1
        means you could buy the large instance, split it, and undercut.
        """
        return self.small_price / self.large_price


def family_inversions(
    db: ProbeDatabase,
    markets: list[MarketID],
    units: dict[str, int],
    sample_interval: float = 900.0,
) -> list[ArbitrageWindow]:
    """Figure 5.1a: times when a smaller family member's *per-unit*
    price exceeded a larger member's.

    ``units`` maps instance type name to its capacity units.
    """
    series = {m: _price_series(db, m) for m in markets}
    times = sorted({t for s in series.values() for t, _ in s})
    if not times:
        return []
    inversions: list[ArbitrageWindow] = []
    clock = times[0]
    while clock <= times[-1]:
        ordered = sorted(markets, key=lambda m: units[m.instance_type])
        for i, small in enumerate(ordered):
            for large in ordered[i + 1:]:
                ps = _price_at(series[small], clock)
                pl = _price_at(series[large], clock)
                if ps is None or pl is None:
                    continue
                per_unit_small = ps / units[small.instance_type]
                per_unit_large = pl / units[large.instance_type]
                if per_unit_small > per_unit_large:
                    inversions.append(
                        ArbitrageWindow(
                            clock,
                            small.instance_type,
                            large.instance_type,
                            ps,
                            pl,
                        )
                    )
        clock += sample_interval
    return inversions


def cross_zone_divergence(
    db: ProbeDatabase,
    markets: list[MarketID],
    sample_interval: float = 900.0,
) -> list[tuple[float, float]]:
    """Figure 5.1b: (time, max/min price ratio) across zones for one
    instance type.  An efficient market would keep the ratio near 1;
    the paper observes ratios of 5-6x."""
    series = {m: _price_series(db, m) for m in markets}
    times = sorted({t for s in series.values() for t, _ in s})
    if not times:
        return []
    out: list[tuple[float, float]] = []
    clock = times[0]
    while clock <= times[-1]:
        prices = [
            p
            for m in markets
            if (p := _price_at(series[m], clock)) is not None
        ]
        if len(prices) >= 2 and min(prices) > 0:
            out.append((clock, max(prices) / min(prices)))
        clock += sample_interval
    return out

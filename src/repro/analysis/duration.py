"""Unavailability duration CDF — Figure 5.9.

The paper: more than 83% of on-demand unavailability periods last under
an hour, but a non-trivial tail lasts multiple hours, with ~5% beyond
ten hours.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.context import AnalysisContext
from repro.core.records import ProbeKind


def unavailability_durations(
    context: AnalysisContext,
    kind: ProbeKind = ProbeKind.ON_DEMAND,
    horizon: float | None = None,
) -> list[float]:
    """All measured unavailability durations, in seconds.

    Served from the database's columnar period index (ordered like the
    period list: by start time, ties by market) — no period objects are
    materialized for the CDF.
    """
    return context.database.unavailability_durations(kind, horizon).tolist()


def duration_cdf(
    durations: list[float],
    grid_hours: tuple[float, ...] = (0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256),
) -> dict[float, float]:
    """CDF evaluated on the paper's log-scale hour grid:
    ``{hours: P(duration <= hours)}``."""
    if not durations:
        return {h: 1.0 for h in grid_hours}
    arr = np.asarray(durations) / 3600.0
    return {h: float((arr <= h).mean()) for h in grid_hours}


def duration_summary(durations: list[float]) -> dict[str, float]:
    """Headline numbers the paper quotes for Figure 5.9."""
    if not durations:
        return {
            "count": 0,
            "fraction_under_1h": 1.0,
            "fraction_over_10h": 0.0,
            "median_hours": 0.0,
            "max_hours": 0.0,
        }
    arr = np.asarray(durations) / 3600.0
    return {
        "count": int(arr.size),
        "fraction_under_1h": float((arr < 1.0).mean()),
        "fraction_over_10h": float((arr > 10.0).mean()),
        "median_hours": float(np.median(arr)),
        "max_hours": float(arr.max()),
    }

"""On-demand unavailability analyses — Figures 5.4, 5.5, 5.6.

* Figure 5.4: global P(on-demand unavailable) as a function of spike
  size, one line per clustering window.
* Figure 5.5: the share of rejected probes falling in each region, per
  (non-cumulative) spike-size bucket.
* Figure 5.6: P(unavailable) per region vs spike size, window 900 s.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.analysis.context import AnalysisContext
from repro.analysis.spikes import (
    CUMULATIVE_SPIKE_BUCKETS,
    INTERVAL_SPIKE_BUCKETS,
    SpikeEvent,
    cluster_spikes,
    extract_spike_events,
)
from repro.core.records import ProbeKind, ProbeTrigger


def _spike_events(
    context: AnalysisContext, threshold: float = 0.0
) -> list[SpikeEvent]:
    from repro.core.query import SpotLightQuery

    query = SpotLightQuery(context.database, context.catalog)
    return extract_spike_events(
        context.database, query.on_demand_price, threshold_multiple=threshold
    )


def unavailability_vs_spike(
    context: AnalysisContext,
    windows: tuple[float, ...] = (900.0, 1200.0, 1800.0, 2400.0, 3600.0, 7200.0),
    buckets: tuple[float, ...] = CUMULATIVE_SPIKE_BUCKETS,
    regions: list[str] | None = None,
) -> dict[float, dict[float, float]]:
    """Figure 5.4: ``{window: {bucket_threshold: P(unavailable)}}``.

    For each clustering window, the fraction of (clustered) spike
    events at/above each threshold that were followed by a rejected
    on-demand probe of the same market within the window.
    """
    events = _spike_events(context)
    if regions is not None:
        events = [e for e in events if e.market.region in regions]
    result: dict[float, dict[float, float]] = {}
    for window in windows:
        clustered = cluster_spikes(events, window)
        hits: dict[float, int] = defaultdict(int)
        totals: dict[float, int] = defaultdict(int)
        for event in clustered:
            rejected = context.rejected_within(
                event.market, ProbeKind.ON_DEMAND, event.time, window
            )
            for threshold in buckets:
                if event.multiple > threshold or (
                    threshold == 0.0 and event.multiple > 0.0
                ):
                    totals[threshold] += 1
                    if rejected:
                        hits[threshold] += 1
        result[window] = {
            threshold: (hits[threshold] / totals[threshold] if totals[threshold] else 0.0)
            for threshold in buckets
        }
    return result


def rejected_probes_by_region(
    context: AnalysisContext,
    buckets: tuple[tuple[float, float], ...] = INTERVAL_SPIKE_BUCKETS,
) -> dict[str, dict[tuple[float, float], float]]:
    """Figure 5.5: per spike-size interval, each region's share of the
    rejected spike-triggered probes (shares sum to 1 per bucket)."""
    columns = context.database.probe_columns()
    mask = (
        columns.kind_mask(ProbeKind.ON_DEMAND)
        & columns.rejected
        & columns.trigger_mask(ProbeTrigger.PRICE_SPIKE)
    )
    multiple_column = columns.spike_multiples[mask]
    region_column = columns.record_regions()[mask]
    # One membership mask per bucket; a record lands in the first (and,
    # the buckets being disjoint, only) interval containing it.
    bucket_masks = {
        bucket: (multiple_column >= bucket[0]) & (multiple_column < bucket[1])
        for bucket in buckets
    }
    regions = sorted(
        {str(r) for mask in bucket_masks.values() for r in region_column[mask]}
    )
    result: dict[str, dict[tuple[float, float], float]] = {
        region: {} for region in regions
    }
    for bucket, mask in bucket_masks.items():
        total = int(mask.sum())
        for region in regions:
            share = (
                int((mask & (region_column == region)).sum()) / total
                if total
                else 0.0
            )
            result[region][bucket] = share
    return result


def unavailability_by_region(
    context: AnalysisContext,
    window: float = 900.0,
    buckets: tuple[float, ...] = CUMULATIVE_SPIKE_BUCKETS,
) -> dict[str, dict[float, float]]:
    """Figure 5.6: ``{region: {bucket: P(unavailable)}}`` at one window."""
    events = cluster_spikes(_spike_events(context), window)
    hits: dict[str, dict[float, int]] = defaultdict(lambda: defaultdict(int))
    totals: dict[str, dict[float, int]] = defaultdict(lambda: defaultdict(int))
    for event in events:
        region = event.market.region
        rejected = context.rejected_within(
            event.market, ProbeKind.ON_DEMAND, event.time, window
        )
        for threshold in buckets:
            if event.multiple > threshold or (
                threshold == 0.0 and event.multiple > 0.0
            ):
                totals[region][threshold] += 1
                if rejected:
                    hits[region][threshold] += 1
    return {
        region: {
            threshold: (
                hits[region][threshold] / totals[region][threshold]
                if totals[region][threshold]
                else 0.0
            )
            for threshold in buckets
            if totals[region][threshold] > 0
        }
        for region in totals
    }

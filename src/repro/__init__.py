"""SpotLight: an information service for the cloud (reproduction).

This package reproduces the system from "SpotLight: An Information
Service for the Cloud" (Ouyang, UMass Amherst, 2016): a service that
actively probes an IaaS platform to learn the availability of
on-demand and spot servers, exploiting the loose correlation between
spot price spikes and on-demand unavailability.

Layout:

* :mod:`repro.ec2` — the simulated EC2 substrate (capacity pools,
  spot auctions, demand, lifecycles, limits, a boto3-like client);
* :mod:`repro.core` — SpotLight itself (probing policies, database,
  budget, query API);
* :mod:`repro.analysis` — the Chapter 5 analyses (one per figure);
* :mod:`repro.apps` — the Chapter 6 case studies (SpotCheck, SpotOn);
* :mod:`repro.traces` — synthetic spot-price trace generation.

Quickstart::

    from repro import EC2Simulator, FleetConfig, SpotLight, SpotLightConfig
    from repro.ec2.catalog import small_catalog

    sim = EC2Simulator(FleetConfig(catalog=small_catalog(), seed=1))
    spotlight = SpotLight(sim, SpotLightConfig(threshold_multiple=1.0))
    spotlight.start()
    sim.run_for(7 * 86400)          # monitor for a simulated week
    print(spotlight.stats())
    for period in spotlight.query.unavailability_periods():
        print(period.market, period.duration / 3600, "hours")
"""

from repro.core import (
    BudgetController,
    MarketID,
    ProbeDatabase,
    ProbeKind,
    ProbeRecord,
    ProbeTrigger,
    SpotLight,
    SpotLightConfig,
    SpotLightQuery,
    UnavailabilityPeriod,
)
from repro.ec2 import EC2Client, EC2Simulator
from repro.ec2.catalog import Catalog, default_catalog, small_catalog
from repro.ec2.platform import FleetConfig

__version__ = "1.0.0"

__all__ = [
    "SpotLight",
    "SpotLightConfig",
    "SpotLightQuery",
    "ProbeDatabase",
    "BudgetController",
    "MarketID",
    "ProbeKind",
    "ProbeRecord",
    "ProbeTrigger",
    "UnavailabilityPeriod",
    "EC2Simulator",
    "EC2Client",
    "FleetConfig",
    "Catalog",
    "default_catalog",
    "small_catalog",
    "__version__",
]

"""SpotLight: an information service for the cloud (reproduction).

This package reproduces the system from "SpotLight: An Information
Service for the Cloud" (Ouyang, UMass Amherst, 2016): a service that
actively probes an IaaS platform to learn the availability of
on-demand and spot servers, exploiting the loose correlation between
spot price spikes and on-demand unavailability.

Layout:

* :mod:`repro.ec2` — the simulated EC2 substrate (capacity pools,
  spot auctions, demand, lifecycles, limits, a boto3-like client);
* :mod:`repro.providers` — the data sources SpotLight runs against
  (the simulator, or replay of recorded price CSVs);
* :mod:`repro.core` — SpotLight itself (probing policies, pluggable
  datastores, budget, the query engine and serving frontend);
* :mod:`repro.server` / :mod:`repro.client` — the network tier: an
  asyncio HTTP serving subsystem over the query frontend, and the
  blocking client SDK that talks to it;
* :mod:`repro.chaos` — deterministic fault injection (seeded chaos
  plans, in-process fault points, WAL tail corruption) for proving the
  stack survives worker crashes, slow clients, and torn writes;
* :mod:`repro.replication` — live serving that survives failure: a
  crash-safe recorder commit protocol over the snapshot WAL, a replica
  tailer with bounded staleness, and the resumable change feed behind
  ``GET /watch``;
* :mod:`repro.analysis` — the Chapter 5 analyses (one per figure);
* :mod:`repro.apps` — the Chapter 6 case studies (SpotCheck, SpotOn);
* :mod:`repro.traces` — synthetic spot-price trace generation.

Quickstart::

    from repro import EC2Simulator, FleetConfig, SpotLight, SpotLightConfig
    from repro.ec2.catalog import small_catalog

    sim = EC2Simulator(FleetConfig(catalog=small_catalog(), seed=1))
    spotlight = SpotLight(sim, SpotLightConfig(threshold_multiple=1.0))
    spotlight.start()
    sim.run_for(7 * 86400)          # monitor for a simulated week
    print(spotlight.stats())
    for period in spotlight.query.unavailability_periods():
        print(period.market, period.duration / 3600, "hours")
"""

from repro.chaos import ChaosHarness, ChaosPlan, FaultError, FaultInjector
from repro.client import SpotLightClient
from repro.core import (
    BudgetController,
    Datastore,
    InMemoryDatastore,
    MarketID,
    ProbeDatabase,
    ProbeKind,
    ProbeRecord,
    ProbeTrigger,
    QueryFrontend,
    SnapshotDatastore,
    SpotLight,
    SpotLightConfig,
    SpotLightQuery,
    UnavailabilityPeriod,
)
from repro.core.frontend import QueryRequest, WireResponse
from repro.core.shard import ShardMap
from repro.ec2 import EC2Client, EC2Simulator
from repro.ec2.catalog import Catalog, default_catalog, small_catalog
from repro.ec2.platform import FleetConfig
from repro.providers import (
    CloudProvider,
    ProbeUnsupportedError,
    SimulatorProvider,
    TraceReplayProvider,
)
from repro.replication import (
    ChangeFeed,
    Recorder,
    ReplicaTailer,
    read_watermark,
)
from repro.router import SpotLightRouter
from repro.server import BackgroundServer, SpotLightServer
from repro.server_pool import ShardCluster, WorkerPool

__version__ = "1.7.0"

__all__ = [
    "SpotLight",
    "SpotLightConfig",
    "SpotLightQuery",
    "QueryFrontend",
    "QueryRequest",
    "WireResponse",
    "SpotLightServer",
    "BackgroundServer",
    "SpotLightRouter",
    "WorkerPool",
    "ShardCluster",
    "ShardMap",
    "SpotLightClient",
    "Recorder",
    "ReplicaTailer",
    "ChangeFeed",
    "read_watermark",
    "ChaosHarness",
    "ChaosPlan",
    "FaultError",
    "FaultInjector",
    "ProbeDatabase",
    "Datastore",
    "InMemoryDatastore",
    "SnapshotDatastore",
    "BudgetController",
    "MarketID",
    "ProbeKind",
    "ProbeRecord",
    "ProbeTrigger",
    "UnavailabilityPeriod",
    "EC2Simulator",
    "EC2Client",
    "FleetConfig",
    "Catalog",
    "CloudProvider",
    "SimulatorProvider",
    "TraceReplayProvider",
    "ProbeUnsupportedError",
    "default_catalog",
    "small_catalog",
    "__version__",
]

"""Probing cost control (Section 3.4).

Each fulfilled probe costs at least an hour of server time, so
SpotLight budgets: it tracks spend over a configurable window and stops
probing when the window's budget is gone.  It also offers the paper's
two knobs for fitting a budget — raising the spike threshold ``T`` and
lowering the sampling probability ``p`` — including the helper that
derives a workable ``T`` from historical spike frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class WindowSpend:
    """Spend accounting for one budget window."""

    window_start: float
    spent: float = 0.0
    probes_charged: int = 0
    probes_suppressed: int = 0


@dataclass
class BudgetController:
    """Tracks probing spend over fixed windows."""

    budget: float
    window: float
    windows: list[WindowSpend] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError(f"budget must be positive: {self.budget}")
        if self.window <= 0:
            raise ValueError(f"window must be positive: {self.window}")

    def _current(self, now: float) -> WindowSpend:
        index = int(now // self.window)
        start = index * self.window
        if not self.windows or self.windows[-1].window_start < start:
            self.windows.append(WindowSpend(start))
        return self.windows[-1]

    def can_spend(self, now: float, amount: float = 0.0) -> bool:
        """Whether the current window still has budget for ``amount``."""
        current = self._current(now)
        allowed = current.spent + amount <= self.budget
        if not allowed:
            current.probes_suppressed += 1
        return allowed

    def charge(self, now: float, amount: float) -> None:
        """Record actual spend (may exceed the budget: charges land
        after the decision to probe, exactly as on the real platform)."""
        if amount < 0:
            raise ValueError(f"cannot charge a negative amount: {amount}")
        current = self._current(now)
        current.spent += amount
        current.probes_charged += 1

    def total_spent(self) -> float:
        return sum(w.spent for w in self.windows)

    # -- threshold derivation (Section 3.4) ----------------------------------
    @staticmethod
    def derive_threshold(
        spike_multiples: list[float],
        probe_cost: float,
        budget: float,
        candidate_thresholds: tuple[float, ...] = (
            0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 7.0, 10.0,
        ),
    ) -> float:
        """Pick the lowest threshold ``T`` whose historical spike count
        fits the budget.

        ``spike_multiples`` is the history of observed spike sizes (in
        multiples of the on-demand price) over a past window of the
        same length the budget covers.  Returns the smallest candidate
        ``T`` such that ``count(spikes >= T) * probe_cost <= budget``;
        if even the largest candidate is too expensive, returns it
        anyway (the caller should then also lower ``p``).
        """
        if probe_cost <= 0:
            raise ValueError(f"probe cost must be positive: {probe_cost}")
        for threshold in sorted(candidate_thresholds):
            expected_probes = sum(1 for m in spike_multiples if m >= threshold)
            if expected_probes * probe_cost <= budget:
                return threshold
        return max(candidate_thresholds)

    @staticmethod
    def derive_sampling_probability(
        spike_multiples: list[float],
        threshold: float,
        probe_cost: float,
        budget: float,
    ) -> float:
        """Given a fixed ``T``, the sampling ratio ``p`` that fits the
        budget (clamped to [0, 1])."""
        if probe_cost <= 0:
            raise ValueError(f"probe cost must be positive: {probe_cost}")
        expected = sum(1 for m in spike_multiples if m >= threshold)
        if expected == 0:
            return 1.0
        return max(0.0, min(1.0, budget / (expected * probe_cost)))

    @staticmethod
    def spot_probe_interval(
        average_spot_price: float, budget: float, window: float
    ) -> float:
        """Rate-limit periodic spot probes: divide the budget by the
        average historical spot price to find how many probes the
        window affords (Section 3.3)."""
        if average_spot_price <= 0:
            raise ValueError(f"average price must be positive: {average_spot_price}")
        if budget <= 0:
            raise ValueError(f"budget must be positive: {budget}")
        affordable = budget / average_spot_price
        return window / max(affordable, 1.0)

"""Record types logged by SpotLight.

Every probe — fulfilled or rejected — becomes a :class:`ProbeRecord`
with its trigger, outcome, spike context, and cost; every observed
price update becomes a :class:`PriceRecord`.  Periods of unavailability
are derived from consecutive probe outcomes
(:class:`UnavailabilityPeriod`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.market_id import MarketID

#: Outcome string for a successful probe (any error code otherwise).
OUTCOME_FULFILLED = "fulfilled"

#: Column order of :meth:`ProbeRecord.to_row` — the probe-CSV schema
#: shared by exports and the snapshot datastore's write-ahead log.
PROBE_CSV_FIELDS = [
    "time",
    "availability_zone",
    "instance_type",
    "product",
    "kind",
    "trigger",
    "outcome",
    "spike_multiple",
    "bid_price",
    "cost",
    "request_id",
]


class ProbeKind(str, enum.Enum):
    """Which contract the probe requested."""

    ON_DEMAND = "on-demand"
    SPOT = "spot"


class ProbeTrigger(str, enum.Enum):
    """Why a probe was issued."""

    PRICE_SPIKE = "price-spike"  # spot price crossed T x on-demand
    RELATED_FAMILY = "related-family"  # fan-out after a detected rejection
    RELATED_ZONE = "related-zone"  # fan-out to other availability zones
    RECOVERY = "recovery"  # periodic re-probe until available
    PERIODIC = "periodic"  # scheduled spot CheckCapacity
    CROSS_CHECK = "cross-check"  # spot probe on od failure / vice versa
    BID_SPREAD = "bid-spread"  # intrinsic-price search
    REVOCATION = "revocation"  # revocation watcher
    MANUAL = "manual"  # user-requested probe


@dataclass(frozen=True)
class ProbeRecord:
    """One probe and its outcome."""

    time: float
    market: MarketID
    kind: ProbeKind
    trigger: ProbeTrigger
    outcome: str  # OUTCOME_FULFILLED or an error/status code
    spike_multiple: float = 0.0  # spot price / on-demand price at trigger time
    bid_price: float = 0.0  # spot probes only
    cost: float = 0.0  # dollars charged for this probe
    request_id: str = ""  # instance or spot-request id

    @property
    def rejected(self) -> bool:
        return self.outcome != OUTCOME_FULFILLED

    def to_row(self) -> dict[str, object]:
        """Flat dict for CSV/JSON export."""
        return {
            "time": self.time,
            "availability_zone": self.market.availability_zone,
            "instance_type": self.market.instance_type,
            "product": self.market.product,
            "kind": self.kind.value,
            "trigger": self.trigger.value,
            "outcome": self.outcome,
            "spike_multiple": self.spike_multiple,
            "bid_price": self.bid_price,
            "cost": self.cost,
            "request_id": self.request_id,
        }

    @classmethod
    def from_row(cls, row: dict[str, object]) -> "ProbeRecord":
        return cls(
            time=float(row["time"]),
            market=MarketID(
                str(row["availability_zone"]),
                str(row["instance_type"]),
                str(row["product"]),
            ),
            kind=ProbeKind(str(row["kind"])),
            trigger=ProbeTrigger(str(row["trigger"])),
            outcome=str(row["outcome"]),
            spike_multiple=float(row["spike_multiple"]),
            bid_price=float(row["bid_price"]),
            cost=float(row["cost"]),
            request_id=str(row["request_id"]),
        )


@dataclass(frozen=True)
class PriceRecord:
    """One observed spot price update."""

    time: float
    market: MarketID
    price: float


@dataclass(frozen=True)
class UnavailabilityPeriod:
    """A contiguous period during which probes of a market were rejected.

    ``end`` is the time of the first fulfilled probe after the run of
    rejections; ``end_observed`` is False when monitoring stopped before
    the market recovered (the duration is then a lower bound).
    """

    market: MarketID
    kind: ProbeKind
    start: float
    end: float
    probe_count: int
    end_observed: bool = True

    @property
    def duration(self) -> float:
        return self.end - self.start

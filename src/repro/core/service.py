"""The SpotLight service.

Wires the three layers together: a **provider** (the data source — the
in-process simulator, or a trace replay), a **datastore** (where probe
and price observations live), and the **serving layer** (the stateless
query engine plus the cached :class:`~repro.core.frontend.QueryFrontend`
applications consume).  SpotLight passively monitors the spot price of
every market in scope and actively probes per the market-based policy:

* a spot price at or above ``T x on-demand`` triggers an on-demand
  probe of that market;
* a detected rejection fans out probes to every market in the same
  family — first the same availability zone, then the other zones of
  the region — and cross-checks the spot market;
* rejected markets are re-probed every ``delta`` seconds until
  available, measuring the unavailability duration;
* spot markets are additionally probed on a periodic schedule
  (CheckCapacity), with BidSpread and Revocation probes available on
  demand.

Against a provider with no probe surface (``supports_probes`` False,
e.g. :class:`~repro.providers.trace_replay.TraceReplayProvider`) the
service runs **passively**: it records the price feed and serves
queries, but issues no probes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.common.errors import ProbeUnsupportedError
from repro.common.rng import RngStream
from repro.core.budget import BudgetController
from repro.core.config import SpotLightConfig
from repro.core.datastore import Datastore, InMemoryDatastore
from repro.core.frontend import QueryFrontend
from repro.core.market_id import MarketID
from repro.core.probe_manager import ProbeManager
from repro.core.probes import BidSpreadResult, ProbeExecutor
from repro.core.query import SpotLightQuery
from repro.core.records import PriceRecord, ProbeKind, ProbeTrigger
from repro.core.region_manager import RegionManager
from repro.ec2.platform import EC2Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.providers.base import CloudProvider


class SpotLight:
    """The information service: monitor, probe, log, answer queries."""

    def __init__(
        self,
        provider: CloudProvider | EC2Simulator,
        config: SpotLightConfig | None = None,
        record_prices: bool = True,
        datastore: Datastore | None = None,
    ) -> None:
        if isinstance(provider, EC2Simulator):
            # Imported lazily: repro.core must not import repro.providers
            # at module load (providers import core types back).
            from repro.providers.simulator import SimulatorProvider

            provider = SimulatorProvider(provider)
        self.provider = provider
        #: The wrapped simulator, when the provider has one (else None).
        self.simulator = getattr(provider, "simulator", None)
        #: True when the provider has no probe surface (trace replay):
        #: the service records prices and serves queries but never probes.
        self.passive = not provider.supports_probes
        self.config = config or SpotLightConfig()
        self.datastore = datastore if datastore is not None else InMemoryDatastore()
        #: The probe/price log (the datastore's read surface).
        self.database = self.datastore
        self.budget = BudgetController(
            budget=self.config.budget, window=self.config.budget_window
        )
        self.rng = RngStream(self.config.seed, "spotlight")
        self.executor = ProbeExecutor(
            provider, self.database, self.budget, self.config, self.rng.child("exec")
        )
        self.query = SpotLightQuery(self.database, provider.catalog)
        self.frontend = QueryFrontend(
            self.query,
            clock=lambda: self.provider.now,
            cache_ttl=self.config.frontend_cache_ttl,
        )
        self.record_prices = record_prices

        self.markets: dict[MarketID, ProbeManager] = {}
        for market in provider.market_ids():
            if not self._in_scope(market):
                continue
            self.markets[market] = ProbeManager(
                market,
                self,
                self.executor,
                self.config,
                self.rng.child(f"mgr/{market}"),
            )

        self.regions: dict[str, RegionManager] = {
            region: RegionManager(region, limits)
            for region, limits in provider.limits.items()
        }

        # Fan-out covers every product of the family: products of one
        # type share physical capacity, so they are related markets too.
        self._by_family_region: dict[tuple[str, str], list[MarketID]] = {}
        for market in self.markets:
            key = (market.region, market.family)
            self._by_family_region.setdefault(key, []).append(market)

        provider.subscribe_prices(self._on_market_update)
        self._spot_probe_started = False
        self.unavailability_detections = 0
        #: (market, start_time, time_to_revocation|None) per finished watch.
        self.revocation_observations: list[tuple[MarketID, float, float | None]] = []

    # -- scope -----------------------------------------------------------------
    def _in_scope(self, market: MarketID) -> bool:
        cfg = self.config
        if cfg.regions and market.region not in cfg.regions:
            return False
        if cfg.families and market.family not in cfg.families:
            return False
        if cfg.products and market.product not in cfg.products:
            return False
        return True

    # -- lifecycle -----------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic spot probing (price watching is always on)."""
        if self._spot_probe_started:
            return
        self._spot_probe_started = True
        if self.passive:
            return
        interval = self.config.spot_probe_interval
        if interval <= 0:
            return
        for index, manager in enumerate(self.markets.values()):
            # Stagger the first round uniformly over the interval so
            # probes don't thunder against the per-region API limits.
            offset = (index + 1) / (len(self.markets) + 1) * interval
            self.schedule(offset, self._make_periodic(manager))

    def _make_periodic(self, manager: ProbeManager) -> Callable[[], None]:
        def step() -> None:
            region = self.regions[manager.market.region]
            if region.can_issue_probe(priority=False):
                manager.periodic_spot_probe()
            self.schedule(self.config.spot_probe_interval, step)

        return step

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule service work on the provider's clock."""
        self.provider.schedule_in(delay, callback, label="spotlight")

    def save(self) -> None:
        """Persist the datastore (a no-op for the in-memory backend)."""
        self.datastore.save()

    # -- price feed --------------------------------------------------------------------
    def _on_market_update(self, market: MarketID, now: float, price: float) -> None:
        manager = self.markets.get(market)
        if manager is None:
            return
        if self.record_prices:
            self.database.insert_price(PriceRecord(now, market, price))
        if not self.passive:
            manager.on_price(now, price)

    # -- unavailability fan-out ------------------------------------------------------------
    def on_unavailable(
        self, market: MarketID, kind: ProbeKind, multiple: float
    ) -> None:
        """A probe of ``market`` was rejected; fan out per Section 3.2/3.3."""
        self.unavailability_detections += 1
        if kind is ProbeKind.ON_DEMAND:
            if self.config.cross_check_spot_on_unavailable:
                self.markets[market].cross_check_spot(multiple)
            self._fan_out_related(market, multiple)
        else:
            if self.config.cross_check_od_on_spot_unavailable:
                self.markets[market].cross_check_on_demand(multiple)

    def on_related_unavailable(self, market: MarketID, multiple: float) -> None:
        """A related-market probe found another rejection (logged only —
        related detections do not cascade into further fan-out)."""
        self.unavailability_detections += 1

    def _fan_out_related(self, origin: MarketID, multiple: float) -> None:
        if not self.config.probe_related_family:
            return
        region_mgr = self.regions[origin.region]
        key = (origin.region, origin.family)
        for market in self._by_family_region.get(key, []):
            if market == origin:
                continue
            same_zone = market.availability_zone == origin.availability_zone
            if not same_zone and not self.config.probe_related_zones:
                continue
            # Within the origin's zone the fan-out covers every product
            # (they share the type's physical capacity); across zones it
            # stays on the origin's product to bound the probe budget.
            if not same_zone and market.product != origin.product:
                continue
            if not region_mgr.can_issue_probe(priority=False):
                break
            trigger = (
                ProbeTrigger.RELATED_FAMILY if same_zone else ProbeTrigger.RELATED_ZONE
            )
            self.markets[market].probe_related(trigger, multiple)

    # -- direct probe entry points -------------------------------------------------------------
    def _require_active(self) -> None:
        if self.passive:
            raise ProbeUnsupportedError(
                "this SpotLight runs against a passive provider (no probe surface)"
            )

    def probe_on_demand(self, market: MarketID) -> None:
        """User-requested one-off on-demand probe."""
        self._require_active()
        manager = self._require_market(market)
        record = self.executor.request_on_demand(
            market, ProbeTrigger.MANUAL, self.executor.spike_multiple(market)
        )
        manager._handle_od_outcome(record, self.executor.spike_multiple(market))

    def probe_spot(self, market: MarketID) -> None:
        """User-requested one-off spot CheckCapacity probe."""
        self._require_active()
        manager = self._require_market(market)
        record = self.executor.check_capacity(market, ProbeTrigger.MANUAL)
        manager._handle_spot_outcome(record)

    def bid_spread(self, market: MarketID) -> BidSpreadResult:
        """Find the intrinsic bid price of a market (Figure 5.2)."""
        self._require_active()
        self._require_market(market)
        return self.executor.bid_spread(market)

    def watch_revocation(
        self,
        market: MarketID,
        duration: float = 6 * 3600.0,
        poll_interval: float = 300.0,
    ) -> bool:
        """The Revocation probe: hold a spot instance bid at the current
        price and watch whether a later spike revokes it.

        The outcome lands in :attr:`revocation_observations` as
        ``(market, start_time, time_to_revocation-or-None)``; ``None``
        means the instance survived the whole watch.  Returns False if
        the initial request did not fulfil.
        """
        self._require_active()
        self._require_market(market)
        request_id = self.executor.start_revocation_watch(market)
        if request_id is None:
            return False
        start = self.executor.now
        deadline = start + duration

        def poll() -> None:
            ttr = self.executor.poll_revocation(request_id)
            if ttr is not None:
                self.revocation_observations.append((market, start, ttr))
                return
            if self.executor.now >= deadline:
                self.executor.stop_revocation_watch(request_id)
                self.revocation_observations.append((market, start, None))
                return
            self.schedule(poll_interval, poll)

        self.schedule(poll_interval, poll)
        return True

    def _require_market(self, market: MarketID) -> ProbeManager:
        manager = self.markets.get(market)
        if manager is None:
            raise KeyError(f"market not monitored: {market}")
        return manager

    # -- reporting -------------------------------------------------------------------------------
    def stats(self) -> dict[str, object]:
        """Service-level counters for reports and tests."""
        return {
            "monitored_markets": len(self.markets),
            "probes_logged": len(self.database),
            "unavailability_detections": self.unavailability_detections,
            "budget_spent": self.budget.total_spent(),
            "passive": self.passive,
            "regions": {name: mgr.stats() for name, mgr in self.regions.items()},
            "frontend_cache": self.frontend.stats(),
        }

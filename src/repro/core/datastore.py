"""Pluggable datastore backends for the probe/price log.

:class:`~repro.core.database.ProbeDatabase` is the columnar in-memory
engine; the datastore layer puts it behind a small lifecycle interface
so a service can pick where its observations live:

* :class:`InMemoryDatastore` — the existing columnar store, volatile
  (``save``/``close`` are no-ops);
* :class:`SnapshotDatastore` — the same store bound to a directory on
  disk.  ``save()`` writes a full snapshot (probes + prices, CSV with
  exact float round-trip) and every insert is also appended to a
  write-ahead log, so a service that stops without a final snapshot
  still resumes from snapshot + log replay.  ``save()`` compacts: it
  rewrites the snapshot and drops the logs.

Snapshots are **generation-stamped**: data files are named
``probes.<gen>.csv`` / ``probes.wal.<gen>.csv`` and the manifest —
whose atomic replace is the single commit point of ``save()`` — names
the live generation.  A crash anywhere inside ``save()`` therefore
leaves either the old generation (snapshot + its WAL) or the new one
(whose snapshot already contains the WAL'd rows, and whose stale WAL is
ignored and swept on the next load) — never a double replay.

Both backends expose the complete :class:`ProbeDatabase` read/query
surface — they *are* probe databases — so the query engine, analysis
readers, and exports work against either unchanged.
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path
from typing import IO, Protocol, runtime_checkable

from repro.core.database import (
    PRICE_CSV_FIELDS,
    ProbeDatabase,
    parse_price_csv_row,
    price_csv_row,
)
from repro.core.records import PROBE_CSV_FIELDS, PriceRecord, ProbeRecord

SNAPSHOT_FORMAT_VERSION = 1

_MANIFEST = "manifest.json"


@runtime_checkable
class Datastore(Protocol):
    """Lifecycle contract a SpotLight datastore adds on top of the
    :class:`ProbeDatabase` ingestion/query surface."""

    def insert_probe(self, record: ProbeRecord) -> None: ...

    def insert_price(self, record: PriceRecord) -> None: ...

    def save(self) -> None:
        """Persist the current state (no-op for volatile backends)."""
        ...

    def close(self) -> None:
        """Flush and release any resources held by the backend."""
        ...


class InMemoryDatastore(ProbeDatabase):
    """The columnar in-memory backend: fast, volatile."""

    def save(self) -> None:
        return None

    def close(self) -> None:
        return None


def _fsync_path(path: Path) -> None:
    """Force a file's contents — or a directory's entries, i.e. its
    renames — to stable storage."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class _CsvAppender:
    """An append-mode CSV file whose writer is built once (the WAL sits
    on the per-sample insert path, so per-row writer construction would
    be pure overhead)."""

    def __init__(self, path: Path, header: list[str]) -> None:
        self.handle: IO[str] = path.open("a", newline="")
        self.writer = csv.writer(self.handle)
        if self.handle.tell() == 0:
            self.writer.writerow(header)

    def flush(self) -> None:
        """Flush and fsync: rows a caller explicitly flushed must
        survive a crash, not just reach the page cache."""
        self.handle.flush()
        os.fsync(self.handle.fileno())

    def close(self) -> None:
        self.handle.flush()
        os.fsync(self.handle.fileno())
        self.handle.close()


class SnapshotDatastore(ProbeDatabase):
    """A probe database bound to an on-disk snapshot directory.

    Opening a directory that holds a previous snapshot (and/or pending
    write-ahead logs) loads the full state back, so a second process
    answers queries over exactly the observations the first recorded.
    With ``must_exist`` the constructor refuses an empty directory
    instead of silently serving an empty store (catches typo'd paths).
    """

    def __init__(
        self,
        root: str | Path,
        append_log: bool = True,
        must_exist: bool = False,
    ) -> None:
        super().__init__()
        self.root = Path(root)
        if must_exist and not (self.root / _MANIFEST).exists():
            raise FileNotFoundError(
                f"{self.root}: no datastore snapshot here (missing {_MANIFEST})"
            )
        self.root.mkdir(parents=True, exist_ok=True)
        self._append_log = append_log
        self._generation = 0
        self._probe_wal: _CsvAppender | None = None
        self._price_wal: _CsvAppender | None = None
        self._load()

    # -- file layout --------------------------------------------------------
    def _snapshot_path(self, kind: str, generation: int) -> Path:
        return self.root / f"{kind}.{generation}.csv"

    def _wal_path(self, kind: str, generation: int) -> Path:
        return self.root / f"{kind}.wal.{generation}.csv"

    # -- ingestion (write-through to the WAL) -------------------------------
    def insert_probe(self, record: ProbeRecord) -> None:
        super().insert_probe(record)
        if self._append_log:
            if self._probe_wal is None:
                self._probe_wal = _CsvAppender(
                    self._wal_path("probes", self._generation), PROBE_CSV_FIELDS
                )
            row = record.to_row()
            self._probe_wal.writer.writerow(
                [row[field] for field in PROBE_CSV_FIELDS]
            )

    def insert_price(self, record: PriceRecord) -> None:
        super().insert_price(record)
        if self._append_log:
            if self._price_wal is None:
                self._price_wal = _CsvAppender(
                    self._wal_path("prices", self._generation), PRICE_CSV_FIELDS
                )
            self._price_wal.writer.writerow(
                price_csv_row(record.time, record.market, record.price)
            )

    # -- persistence --------------------------------------------------------
    def flush(self) -> None:
        """Push buffered WAL rows to disk without snapshotting."""
        for wal in (self._probe_wal, self._price_wal):
            if wal is not None:
                wal.flush()

    def save(self) -> None:
        """Write a full snapshot; the manifest replace is the atomic
        commit point, after which the old generation is swept.

        Every new-generation file is fsync'd (and the directory entry
        for its rename) *before* the manifest rename commits, and the
        manifest itself before its rename — so a crash immediately
        after "commit" can never leave a manifest pointing at torn or
        unwritten snapshot data.
        """
        self._close_wals()
        new_gen = self._generation + 1
        for kind, export in (
            ("probes", self.export_probes_csv),
            ("prices", self.export_prices_csv),
        ):
            tmp = self._snapshot_path(kind, new_gen).with_suffix(".csv.tmp")
            export(tmp)
            _fsync_path(tmp)
            tmp.replace(self._snapshot_path(kind, new_gen))
        manifest = {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "generation": new_gen,
            "probe_count": len(self),
            "price_count": self.price_count(),
            "markets": len(self.markets),
        }
        manifest_tmp = self.root / (_MANIFEST + ".tmp")
        manifest_tmp.write_text(json.dumps(manifest, indent=2))
        _fsync_path(manifest_tmp)
        _fsync_path(self.root)  # snapshot renames are durable pre-commit
        manifest_tmp.replace(self.root / _MANIFEST)  # commit point
        _fsync_path(self.root)  # ... and so is the commit itself
        self._generation = new_gen
        self._sweep_stale_files()

    def close(self) -> None:
        """Flush and close the WALs (state stays recoverable on disk)."""
        self._close_wals()

    def _close_wals(self) -> None:
        for attr in ("_probe_wal", "_price_wal"):
            wal = getattr(self, attr)
            if wal is not None:
                wal.close()
                setattr(self, attr, None)

    def _sweep_stale_files(self) -> None:
        """Remove snapshots and WALs of any generation but the live one."""
        keep = {
            self._snapshot_path("probes", self._generation),
            self._snapshot_path("prices", self._generation),
            self._wal_path("probes", self._generation),
            self._wal_path("prices", self._generation),
        }
        for pattern in ("probes.*.csv", "prices.*.csv"):
            for path in self.root.glob(pattern):
                if path not in keep:
                    path.unlink()

    # -- loading ------------------------------------------------------------
    def _load(self) -> None:
        manifest_path = self.root / _MANIFEST
        if manifest_path.exists():
            manifest = json.loads(manifest_path.read_text())
            version = manifest.get("format_version")
            if version != SNAPSHOT_FORMAT_VERSION:
                raise ValueError(
                    f"{self.root}: unsupported snapshot format {version!r}"
                )
            self._generation = int(manifest.get("generation", 0))
            self._load_probes(self._snapshot_path("probes", self._generation))
            self._load_prices(self._snapshot_path("prices", self._generation))
        # Only the live generation's WAL extends the snapshot; a WAL
        # left behind by a save() that crashed mid-sweep is stale (its
        # rows are already in the snapshot) and must not replay.
        self._sweep_stale_files()
        self._load_probes(self._wal_path("probes", self._generation))
        self._load_prices(self._wal_path("prices", self._generation))

    def _load_probes(self, path: Path) -> None:
        if not path.exists() or path.stat().st_size == 0:
            return
        with path.open(newline="") as handle:
            for row in csv.DictReader(handle):
                ProbeDatabase.insert_probe(self, ProbeRecord.from_row(row))

    def _load_prices(self, path: Path) -> None:
        if not path.exists() or path.stat().st_size == 0:
            return
        with path.open(newline="") as handle:
            for row in csv.DictReader(handle):
                ProbeDatabase.insert_price(self, parse_price_csv_row(row))

"""Pluggable datastore backends for the probe/price log.

:class:`~repro.core.database.ProbeDatabase` is the columnar in-memory
engine; the datastore layer puts it behind a small lifecycle interface
so a service can pick where its observations live:

* :class:`InMemoryDatastore` — the existing columnar store, volatile
  (``save``/``close`` are no-ops);
* :class:`SnapshotDatastore` — the same store bound to a directory on
  disk.  ``save()`` writes a full snapshot (probes + prices, CSV with
  exact float round-trip) and every insert is also appended to a
  write-ahead log, so a service that stops without a final snapshot
  still resumes from snapshot + log replay.  ``save()`` compacts: it
  rewrites the snapshot and retires the logs.

Snapshots are **generation-stamped**: data files are named
``probes.<gen>.csv`` / ``probes.wal.<gen>.csv`` and the manifest —
whose atomic replace is the single commit point of ``save()`` — names
the live generation.  A crash anywhere inside ``save()`` therefore
leaves either the old generation (snapshot + its WAL) or the new one
(whose snapshot already contains the WAL'd rows, and whose superseded
WAL is retired and never replayed on the clean path) — never a double
replay.

Crash-safety on top of that layout (see RELIABILITY.md):

* every WAL row carries a **CRC32 checksum column**; a load stops at
  the first torn or garbled row and recovers every complete record
  before it (the torn tail is trimmed so later appends stay parseable);
* the manifest records **SHA-256 checksums** of the snapshot files it
  commits, plus the identity of the *previous* generation — whose
  snapshot **and WAL are retained until the next save** — so a load
  that finds the live snapshot missing or corrupt falls back one
  generation and replays both generations' WALs, losing nothing that
  was ever committed;
* the superseded manifest is kept as ``manifest.prev.json`` so even a
  garbled ``manifest.json`` recovers;
* IO fault points (``datastore.wal.append``, ``datastore.wal.fsync``,
  ``datastore.save.snapshot``, ``datastore.save.commit``) let
  :class:`repro.chaos.FaultInjector` rehearse all of the above
  deterministically.

Both backends expose the complete :class:`ProbeDatabase` read/query
surface — they *are* probe databases — so the query engine, analysis
readers, and exports work against either unchanged.
"""

from __future__ import annotations

import csv
import hashlib
import json
import os
import zlib
from pathlib import Path
from typing import IO, Protocol, runtime_checkable

from repro.core.database import (
    PRICE_CSV_FIELDS,
    ProbeDatabase,
    parse_price_csv_row,
    price_csv_row,
)
from repro.core.records import PROBE_CSV_FIELDS, PriceRecord, ProbeRecord

#: Version 2 added snapshot checksums, the ``previous`` generation
#: block, and the WAL ``crc`` column; version-1 layouts (no checksums,
#: no retained previous generation) still load.
SNAPSHOT_FORMAT_VERSION = 2
_SUPPORTED_FORMAT_VERSIONS = (1, 2)

_MANIFEST = "manifest.json"
_MANIFEST_PREV = "manifest.prev.json"

#: Separator joining a WAL row's cells for its CRC (a byte that cannot
#: appear inside a CSV cell's text).
_CRC_SEP = "\x1f"


class CorruptSnapshotError(RuntimeError):
    """Neither the live snapshot generation nor its fallback could be
    verified — the directory needs operator attention."""


@runtime_checkable
class Datastore(Protocol):
    """Lifecycle contract a SpotLight datastore adds on top of the
    :class:`ProbeDatabase` ingestion/query surface."""

    def insert_probe(self, record: ProbeRecord) -> None: ...

    def insert_price(self, record: PriceRecord) -> None: ...

    def save(self) -> None:
        """Persist the current state (no-op for volatile backends)."""
        ...

    def close(self) -> None:
        """Flush and release any resources held by the backend."""
        ...


class InMemoryDatastore(ProbeDatabase):
    """The columnar in-memory backend: fast, volatile."""

    def save(self) -> None:
        return None

    def close(self) -> None:
        return None


def _fsync_path(path: Path) -> None:
    """Force a file's contents — or a directory's entries, i.e. its
    renames — to stable storage."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _row_crc(cells: list[str]) -> int:
    return zlib.crc32(_CRC_SEP.join(cells).encode("utf-8"))


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


class _CsvAppender:
    """An append-mode CSV file whose writer is built once (the WAL sits
    on the per-sample insert path, so per-row writer construction would
    be pure overhead).

    New files get a trailing ``crc`` column (CRC32 of the row's cells)
    so a reload can tell a complete record from a torn tail; appending
    to a pre-checksum WAL keeps that file's legacy row shape, because a
    mixed-width file would read as torn at the transition.
    """

    def __init__(self, path: Path, header: list[str]) -> None:
        self.with_crc = True
        if path.exists() and path.stat().st_size > 0:
            with path.open(newline="") as probe:
                existing = next(csv.reader(probe), None)
            self.with_crc = existing is not None and existing[-1:] == ["crc"]
        self.handle: IO[str] = path.open("a", newline="")
        self.writer = csv.writer(self.handle)
        if self.handle.tell() == 0:
            self.writer.writerow([*header, "crc"])

    def append(self, cells: list[object]) -> None:
        text = [c if isinstance(c, str) else str(c) for c in cells]
        if self.with_crc:
            text.append(str(_row_crc(text)))
        self.writer.writerow(text)

    def flush(self) -> None:
        """Flush and fsync: rows a caller explicitly flushed must
        survive a crash, not just reach the page cache."""
        self.handle.flush()
        os.fsync(self.handle.fileno())

    def close(self) -> None:
        self.handle.flush()
        os.fsync(self.handle.fileno())
        self.handle.close()


def _read_wal(path: Path) -> tuple[list[list[str]], list[dict], int]:
    """Read a WAL's complete records: ``(raw_rows, dict_rows, dropped)``.

    Stops at the first row that is short, over-long, or fails its CRC —
    everything from there on is a torn or garbled tail (CSV framing
    cannot be trusted past it) and is counted in ``dropped``.
    """
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if not header:
            return [], [], 0
        has_crc = header[-1:] == ["crc"]
        fields = header[:-1] if has_crc else header
        expected = len(header)
        raw_rows: list[list[str]] = []
        dict_rows: list[dict] = []
        dropped = 0
        try:
            for row in reader:
                if len(row) != expected:
                    dropped = 1 + sum(1 for _ in reader)
                    break
                if has_crc:
                    try:
                        ok = int(row[-1]) == _row_crc(row[:-1])
                    except ValueError:
                        ok = False
                    if not ok:
                        dropped = 1 + sum(1 for _ in reader)
                        break
                raw_rows.append(row)
                dict_rows.append(
                    dict(zip(fields, row[:-1] if has_crc else row))
                )
        except csv.Error:
            # The tail is so mangled the CSV layer itself gave up;
            # everything verified so far still stands.
            dropped = max(dropped, 1)
        return raw_rows, dict_rows, dropped


class SnapshotDatastore(ProbeDatabase):
    """A probe database bound to an on-disk snapshot directory.

    Opening a directory that holds a previous snapshot (and/or pending
    write-ahead logs) loads the full state back, so a second process
    answers queries over exactly the observations the first recorded.
    With ``must_exist`` the constructor refuses an empty directory
    instead of silently serving an empty store (catches typo'd paths).

    ``recovery_report`` describes what the load had to repair: per-WAL
    torn-tail drops and whether a snapshot-generation fallback was
    taken.  An empty report is the clean-world case.
    """

    def __init__(
        self,
        root: str | Path,
        append_log: bool = True,
        must_exist: bool = False,
        fault_injector: "object | None" = None,
        market_filter: "object | None" = None,
    ) -> None:
        # The filter must be installed before _load() so the snapshot
        # CSVs and WAL replay only materialize the owned slice.
        super().__init__(market_filter=market_filter)
        self.root = Path(root)
        if must_exist and not (self.root / _MANIFEST).exists():
            raise FileNotFoundError(
                f"{self.root}: no datastore snapshot here (missing {_MANIFEST})"
            )
        self.root.mkdir(parents=True, exist_ok=True)
        self._append_log = append_log
        self._faults = fault_injector
        self._generation = 0
        self._previous_generation = 0
        self._probe_wal: _CsvAppender | None = None
        self._price_wal: _CsvAppender | None = None
        self._wal_counts: dict[int, dict[str, int]] = {}
        self.recovery_report: dict[str, object] = {}
        self._load()

    @property
    def generation(self) -> int:
        """The live snapshot generation this store serves."""
        return self._generation

    @property
    def previous_generation(self) -> int:
        """The retained fallback generation (0 when there is none)."""
        return self._previous_generation

    @property
    def wal_row_counts(self) -> dict[str, int]:
        """Complete (CRC-verified) rows in the live generation's WALs:
        the rows replayed at load plus every row appended since.  This
        is the commit/apply cursor replication builds on — a recorder
        publishes these counts as its watermark, a read-only replica
        aligns its tail position to them after a load."""
        counts = self._wal_counts.get(self._generation)
        if counts is None:
            return {"probes": 0, "prices": 0}
        return dict(counts)

    def _bump_wal_count(
        self, kind: str, generation: int | None = None, rows: int = 1
    ) -> None:
        if generation is None:
            generation = self._generation
        counts = self._wal_counts.setdefault(
            generation, {"probes": 0, "prices": 0}
        )
        counts[kind] += rows

    def _fire(self, point: str) -> None:
        if self._faults is not None:
            self._faults.fire(point)

    # -- file layout --------------------------------------------------------
    def _snapshot_path(self, kind: str, generation: int) -> Path:
        return self.root / f"{kind}.{generation}.csv"

    def _wal_path(self, kind: str, generation: int) -> Path:
        return self.root / f"{kind}.wal.{generation}.csv"

    def _generations_on_disk(self) -> set[int]:
        """Every generation number any data file on disk claims (a
        failed ``save()`` can leave files of a generation no manifest
        names; the next save must not collide with them)."""
        generations: set[int] = set()
        for pattern in ("probes.*.csv", "prices.*.csv"):
            for path in self.root.glob(pattern):
                stem = path.name[:-len(".csv")]
                tail = stem.rsplit(".", 1)[-1]
                if tail.isdigit():
                    generations.add(int(tail))
        return generations

    # -- ingestion (write-through to the WAL) -------------------------------
    def insert_probe(self, record: ProbeRecord) -> None:
        if not self.owns(record.market):
            # Filtered records must not reach the WAL either: a shard's
            # snapshot directory holds only its own slice.
            return
        super().insert_probe(record)
        if self._append_log:
            self._fire("datastore.wal.append")
            if self._probe_wal is None:
                self._probe_wal = _CsvAppender(
                    self._wal_path("probes", self._generation), PROBE_CSV_FIELDS
                )
            row = record.to_row()
            self._probe_wal.append([row[field] for field in PROBE_CSV_FIELDS])
            self._bump_wal_count("probes")

    def insert_price(self, record: PriceRecord) -> None:
        if not self.owns(record.market):
            return
        super().insert_price(record)
        if self._append_log:
            self._fire("datastore.wal.append")
            if self._price_wal is None:
                self._price_wal = _CsvAppender(
                    self._wal_path("prices", self._generation), PRICE_CSV_FIELDS
                )
            self._price_wal.append(
                price_csv_row(record.time, record.market, record.price)
            )
            self._bump_wal_count("prices")

    # -- persistence --------------------------------------------------------
    def flush(self) -> None:
        """Push buffered WAL rows to disk without snapshotting."""
        for wal in (self._probe_wal, self._price_wal):
            if wal is not None:
                self._fire("datastore.wal.fsync")
                wal.flush()

    def save(self) -> None:
        """Write a full snapshot; the manifest replace is the atomic
        commit point.

        Every new-generation file is fsync'd (and the directory entry
        for its rename) *before* the manifest rename commits, and the
        manifest itself before its rename — so a crash immediately
        after "commit" can never leave a manifest pointing at torn or
        unwritten snapshot data.  The superseded generation (snapshot
        + WAL + manifest, kept as ``manifest.prev.json``) is retained
        until the *next* save as the fallback should the new snapshot
        ever fail verification; everything older is swept.
        """
        self._close_wals()
        old_generation = self._generation
        # Never reuse a generation number any file on disk claims — a
        # crashed save can leave un-manifested files behind, and a
        # fallback load can leave the live number "in the future".
        new_generation = (
            max({old_generation, *self._generations_on_disk()}) + 1
        )
        checksums: dict[str, str] = {}
        for kind, export in (
            ("probes", self.export_probes_csv),
            ("prices", self.export_prices_csv),
        ):
            self._fire("datastore.save.snapshot")
            tmp = self._snapshot_path(kind, new_generation).with_suffix(
                ".csv.tmp"
            )
            export(tmp)
            checksums[kind] = _sha256_file(tmp)
            _fsync_path(tmp)
            tmp.replace(self._snapshot_path(kind, new_generation))
        previous: dict[str, object] = {"generation": old_generation}
        manifest_path = self.root / _MANIFEST
        if manifest_path.exists():
            try:
                old_manifest = json.loads(manifest_path.read_text())
                previous = {
                    "generation": int(old_manifest.get("generation", 0)),
                    "checksums": old_manifest.get("checksums"),
                }
            except (json.JSONDecodeError, ValueError):
                pass  # a garbled old manifest cannot veto the new save
            prev_tmp = self.root / (_MANIFEST_PREV + ".tmp")
            prev_tmp.write_bytes(manifest_path.read_bytes())
            _fsync_path(prev_tmp)
            prev_tmp.replace(self.root / _MANIFEST_PREV)
        manifest = {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "generation": new_generation,
            "probe_count": len(self),
            "price_count": self.price_count(),
            "markets": len(self.markets),
            "checksums": checksums,
            "previous": previous,
        }
        manifest_tmp = self.root / (_MANIFEST + ".tmp")
        manifest_tmp.write_text(json.dumps(manifest, indent=2))
        _fsync_path(manifest_tmp)
        _fsync_path(self.root)  # snapshot renames are durable pre-commit
        self._fire("datastore.save.commit")
        manifest_tmp.replace(self.root / _MANIFEST)  # commit point
        _fsync_path(self.root)  # ... and so is the commit itself
        self._previous_generation = int(previous["generation"])
        self._generation = new_generation
        self._sweep_stale_files()

    def close(self) -> None:
        """Flush and close the WALs (state stays recoverable on disk)."""
        self._close_wals()

    def _close_wals(self) -> None:
        for attr in ("_probe_wal", "_price_wal"):
            wal = getattr(self, attr)
            if wal is not None:
                self._fire("datastore.wal.fsync")
                wal.close()
                setattr(self, attr, None)

    def _sweep_stale_files(self) -> None:
        """Remove snapshots and WALs of any generation but the live one
        and its retained fallback."""
        keep: set[Path] = set()
        for generation in {self._generation, self._previous_generation}:
            for kind in ("probes", "prices"):
                keep.add(self._snapshot_path(kind, generation))
                keep.add(self._wal_path(kind, generation))
        for pattern in ("probes.*.csv", "prices.*.csv"):
            for path in self.root.glob(pattern):
                if path not in keep:
                    path.unlink()

    # -- loading ------------------------------------------------------------
    def _parse_manifest(self, path: Path) -> dict | None:
        """The manifest as a dict, or None if unreadable/garbled.
        An explicitly *unsupported* version still raises: that is a
        future format, not corruption."""
        try:
            manifest = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(manifest, dict):
            return None
        version = manifest.get("format_version")
        if version not in _SUPPORTED_FORMAT_VERSIONS:
            raise ValueError(
                f"{self.root}: unsupported snapshot format {version!r}"
            )
        return manifest

    def _verify_generation(self, manifest: dict) -> bool:
        """True if every snapshot file the manifest names exists and
        matches its recorded checksum (legacy manifests without
        checksums verify by existence alone; generation 0 has no
        snapshot files by construction)."""
        generation = int(manifest.get("generation", 0))
        if generation == 0:
            return True
        checksums = manifest.get("checksums") or {}
        for kind in ("probes", "prices"):
            path = self._snapshot_path(kind, generation)
            if not path.exists():
                return False
            recorded = checksums.get(kind)
            if recorded is not None and _sha256_file(path) != recorded:
                return False
        return True

    def _load(self) -> None:
        manifest_path = self.root / _MANIFEST
        live_generation = 0
        fallback_reason: str | None = None
        manifest: dict | None = None
        if manifest_path.exists():
            manifest = self._parse_manifest(manifest_path)
            if manifest is None:
                fallback_reason = "manifest unreadable"
            else:
                live_generation = int(manifest.get("generation", 0))
        if manifest is not None and fallback_reason is None:
            if self._verify_generation(manifest):
                self._load_snapshot_generation(live_generation)
                self._generation = live_generation
                previous = manifest.get("previous") or {}
                self._previous_generation = int(
                    previous.get("generation", max(live_generation - 1, 0))
                )
                # Only now is it safe to retire generations the clean
                # load no longer needs.
                self._sweep_stale_files()
                self._replay_wal_generation(self._generation)
                return
            fallback_reason = "snapshot failed verification"
        if manifest is None and fallback_reason is None:
            # No manifest at all: a never-saved directory.  Replay
            # whatever WAL generation 0 holds.
            self._generation = 0
            self._previous_generation = 0
            self._replay_wal_generation(0)
            return
        self._fall_back(manifest, live_generation, fallback_reason)

    def _fall_back(
        self,
        manifest: dict | None,
        live_generation: int,
        reason: str,
    ) -> None:
        """The live generation is unusable: recover from the retained
        previous generation plus both generations' WALs.  Nothing is
        swept or rewritten here — a damaged directory is evidence, and
        the next successful ``save()`` supersedes all of it anyway."""
        previous = (manifest or {}).get("previous")
        if previous is None:
            prev_manifest = self._parse_manifest(self.root / _MANIFEST_PREV) \
                if (self.root / _MANIFEST_PREV).exists() else None
            if prev_manifest is not None:
                previous = {
                    "generation": int(prev_manifest.get("generation", 0)),
                    "checksums": prev_manifest.get("checksums"),
                }
        if previous is None:
            raise CorruptSnapshotError(
                f"{self.root}: {reason}, and no previous generation is "
                f"recorded to fall back to"
            )
        prev_generation = int(previous.get("generation", 0))
        if not self._verify_generation(
            {"generation": prev_generation,
             "checksums": previous.get("checksums")}
        ):
            raise CorruptSnapshotError(
                f"{self.root}: {reason}, and fallback generation "
                f"{prev_generation} failed verification too"
            )
        self._load_snapshot_generation(prev_generation)
        replayed = [prev_generation]
        # Every WAL generation after the fallback snapshot still holds
        # committed rows the snapshot does not: replay them in order.
        self._replay_wal_generation(prev_generation)
        wal_generations = sorted(
            generation
            for generation in self._generations_on_disk()
            if generation > prev_generation
            and (self._wal_path("probes", generation).exists()
                 or self._wal_path("prices", generation).exists())
        )
        for generation in wal_generations:
            self._replay_wal_generation(generation)
            replayed.append(generation)
        self._generation = max([live_generation, *replayed])
        self._previous_generation = prev_generation
        self.recovery_report["fallback"] = {
            "reason": reason,
            "live_generation": live_generation,
            "recovered_from": prev_generation,
            "wal_generations_replayed": replayed,
        }

    def _load_snapshot_generation(self, generation: int) -> None:
        if generation == 0:
            return
        self._load_probes(self._snapshot_path("probes", generation))
        self._load_prices(self._snapshot_path("prices", generation))

    def _replay_wal_generation(self, generation: int) -> None:
        for kind, insert in (
            ("probes", self._insert_probe_row),
            ("prices", self._insert_price_row),
        ):
            path = self._wal_path(kind, generation)
            if not path.exists() or path.stat().st_size == 0:
                continue
            raw_rows, dict_rows, dropped = _read_wal(path)
            for row in dict_rows:
                insert(row)
            if dict_rows:
                self._bump_wal_count(kind, generation, len(dict_rows))
            if dropped:
                self.recovery_report[f"{kind}_wal"] = {
                    "generation": generation,
                    "recovered": len(dict_rows),
                    "dropped": dropped,
                }
                if self._append_log:
                    self._trim_wal(path, raw_rows)

    def _trim_wal(self, path: Path, raw_rows: list[list[str]]) -> None:
        """Rewrite a WAL to just its verified rows, so appends after a
        torn-tail recovery land on a clean row boundary (read-only
        opens skip this — they do not own the directory)."""
        with path.open(newline="") as handle:
            header = next(csv.reader(handle), None)
        tmp = path.with_suffix(".csv.tmp")
        with tmp.open("w", newline="") as handle:
            writer = csv.writer(handle)
            if header:
                writer.writerow(header)
            writer.writerows(raw_rows)
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(path)
        _fsync_path(self.root)

    def _insert_probe_row(self, row: dict) -> None:
        ProbeDatabase.insert_probe(self, ProbeRecord.from_row(row))

    def _insert_price_row(self, row: dict) -> None:
        ProbeDatabase.insert_price(self, parse_price_csv_row(row))

    def _load_probes(self, path: Path) -> None:
        if not path.exists() or path.stat().st_size == 0:
            return
        with path.open(newline="") as handle:
            for row in csv.DictReader(handle):
                self._insert_probe_row(row)

    def _load_prices(self, path: Path) -> None:
        if not path.exists() or path.stat().st_size == 0:
            return
        with path.open(newline="") as handle:
            for row in csv.DictReader(handle):
                self._insert_price_row(row)

"""Per-region coordination.

The thesis describes hierarchical managers: each region has shared,
limited resources — the API call rate, the number of running on-demand
instances, and the number of open spot requests — and a region manager
that maximises the utility of each API request and avoids conflicts.

Here the :class:`RegionManager` paces probe admission against the
region's live limit state (so fan-out bursts don't burn the entire API
budget and starve recovery loops) and aggregates region-level
statistics for the service.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ec2.limits import RegionLimits

#: Keep this many API tokens in reserve for recovery re-probes.
API_TOKEN_RESERVE = 5.0
#: Keep this many instance slots free so recovery probes always fit.
INSTANCE_SLOT_RESERVE = 2


@dataclass
class RegionManager:
    """Admission control and statistics for one region."""

    region: str
    limits: RegionLimits
    probes_admitted: int = 0
    probes_deferred: int = 0
    _deferred_reasons: dict[str, int] = field(default_factory=dict)

    def can_issue_probe(self, priority: bool = False) -> bool:
        """Whether a probe should be issued now.

        Low-priority probes (fan-out to related markets) are deferred
        when the region is close to its API or instance limits;
        ``priority`` probes (initial spike probes, recovery steps) only
        require a single available slot.
        """
        bucket_available = self.limits.available_api_tokens
        slots_used = self.limits.running_on_demand
        if priority:
            admitted = bucket_available >= 1.0 and (
                slots_used < self.limits.max_on_demand_instances
            )
        else:
            admitted = bucket_available >= API_TOKEN_RESERVE and (
                slots_used
                <= self.limits.max_on_demand_instances - INSTANCE_SLOT_RESERVE
            )
        if admitted:
            self.probes_admitted += 1
        else:
            self.probes_deferred += 1
            reason = "api-rate" if bucket_available < API_TOKEN_RESERVE else "slots"
            self._deferred_reasons[reason] = self._deferred_reasons.get(reason, 0) + 1
        return admitted

    @property
    def deferred_reasons(self) -> dict[str, int]:
        return dict(self._deferred_reasons)

    def stats(self) -> dict[str, float]:
        """Region-level accounting for reports and tests."""
        return {
            "probes_admitted": self.probes_admitted,
            "probes_deferred": self.probes_deferred,
            "api_calls_made": self.limits.api_calls_made,
            "api_calls_throttled": self.limits.api_calls_throttled,
            "running_on_demand": self.limits.running_on_demand,
            "open_spot_requests": self.limits.open_spot_requests,
        }

"""Market identity.

The paper: "a market refers to a distinct server type offered under
multiple contracts ... each instance type in a particular availability
zone of a geographical region represents a distinct market."
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class MarketID:
    """One (availability zone, instance type, product) market."""

    availability_zone: str
    instance_type: str
    product: str

    @property
    def region(self) -> str:
        """``us-east-1d`` -> ``us-east-1``."""
        return self.availability_zone.rstrip("abcdefgh")

    @property
    def family(self) -> str:
        """``c3.2xlarge`` -> ``c3``."""
        return self.instance_type.split(".", 1)[0]

    @property
    def key(self) -> tuple[str, str, str]:
        """The tuple key used by the simulator's market map."""
        return (self.availability_zone, self.instance_type, self.product)

    @property
    def api_args(self) -> tuple[str, str, str]:
        """Positional arguments for the platform API calls
        (instance type first, matching ``run_instances`` and friends)."""
        return (self.instance_type, self.availability_zone, self.product)

    def same_family(self, other: "MarketID") -> bool:
        """Related markets: same family (the paper's fan-out criterion)."""
        return self.family == other.family

    def __str__(self) -> str:
        return f"{self.availability_zone}/{self.instance_type}/{self.product}"

"""SpotLight's probe/price database.

The prototype logged every request, status change, and price sample to
a database through a dedicated manager to avoid write conflicts between
concurrent markets; here the database is an in-memory, indexed store
with CSV export/import.  Everything the analysis chapter needs is
derived from it: rejected-probe sets, unavailability periods, and price
series.

Price series are stored **column-wise**: per market, two packed
``array('d')`` columns (times, prices) instead of one ``PriceRecord``
object per sample.  A paper-scale run logs millions of samples, and the
columnar layout keeps them compact, lets range queries bisect the time
column directly, and gives the analysis readers numpy snapshots
(:meth:`ProbeDatabase.price_arrays`).  ``PriceRecord`` objects are
materialized lazily, only when a caller asks for them.

Probe records are kept once, per market (the old layout also kept a
second global list, doubling memory); the global, time-ordered view is
derived lazily by merging the per-market lists and cached until the
next insert.

Alongside each market's record list, the database maintains **packed
probe columns** (times, kind/trigger/outcome codes, rejection flags,
spike multiples as ``array`` columns).  They feed the
:class:`~repro.core.read_index.ReadIndex` — the lazily-built,
incrementally-invalidated columnar views the vectorized query engine
and the analysis readers scan — without a per-record Python pass at
read time.
"""

from __future__ import annotations

import csv
import json
from array import array
from collections.abc import Callable
from heapq import merge
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.common.timeseries import TimeSeries
from repro.core.market_id import MarketID
from repro.core.read_index import KIND_CODES, TRIGGER_CODES, ReadIndex
from repro.core.records import (
    PriceRecord,
    ProbeKind,
    ProbeRecord,
    UnavailabilityPeriod,
)


#: Column order of the price-CSV schema, shared by exports, imports,
#: and the snapshot datastore's write-ahead log.
PRICE_CSV_FIELDS = ["time", "availability_zone", "instance_type", "product", "price"]


def price_csv_row(time: float, market: MarketID, price: float) -> list[str]:
    """One price sample as a CSV row (``repr`` floats round-trip exactly)."""
    return [
        repr(time),
        market.availability_zone,
        market.instance_type,
        market.product,
        repr(price),
    ]


def parse_price_csv_row(row: dict[str, str]) -> PriceRecord:
    """Inverse of :func:`price_csv_row` over a ``csv.DictReader`` row."""
    market = MarketID(
        row["availability_zone"], row["instance_type"], row["product"]
    )
    return PriceRecord(float(row["time"]), market, float(row["price"]))


def _materialize_prices(
    column: TimeSeries,
    market: MarketID,
    start: float | None = None,
    end: float | None = None,
) -> list[PriceRecord]:
    lo, hi = column.bounds(start, end)
    return [
        PriceRecord(t, market, p)
        for t, p in zip(column.times[lo:hi], column.values[lo:hi])
    ]


class _ProbeColumnBlock:
    """Packed per-market mirror of the probe-record list.

    The record objects stay canonical (the ``probes()`` API and CSV
    export hand them out); these columns exist so the read index can
    build its numpy views with array passes instead of touching every
    record object again.
    """

    __slots__ = (
        "times", "spike_multiples", "kinds", "triggers", "rejected", "outcomes"
    )

    def __init__(self) -> None:
        self.times = array("d")
        self.spike_multiples = array("d")
        self.kinds = array("b")
        self.triggers = array("b")
        self.rejected = array("b")
        self.outcomes = array("i")

    def append(self, record: ProbeRecord, outcome_code: int) -> None:
        self.times.append(record.time)
        self.spike_multiples.append(record.spike_multiple)
        self.kinds.append(KIND_CODES[record.kind])
        self.triggers.append(TRIGGER_CODES[record.trigger])
        self.rejected.append(1 if record.rejected else 0)
        self.outcomes.append(outcome_code)


class ProbeDatabase:
    """Indexed in-memory store of probe and price records."""

    def __init__(
        self, market_filter: Callable[[MarketID], bool] | None = None
    ) -> None:
        #: Optional shard predicate: records for markets it rejects are
        #: silently dropped at insert time, so a shard worker ingesting
        #: the full snapshot (or tailing a full WAL) indexes only its
        #: slice of the catalog.
        self._market_filter = market_filter
        self._probes_by_market: dict[MarketID, list[ProbeRecord]] = {}
        self._probe_count = 0
        self._all_probes_cache: list[ProbeRecord] | None = None
        self._prices_by_market: dict[MarketID, TimeSeries] = {}
        self._probe_blocks: dict[MarketID, _ProbeColumnBlock] = {}
        self._outcome_codes: dict[str, int] = {}
        self._outcome_names: list[str] = []
        self._read_index: ReadIndex | None = None

    @property
    def read_index(self) -> ReadIndex:
        """The columnar read-side index (built lazily, invalidated
        incrementally as records arrive)."""
        if self._read_index is None:
            self._read_index = ReadIndex(self)
        return self._read_index

    # -- ingestion -----------------------------------------------------------
    def owns(self, market: MarketID) -> bool:
        """Whether this store keeps records for ``market`` (shard filter)."""
        return self._market_filter is None or self._market_filter(market)

    def insert_probe(self, record: ProbeRecord) -> None:
        """Append a probe record (times must be non-decreasing per market)."""
        if not self.owns(record.market):
            return
        per_market = self._probes_by_market.setdefault(record.market, [])
        if per_market and record.time < per_market[-1].time:
            raise ValueError(
                f"probe records must arrive in time order for {record.market}"
            )
        per_market.append(record)
        self._probe_count += 1
        self._all_probes_cache = None
        code = self._outcome_codes.get(record.outcome)
        if code is None:
            code = len(self._outcome_names)
            self._outcome_codes[record.outcome] = code
            self._outcome_names.append(record.outcome)
        block = self._probe_blocks.get(record.market)
        if block is None:
            block = self._probe_blocks[record.market] = _ProbeColumnBlock()
        block.append(record, code)
        if self._read_index is not None:
            self._read_index.invalidate_probes(record.market, record.kind)

    def insert_price(self, record: PriceRecord) -> None:
        if not self.owns(record.market):
            return
        column = self._prices_by_market.setdefault(record.market, TimeSeries())
        if column.times and record.time < column.times[-1]:
            raise ValueError(
                f"price records must arrive in time order for {record.market}"
            )
        column.append(record.time, record.price)
        if self._read_index is not None:
            self._read_index.invalidate_prices(record.market)

    # -- raw queries -----------------------------------------------------------
    def __len__(self) -> int:
        return self._probe_count

    @property
    def markets(self) -> list[MarketID]:
        """All markets with at least one probe or price record."""
        return sorted(set(self._probes_by_market) | set(self._prices_by_market))

    def _all_probes(self) -> list[ProbeRecord]:
        """Every probe record, globally time-ordered (ties by market).

        Derived by merging the per-market time-ordered lists; cached
        until the next insert, so repeated analysis passes pay the merge
        once.
        """
        if self._all_probes_cache is None:
            per_market = [
                self._probes_by_market[market]
                for market in sorted(self._probes_by_market)
            ]
            self._all_probes_cache = list(
                merge(*per_market, key=lambda record: record.time)
            )
        return self._all_probes_cache

    def probes(
        self,
        market: MarketID | None = None,
        kind: ProbeKind | None = None,
        rejected: bool | None = None,
        start: float | None = None,
        end: float | None = None,
    ) -> list[ProbeRecord]:
        """Probe records filtered by market/kind/outcome/time range."""
        if market is not None:
            source = self._probes_by_market.get(market, [])
        else:
            source = self._all_probes()
        out = []
        for record in source:
            if kind is not None and record.kind is not kind:
                continue
            if rejected is not None and record.rejected != rejected:
                continue
            if start is not None and record.time < start:
                continue
            if end is not None and record.time > end:
                continue
            out.append(record)
        return out

    def prices(
        self,
        market: MarketID,
        start: float | None = None,
        end: float | None = None,
    ) -> list[PriceRecord]:
        """Price records for one market, time-ordered (materialized)."""
        column = self._prices_by_market.get(market)
        if column is None:
            return []
        return _materialize_prices(column, market, start, end)

    def price_arrays(
        self,
        market: MarketID,
        start: float | None = None,
        end: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Columnar snapshot of one market's price series: ``(times,
        prices)`` as numpy arrays (copies — safe to hold across further
        inserts)."""
        column = self._prices_by_market.get(market)
        if column is None:
            empty = np.empty(0, dtype=np.float64)
            return empty, empty
        return column.arrays(start, end)

    def price_count(self, market: MarketID | None = None) -> int:
        """Number of price samples (for one market or in total)."""
        if market is not None:
            return len(self._prices_by_market.get(market, ()))
        return sum(len(c) for c in self._prices_by_market.values())

    def price_at(self, market: MarketID, when: float) -> float | None:
        """The last observed price at or before ``when`` (None if unseen)."""
        column = self._prices_by_market.get(market)
        if column is None:
            return None
        return column.value_at_or_before(when)

    # -- derived data -------------------------------------------------------------
    def unavailability_periods(
        self,
        market: MarketID | None = None,
        kind: ProbeKind = ProbeKind.ON_DEMAND,
        horizon: float | None = None,
    ) -> list[UnavailabilityPeriod]:
        """Contiguous rejection runs, per market.

        A period starts at the first rejected probe after a fulfilled
        one and ends at the next fulfilled probe.  ``horizon`` caps
        still-open periods (monitoring end time).
        """
        markets = [market] if market is not None else self.markets
        periods: list[UnavailabilityPeriod] = []
        for mkt in markets:
            run_start: float | None = None
            run_count = 0
            last_time = 0.0
            for record in self._probes_by_market.get(mkt, []):
                if record.kind is not kind:
                    continue
                last_time = record.time
                if record.rejected:
                    if run_start is None:
                        run_start = record.time
                        run_count = 0
                    run_count += 1
                elif run_start is not None:
                    periods.append(
                        UnavailabilityPeriod(
                            mkt, kind, run_start, record.time, run_count
                        )
                    )
                    run_start = None
            if run_start is not None:
                end = horizon if horizon is not None else last_time
                periods.append(
                    UnavailabilityPeriod(
                        mkt, kind, run_start, max(end, run_start), run_count,
                        end_observed=False,
                    )
                )
        periods.sort(key=lambda p: (p.start, p.market))
        return periods

    def probe_columns(self):
        """Every probe record as flat columns (see
        :meth:`~repro.core.read_index.ReadIndex.probe_columns`) — the
        view the analysis readers tally over instead of materializing
        record objects per call."""
        return self.read_index.probe_columns()

    def unavailability_durations(
        self,
        kind: ProbeKind = ProbeKind.ON_DEMAND,
        horizon: float | None = None,
    ) -> np.ndarray:
        """All period durations as one array, ordered like
        :meth:`unavailability_periods` (by start, ties by market)."""
        return self.read_index.durations_stack(kind, horizon)

    def total_probe_cost(self) -> float:
        return sum(
            record.cost
            for records in self._probes_by_market.values()
            for record in records
        )

    def rejection_rate(
        self, market: MarketID | None = None, kind: ProbeKind | None = None
    ) -> float:
        """Fraction of probes rejected (0.0 when there are no probes)."""
        records = self.probes(market=market, kind=kind)
        if not records:
            return 0.0
        return sum(1 for r in records if r.rejected) / len(records)

    # -- persistence --------------------------------------------------------------------
    def export_probes_csv(self, path: str | Path) -> int:
        """Write all probe records to CSV (time-ordered); returns the row count."""
        rows = [record.to_row() for record in self._all_probes()]
        path = Path(path)
        with path.open("w", newline="") as handle:
            if not rows:
                handle.write("")
                return 0
            writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
        return len(rows)

    @classmethod
    def import_probes_csv(cls, path: str | Path) -> "ProbeDatabase":
        db = cls()
        with Path(path).open(newline="") as handle:
            for row in csv.DictReader(handle):
                db.insert_probe(ProbeRecord.from_row(row))
        return db

    def export_prices_csv(self, path: str | Path) -> int:
        """Write all price series to CSV; returns the sample count.

        Markets are written in sorted order, each market's samples in
        time order, so the file is deterministic and re-importable.
        """
        path = Path(path)
        count = 0
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(PRICE_CSV_FIELDS)
            for market in sorted(self._prices_by_market):
                column = self._prices_by_market[market]
                for t, p in zip(column.times, column.values):
                    writer.writerow(price_csv_row(t, market, p))
                    count += 1
        return count

    @classmethod
    def import_prices_csv(cls, path: str | Path) -> "ProbeDatabase":
        db = cls()
        with Path(path).open(newline="") as handle:
            for row in csv.DictReader(handle):
                db.insert_price(parse_price_csv_row(row))
        return db

    def export_prices_json(self, path: str | Path) -> int:
        """Write all price series to JSON; returns the sample count."""
        payload = {
            str(market): list(zip(column.times, column.values))
            for market, column in self._prices_by_market.items()
        }
        Path(path).write_text(json.dumps(payload))
        return sum(len(v) for v in payload.values())

    def iter_price_series(
        self,
    ) -> Iterator[tuple[MarketID, list[PriceRecord]]]:
        for market, column in self._prices_by_market.items():
            yield market, _materialize_prices(column, market)

    def iter_price_arrays(
        self,
    ) -> Iterator[tuple[MarketID, np.ndarray, np.ndarray]]:
        """Columnar iteration: ``(market, times, prices)`` per market."""
        for market, column in self._prices_by_market.items():
            times, prices = column.arrays()
            yield market, times, prices

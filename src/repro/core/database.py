"""SpotLight's probe/price database.

The prototype logged every request, status change, and price sample to
a database through a dedicated manager to avoid write conflicts between
concurrent markets; here the database is an in-memory, indexed store
with CSV export/import.  Everything the analysis chapter needs is
derived from it: rejected-probe sets, unavailability periods, and price
series.
"""

from __future__ import annotations

import csv
import json
from bisect import bisect_left, bisect_right
from collections import defaultdict
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.market_id import MarketID
from repro.core.records import (
    OUTCOME_FULFILLED,
    PriceRecord,
    ProbeKind,
    ProbeRecord,
    UnavailabilityPeriod,
)


class ProbeDatabase:
    """Indexed in-memory store of probe and price records."""

    def __init__(self) -> None:
        self._probes: list[ProbeRecord] = []
        self._probes_by_market: dict[MarketID, list[ProbeRecord]] = defaultdict(list)
        self._prices_by_market: dict[MarketID, list[PriceRecord]] = defaultdict(list)

    # -- ingestion -----------------------------------------------------------
    def insert_probe(self, record: ProbeRecord) -> None:
        """Append a probe record (times must be non-decreasing per market)."""
        per_market = self._probes_by_market[record.market]
        if per_market and record.time < per_market[-1].time:
            raise ValueError(
                f"probe records must arrive in time order for {record.market}"
            )
        self._probes.append(record)
        per_market.append(record)

    def insert_price(self, record: PriceRecord) -> None:
        per_market = self._prices_by_market[record.market]
        if per_market and record.time < per_market[-1].time:
            raise ValueError(
                f"price records must arrive in time order for {record.market}"
            )
        per_market.append(record)

    # -- raw queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._probes)

    @property
    def markets(self) -> list[MarketID]:
        """All markets with at least one probe or price record."""
        return sorted(set(self._probes_by_market) | set(self._prices_by_market))

    def probes(
        self,
        market: MarketID | None = None,
        kind: ProbeKind | None = None,
        rejected: bool | None = None,
        start: float | None = None,
        end: float | None = None,
    ) -> list[ProbeRecord]:
        """Probe records filtered by market/kind/outcome/time range."""
        source: Iterable[ProbeRecord]
        if market is not None:
            source = self._probes_by_market.get(market, [])
        else:
            source = self._probes
        out = []
        for record in source:
            if kind is not None and record.kind is not kind:
                continue
            if rejected is not None and record.rejected != rejected:
                continue
            if start is not None and record.time < start:
                continue
            if end is not None and record.time > end:
                continue
            out.append(record)
        return out

    def prices(
        self,
        market: MarketID,
        start: float | None = None,
        end: float | None = None,
    ) -> list[PriceRecord]:
        """Price records for one market, time-ordered."""
        records = self._prices_by_market.get(market, [])
        if start is None and end is None:
            return list(records)
        times = [r.time for r in records]
        lo = 0 if start is None else bisect_left(times, start)
        hi = len(records) if end is None else bisect_right(times, end)
        return records[lo:hi]

    def price_at(self, market: MarketID, when: float) -> float | None:
        """The last observed price at or before ``when`` (None if unseen)."""
        records = self._prices_by_market.get(market, [])
        times = [r.time for r in records]
        idx = bisect_right(times, when) - 1
        return records[idx].price if idx >= 0 else None

    # -- derived data -------------------------------------------------------------
    def unavailability_periods(
        self,
        market: MarketID | None = None,
        kind: ProbeKind = ProbeKind.ON_DEMAND,
        horizon: float | None = None,
    ) -> list[UnavailabilityPeriod]:
        """Contiguous rejection runs, per market.

        A period starts at the first rejected probe after a fulfilled
        one and ends at the next fulfilled probe.  ``horizon`` caps
        still-open periods (monitoring end time).
        """
        markets = [market] if market is not None else self.markets
        periods: list[UnavailabilityPeriod] = []
        for mkt in markets:
            run_start: float | None = None
            run_count = 0
            last_time = 0.0
            for record in self._probes_by_market.get(mkt, []):
                if record.kind is not kind:
                    continue
                last_time = record.time
                if record.rejected:
                    if run_start is None:
                        run_start = record.time
                        run_count = 0
                    run_count += 1
                elif run_start is not None:
                    periods.append(
                        UnavailabilityPeriod(
                            mkt, kind, run_start, record.time, run_count
                        )
                    )
                    run_start = None
            if run_start is not None:
                end = horizon if horizon is not None else last_time
                periods.append(
                    UnavailabilityPeriod(
                        mkt, kind, run_start, max(end, run_start), run_count,
                        end_observed=False,
                    )
                )
        periods.sort(key=lambda p: (p.start, p.market))
        return periods

    def total_probe_cost(self) -> float:
        return sum(record.cost for record in self._probes)

    def rejection_rate(
        self, market: MarketID | None = None, kind: ProbeKind | None = None
    ) -> float:
        """Fraction of probes rejected (0.0 when there are no probes)."""
        records = self.probes(market=market, kind=kind)
        if not records:
            return 0.0
        return sum(1 for r in records if r.rejected) / len(records)

    # -- persistence --------------------------------------------------------------------
    def export_probes_csv(self, path: str | Path) -> int:
        """Write all probe records to CSV; returns the row count."""
        rows = [record.to_row() for record in self._probes]
        path = Path(path)
        with path.open("w", newline="") as handle:
            if not rows:
                handle.write("")
                return 0
            writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
        return len(rows)

    @classmethod
    def import_probes_csv(cls, path: str | Path) -> "ProbeDatabase":
        db = cls()
        with Path(path).open(newline="") as handle:
            for row in csv.DictReader(handle):
                db.insert_probe(ProbeRecord.from_row(row))
        return db

    def export_prices_json(self, path: str | Path) -> int:
        """Write all price series to JSON; returns the sample count."""
        payload = {
            str(market): [(r.time, r.price) for r in records]
            for market, records in self._prices_by_market.items()
        }
        Path(path).write_text(json.dumps(payload))
        return sum(len(v) for v in payload.values())

    def iter_price_series(
        self,
    ) -> Iterator[tuple[MarketID, list[PriceRecord]]]:
        for market, records in self._prices_by_market.items():
            yield market, list(records)

"""SpotLight's query interface.

The service the paper envisions: applications query availability
characteristics programmatically to continuously optimise server and
contract selection.  The flagship example from Chapter 3: "the top ten
server types with the longest mean-time-to-revocation for a bid price
equal to the corresponding on-demand price over the past week".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.database import ProbeDatabase
from repro.core.market_id import MarketID
from repro.core.records import ProbeKind, UnavailabilityPeriod
from repro.ec2.catalog import Catalog


@dataclass(frozen=True)
class MarketStability:
    """Ranking entry returned by :meth:`SpotLightQuery.top_stable_markets`."""

    market: MarketID
    mean_time_to_revocation: float
    availability_at_bid: float
    mean_price: float


class SpotLightQuery:
    """Read-only queries over the probe database."""

    def __init__(self, database: ProbeDatabase, catalog: Catalog) -> None:
        self._db = database
        self._catalog = catalog

    # -- pricing helpers -----------------------------------------------------
    def on_demand_price(self, market: MarketID) -> float:
        return self._catalog.on_demand_price(
            market.instance_type, market.region, market.product
        )

    # -- availability -----------------------------------------------------------
    def unavailability_periods(
        self,
        market: MarketID | None = None,
        kind: ProbeKind = ProbeKind.ON_DEMAND,
        horizon: float | None = None,
    ) -> list[UnavailabilityPeriod]:
        return self._db.unavailability_periods(market, kind, horizon)

    def availability(
        self,
        market: MarketID,
        kind: ProbeKind = ProbeKind.ON_DEMAND,
        start: float = 0.0,
        end: float | None = None,
    ) -> float:
        """Fraction of ``[start, end]`` the market was available.

        Derived from measured unavailability periods; time not covered
        by any period counts as available (SpotLight probes exactly
        when unavailability is suspected).
        """
        if end is None:
            end = max((p.end for p in self._db.unavailability_periods(market, kind)),
                      default=start)
        span = end - start
        if span <= 0:
            return 1.0
        unavailable = 0.0
        for period in self._db.unavailability_periods(market, kind, horizon=end):
            lo = max(period.start, start)
            hi = min(period.end, end)
            if hi > lo:
                unavailable += hi - lo
        return max(0.0, 1.0 - unavailable / span)

    def is_unavailable_at(
        self, market: MarketID, when: float, kind: ProbeKind = ProbeKind.ON_DEMAND
    ) -> bool:
        """Whether ``when`` falls inside a measured unavailability period."""
        for period in self._db.unavailability_periods(market, kind):
            if period.start <= when < period.end:
                return True
        return False

    def rejection_rate(
        self, market: MarketID | None = None, kind: ProbeKind | None = None
    ) -> float:
        return self._db.rejection_rate(market, kind)

    # -- price-derived metrics ----------------------------------------------------
    def availability_at_bid(
        self,
        market: MarketID,
        bid_price: float,
        start: float = 0.0,
        end: float | None = None,
    ) -> float:
        """Fraction of time the spot price sat at or below ``bid_price``
        (the spot-availability estimate the paper describes users
        computing from price history)."""
        records = self._db.prices(market, start, end)
        if len(records) < 2:
            return 1.0
        total = records[-1].time - records[0].time
        if total <= 0:
            return 1.0
        available = 0.0
        for prev, cur in zip(records, records[1:]):
            if prev.price <= bid_price:
                available += cur.time - prev.time
        return available / total

    def mean_time_to_revocation(
        self,
        market: MarketID,
        bid_price: float,
        start: float = 0.0,
        end: float | None = None,
    ) -> float:
        """Average run length (seconds) the spot price stays at or
        below ``bid_price`` once it is below — the expected lifetime of
        a spot instance bid at that level."""
        records = self._db.prices(market, start, end)
        if not records:
            return 0.0
        runs: list[float] = []
        run_start: float | None = None
        for record in records:
            if record.price <= bid_price:
                if run_start is None:
                    run_start = record.time
            elif run_start is not None:
                runs.append(record.time - run_start)
                run_start = None
        if run_start is not None:
            runs.append(records[-1].time - run_start)
        if not runs:
            return 0.0
        return sum(runs) / len(runs)

    def mean_price(
        self, market: MarketID, start: float = 0.0, end: float | None = None
    ) -> float:
        """Time-weighted mean spot price over the window."""
        records = self._db.prices(market, start, end)
        if not records:
            return 0.0
        if len(records) == 1:
            return records[0].price
        weighted = 0.0
        for prev, cur in zip(records, records[1:]):
            weighted += prev.price * (cur.time - prev.time)
        total = records[-1].time - records[0].time
        return weighted / total if total > 0 else records[-1].price

    def spike_multiples(
        self, market: MarketID, start: float = 0.0, end: float | None = None
    ) -> list[tuple[float, float]]:
        """(time, price / on-demand price) series for a market."""
        od = self.on_demand_price(market)
        return [
            (r.time, r.price / od) for r in self._db.prices(market, start, end)
        ]

    # -- rankings ------------------------------------------------------------------------
    def top_stable_markets(
        self,
        n: int = 10,
        bid_multiple: float = 1.0,
        start: float = 0.0,
        end: float | None = None,
        region: str | None = None,
    ) -> list[MarketStability]:
        """The ``n`` most stable markets: longest mean-time-to-revocation
        at a bid of ``bid_multiple x on-demand`` (the paper's flagship
        query), with availability and mean price as tie-breakers."""
        entries: list[MarketStability] = []
        for market in self._db.markets:
            if region is not None and market.region != region:
                continue
            if not self._db.prices(market):
                continue
            bid = bid_multiple * self.on_demand_price(market)
            entries.append(
                MarketStability(
                    market=market,
                    mean_time_to_revocation=self.mean_time_to_revocation(
                        market, bid, start, end
                    ),
                    availability_at_bid=self.availability_at_bid(
                        market, bid, start, end
                    ),
                    mean_price=self.mean_price(market, start, end),
                )
            )
        entries.sort(
            key=lambda e: (
                -e.mean_time_to_revocation,
                -e.availability_at_bid,
                e.mean_price,
            )
        )
        return entries[:n]

    def least_unavailable_markets(
        self,
        candidates: list[MarketID],
        kind: ProbeKind = ProbeKind.ON_DEMAND,
        horizon: float | None = None,
    ) -> list[tuple[MarketID, float]]:
        """Rank candidate markets by total measured unavailable time
        (ascending) — what SpotCheck/SpotOn use to pick fail-over
        targets."""
        scored = []
        for market in candidates:
            periods = self._db.unavailability_periods(market, kind, horizon)
            scored.append((market, sum(p.duration for p in periods)))
        scored.sort(key=lambda pair: pair[1])
        return scored

"""SpotLight's query engine.

The service the paper envisions: applications query availability
characteristics programmatically to continuously optimise server and
contract selection.  The flagship example from Chapter 3: "the top ten
server types with the longest mean-time-to-revocation for a bid price
equal to the corresponding on-demand price over the past week".

:class:`SpotLightQuery` is the read-only half of the serving path:
pure reads over a datastore and a catalog, no result caching, no
session state.  It does keep internal *read-through* caches (the
database's columnar read index and an on-demand-price table), so while
it is cheap to construct per request, **sharing one instance across
threads requires external serialization** — the serving tier runs all
engine work behind one lock, and the multi-process tier gives every
worker its own engine.  Applications normally consume it through the
cached :class:`~repro.core.frontend.QueryFrontend`.

Two execution paths answer every query:

* the **vectorized** path (default) reads the database's columnar
  :class:`~repro.core.read_index.ReadIndex`: per-market price windows
  are zero-copy slices of cached snapshots, availability comes from
  period columns, and the catalog-wide ranking is one stacked kernel
  (:func:`~repro.core.read_index.stability_metrics`) instead of an
  O(markets x samples) per-market loop;
* the **scalar reference** path (``vectorized=False``) is the original
  per-record implementation, kept as the readable specification.  The
  golden tests in ``tests/test_query_vectorized.py`` pin the two paths
  equal, so the kernel math is continuously verified against it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.database import ProbeDatabase
from repro.core.market_id import MarketID
from repro.core.read_index import stability_metrics
from repro.core.records import ProbeKind, UnavailabilityPeriod
from repro.ec2.catalog import Catalog


@dataclass(frozen=True)
class MarketStability:
    """Ranking entry returned by :meth:`SpotLightQuery.top_stable_markets`."""

    market: MarketID
    mean_time_to_revocation: float
    availability_at_bid: float
    mean_price: float


def _stability_sort_key(entry: MarketStability):
    return (
        -entry.mean_time_to_revocation,
        -entry.availability_at_bid,
        entry.mean_price,
    )


class SpotLightQuery:
    """Read-only queries over the probe database."""

    def __init__(
        self,
        database: ProbeDatabase,
        catalog: Catalog,
        vectorized: bool = True,
    ) -> None:
        self._db = database
        self._catalog = catalog
        self._vectorized = vectorized and hasattr(database, "read_index")
        self._od_cache: dict[MarketID, float] = {}
        # On-demand price vectors keyed by stack identity (stacks are
        # immutable snapshots cached by the index, so identity is
        # stable until a price insert); bounded, cleared wholesale when
        # full.  Entries pin their stack, which keeps id() unambiguous.
        self._od_vectors: dict[int, tuple[object, np.ndarray]] = {}

    def rebind(self, database: ProbeDatabase) -> None:
        """Swap the underlying database and drop every read-through
        cache.  A replica that falls too many WAL generations behind
        reloads its datastore wholesale and rebinds the shared engine
        rather than rebuilding the serving stack around it."""
        self._db = database
        self._vectorized = self._vectorized and hasattr(database, "read_index")
        self._od_cache.clear()
        self._od_vectors.clear()

    # -- pricing helpers -----------------------------------------------------
    def on_demand_price(self, market: MarketID) -> float:
        price = self._od_cache.get(market)
        if price is None:
            price = self._catalog.on_demand_price(
                market.instance_type, market.region, market.product
            )
            self._od_cache[market] = price
        return price

    def prime(self) -> None:
        """Pre-build the read-side index and the on-demand price cache
        so the first query after a data load pays nothing extra (the
        serving tier calls this before announcing readiness)."""
        if not self._vectorized:
            return
        index = self._db.read_index
        index.prime()
        for market in index.price_stack().markets:
            try:
                self.on_demand_price(market)
            except KeyError:
                pass  # a recorded market outside this catalog

    # -- availability -----------------------------------------------------------
    def unavailability_periods(
        self,
        market: MarketID | None = None,
        kind: ProbeKind = ProbeKind.ON_DEMAND,
        horizon: float | None = None,
    ) -> list[UnavailabilityPeriod]:
        if not self._vectorized:
            return self._db.unavailability_periods(market, kind, horizon)
        index = self._db.read_index
        markets = [market] if market is not None else self._db.markets
        periods: list[UnavailabilityPeriod] = []
        for mkt in markets:
            periods.extend(index.period_columns(mkt, kind).to_periods(horizon))
        periods.sort(key=lambda p: (p.start, p.market))
        return periods

    def availability(
        self,
        market: MarketID,
        kind: ProbeKind = ProbeKind.ON_DEMAND,
        start: float = 0.0,
        end: float | None = None,
    ) -> float:
        """Fraction of ``[start, end]`` the market was available.

        Derived from measured unavailability periods; time not covered
        by any period counts as available (SpotLight probes exactly
        when unavailability is suspected).
        """
        if self._vectorized:
            return self._vec_availability(market, kind, start, end)
        return self._ref_availability(market, kind, start, end)

    def _vec_availability(
        self, market: MarketID, kind: ProbeKind, start: float, end: float | None
    ) -> float:
        columns = self._db.read_index.period_columns(market, kind)
        if end is None:
            max_end = columns.max_end()
            end = start if max_end is None else max(max_end, start)
        span = end - start
        if span <= 0:
            return 1.0
        unavailable = columns.unavailable_within(start, end)
        return max(0.0, 1.0 - unavailable / span)

    def _ref_availability(
        self, market: MarketID, kind: ProbeKind, start: float, end: float | None
    ) -> float:
        # One period fetch either way: with no explicit end, the
        # horizon-free periods are what a horizon-at-max-end fetch
        # would return, so they serve both the default-end computation
        # and the overlap loop.
        if end is None:
            periods = self._db.unavailability_periods(market, kind)
            end = max((p.end for p in periods), default=start)
        else:
            periods = self._db.unavailability_periods(market, kind, horizon=end)
        span = end - start
        if span <= 0:
            return 1.0
        unavailable = 0.0
        for period in periods:
            lo = max(period.start, start)
            hi = min(period.end, end)
            if hi > lo:
                unavailable += hi - lo
        return max(0.0, 1.0 - unavailable / span)

    def is_unavailable_at(
        self, market: MarketID, when: float, kind: ProbeKind = ProbeKind.ON_DEMAND
    ) -> bool:
        """Whether ``when`` falls inside a measured unavailability period."""
        if self._vectorized:
            return self._db.read_index.period_columns(market, kind).contains(when)
        for period in self._db.unavailability_periods(market, kind):
            if period.start <= when < period.end:
                return True
        return False

    def rejection_rate(
        self, market: MarketID | None = None, kind: ProbeKind | None = None
    ) -> float:
        rejected, total = self.rejection_counts(market, kind)
        if total == 0:
            return 0.0
        return rejected / total

    def rejection_counts(
        self, market: MarketID | None = None, kind: ProbeKind | None = None
    ) -> tuple[int, int]:
        """``(rejected, total)`` probe counts — the mergeable form of
        :meth:`rejection_rate`.  A scatter-gather router sums the per-shard
        counts and divides once, reproducing the global rate exactly
        (a mean of per-shard *rates* would weight shards wrongly)."""
        if not self._vectorized:
            records = self._db.probes(market=market, kind=kind)
            return sum(1 for r in records if r.rejected), len(records)
        columns = self._db.read_index.probe_columns()
        mask = np.ones(len(columns), dtype=bool)
        if market is not None:
            ordinal = columns.market_ordinal(market)
            if ordinal is None:
                return 0, 0
            mask &= columns.market_index == ordinal
        if kind is not None:
            mask &= columns.kind_mask(kind)
        total = int(np.count_nonzero(mask))
        if total == 0:
            return 0, 0
        return int(np.count_nonzero(columns.rejected & mask)), total

    # -- price-derived metrics ----------------------------------------------------
    def _price_window(
        self, market: MarketID, start: float, end: float | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """The market's ``[start, end]`` price samples: a zero-copy view
        of the index's cached snapshot (vectorized) or a fresh copy off
        the packed columns (reference)."""
        if self._vectorized:
            return self._db.read_index.price_view(market, start, end)
        return self._db.price_arrays(market, start, end)

    def availability_at_bid(
        self,
        market: MarketID,
        bid_price: float,
        start: float = 0.0,
        end: float | None = None,
    ) -> float:
        """Fraction of time the spot price sat at or below ``bid_price``
        (the spot-availability estimate the paper describes users
        computing from price history)."""
        times, prices = self._price_window(market, start, end)
        if len(times) < 2:
            return 1.0
        total = times[-1] - times[0]
        if total <= 0:
            return 1.0
        intervals = np.diff(times)
        available = intervals[prices[:-1] <= bid_price].sum()
        return float(available / total)

    def mean_time_to_revocation(
        self,
        market: MarketID,
        bid_price: float,
        start: float = 0.0,
        end: float | None = None,
    ) -> float:
        """Average run length (seconds) the spot price stays at or
        below ``bid_price`` once it is below — the expected lifetime of
        a spot instance bid at that level."""
        times, prices = self._price_window(market, start, end)
        if len(times) == 0:
            return 0.0
        below = prices <= bid_price
        # Run starts: below-samples whose predecessor was above (or the
        # first sample); run ends: the first above-sample after each
        # start, or the final sample time for a still-open run.
        previous = np.concatenate(([False], below[:-1]))
        starts = times[below & ~previous]
        if len(starts) == 0:
            return 0.0
        ends = times[~below & previous]
        if len(ends) < len(starts):  # trailing open run
            ends = np.concatenate((ends, times[-1:]))
        return float(np.mean(ends - starts))

    def mean_price(
        self, market: MarketID, start: float = 0.0, end: float | None = None
    ) -> float:
        """Time-weighted mean spot price over the window."""
        times, prices = self._price_window(market, start, end)
        if len(times) == 0:
            return 0.0
        if len(times) == 1:
            return float(prices[0])
        total = times[-1] - times[0]
        if total <= 0:
            return float(prices[-1])
        weighted = float(np.dot(prices[:-1], np.diff(times)))
        return weighted / total

    def point_stats_batch(
        self,
        assignments: dict[MarketID, float],
        start: float = 0.0,
        end: float | None = None,
    ) -> dict[MarketID, tuple[float, float, float]] | None:
        """Stacked point stats for many markets in one kernel pass.

        ``assignments`` maps each market to the bid price its queries
        use; the result maps each market *present in the price stack*
        to ``(mean_time_to_revocation, availability_at_bid,
        mean_price)`` over ``[start, end]``.  Markets absent from the
        stack are omitted — they carry the same degenerate defaults the
        per-market methods return on empty windows (0.0, 1.0, 0.0).

        This is the cold-batch kernel: a ``/batch`` of N distinct
        per-market point queries costs one :func:`stability_metrics`
        pass over the full stack instead of N per-market engine calls.
        Returns ``None`` on the scalar reference path, where no stacked
        kernel exists and callers fall back to per-query evaluation.
        """
        if not self._vectorized:
            return None
        stack = self._db.read_index.price_stack()
        if not stack.markets:
            return {}
        ordinals = {market: i for i, market in enumerate(stack.markets)}
        bids = np.zeros(len(stack.markets))
        for market, bid in assignments.items():
            i = ordinals.get(market)
            if i is not None:
                bids[i] = bid
        mttr, avail, mean_price = stability_metrics(stack, bids, start, end)
        return {
            market: (float(mttr[i]), float(avail[i]), float(mean_price[i]))
            for market, i in (
                (m, ordinals[m]) for m in assignments if m in ordinals
            )
        }

    def spike_multiples(
        self, market: MarketID, start: float = 0.0, end: float | None = None
    ) -> list[tuple[float, float]]:
        """(time, price / on-demand price) series for a market."""
        od = self.on_demand_price(market)
        times, prices = self._price_window(market, start, end)
        return list(zip(times.tolist(), (prices / od).tolist()))

    # -- rankings ------------------------------------------------------------------------
    def top_stable_markets(
        self,
        n: int = 10,
        bid_multiple: float = 1.0,
        start: float = 0.0,
        end: float | None = None,
        region: str | None = None,
    ) -> list[MarketStability]:
        """The ``n`` most stable markets: longest mean-time-to-revocation
        at a bid of ``bid_multiple x on-demand`` (the paper's flagship
        query), with availability and mean price as tie-breakers."""
        if self._vectorized:
            return self._vec_top_stable_markets(n, bid_multiple, start, end, region)
        return self._ref_top_stable_markets(n, bid_multiple, start, end, region)

    def _od_prices_for(self, stack) -> np.ndarray:
        entry = self._od_vectors.get(id(stack))
        if entry is not None and entry[0] is stack:
            return entry[1]
        prices = np.asarray([self.on_demand_price(m) for m in stack.markets])
        if len(self._od_vectors) >= 8:
            self._od_vectors.clear()
        self._od_vectors[id(stack)] = (stack, prices)
        return prices

    def _vec_top_stable_markets(
        self,
        n: int,
        bid_multiple: float,
        start: float,
        end: float | None,
        region: str | None,
    ) -> list[MarketStability]:
        index = self._db.read_index
        stack = index.price_stack()
        if region is not None:
            selected = [m for m in stack.markets if m.region == region]
            if len(selected) != len(stack.markets):
                stack = index.price_stack(selected)
        if not stack.markets:
            return []
        bids = bid_multiple * self._od_prices_for(stack)
        mttr, avail, mean_price = stability_metrics(stack, bids, start, end)
        # Stable lexsort == the reference's stable tuple sort: primary
        # -mttr, then -availability, then mean price, catalog order on
        # full ties.  Only the top n entries are materialized.
        order = np.lexsort((mean_price, -avail, -mttr))
        return [
            MarketStability(
                market=stack.markets[i],
                mean_time_to_revocation=float(mttr[i]),
                availability_at_bid=float(avail[i]),
                mean_price=float(mean_price[i]),
            )
            for i in order[:n].tolist()  # list-slice semantics, like [:n]
        ]

    def _ref_top_stable_markets(
        self,
        n: int,
        bid_multiple: float,
        start: float,
        end: float | None,
        region: str | None,
    ) -> list[MarketStability]:
        entries: list[MarketStability] = []
        for market in self._db.markets:
            if region is not None and market.region != region:
                continue
            if not self._db.price_count(market):
                continue
            bid = bid_multiple * self.on_demand_price(market)
            entries.append(
                MarketStability(
                    market=market,
                    mean_time_to_revocation=self.mean_time_to_revocation(
                        market, bid, start, end
                    ),
                    availability_at_bid=self.availability_at_bid(
                        market, bid, start, end
                    ),
                    mean_price=self.mean_price(market, start, end),
                )
            )
        entries.sort(key=_stability_sort_key)
        return entries[:n]

    def least_unavailable_markets(
        self,
        candidates: list[MarketID],
        kind: ProbeKind = ProbeKind.ON_DEMAND,
        horizon: float | None = None,
    ) -> list[tuple[MarketID, float]]:
        """Rank candidate markets by total measured unavailable time
        (ascending) — what SpotCheck/SpotOn use to pick fail-over
        targets."""
        scored = []
        if self._vectorized:
            index = self._db.read_index
            for market in candidates:
                columns = index.period_columns(market, kind)
                scored.append((market, columns.total_duration(horizon)))
        else:
            for market in candidates:
                periods = self._db.unavailability_periods(market, kind, horizon)
                scored.append((market, sum(p.duration for p in periods)))
        scored.sort(key=lambda pair: pair[1])
        return scored

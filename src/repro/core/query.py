"""SpotLight's query engine.

The service the paper envisions: applications query availability
characteristics programmatically to continuously optimise server and
contract selection.  The flagship example from Chapter 3: "the top ten
server types with the longest mean-time-to-revocation for a bid price
equal to the corresponding on-demand price over the past week".

:class:`SpotLightQuery` is the **stateless** half of the serving path:
pure reads over a datastore and a catalog, no caching, no session
state — safe to construct per request or share across threads of a
serving tier.  Applications normally consume it through the cached
:class:`~repro.core.frontend.QueryFrontend`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.database import ProbeDatabase
from repro.core.market_id import MarketID
from repro.core.records import ProbeKind, UnavailabilityPeriod
from repro.ec2.catalog import Catalog


@dataclass(frozen=True)
class MarketStability:
    """Ranking entry returned by :meth:`SpotLightQuery.top_stable_markets`."""

    market: MarketID
    mean_time_to_revocation: float
    availability_at_bid: float
    mean_price: float


class SpotLightQuery:
    """Read-only queries over the probe database."""

    def __init__(self, database: ProbeDatabase, catalog: Catalog) -> None:
        self._db = database
        self._catalog = catalog

    # -- pricing helpers -----------------------------------------------------
    def on_demand_price(self, market: MarketID) -> float:
        return self._catalog.on_demand_price(
            market.instance_type, market.region, market.product
        )

    # -- availability -----------------------------------------------------------
    def unavailability_periods(
        self,
        market: MarketID | None = None,
        kind: ProbeKind = ProbeKind.ON_DEMAND,
        horizon: float | None = None,
    ) -> list[UnavailabilityPeriod]:
        return self._db.unavailability_periods(market, kind, horizon)

    def availability(
        self,
        market: MarketID,
        kind: ProbeKind = ProbeKind.ON_DEMAND,
        start: float = 0.0,
        end: float | None = None,
    ) -> float:
        """Fraction of ``[start, end]`` the market was available.

        Derived from measured unavailability periods; time not covered
        by any period counts as available (SpotLight probes exactly
        when unavailability is suspected).
        """
        if end is None:
            end = max((p.end for p in self._db.unavailability_periods(market, kind)),
                      default=start)
        span = end - start
        if span <= 0:
            return 1.0
        unavailable = 0.0
        for period in self._db.unavailability_periods(market, kind, horizon=end):
            lo = max(period.start, start)
            hi = min(period.end, end)
            if hi > lo:
                unavailable += hi - lo
        return max(0.0, 1.0 - unavailable / span)

    def is_unavailable_at(
        self, market: MarketID, when: float, kind: ProbeKind = ProbeKind.ON_DEMAND
    ) -> bool:
        """Whether ``when`` falls inside a measured unavailability period."""
        for period in self._db.unavailability_periods(market, kind):
            if period.start <= when < period.end:
                return True
        return False

    def rejection_rate(
        self, market: MarketID | None = None, kind: ProbeKind | None = None
    ) -> float:
        return self._db.rejection_rate(market, kind)

    # -- price-derived metrics ----------------------------------------------------
    def availability_at_bid(
        self,
        market: MarketID,
        bid_price: float,
        start: float = 0.0,
        end: float | None = None,
    ) -> float:
        """Fraction of time the spot price sat at or below ``bid_price``
        (the spot-availability estimate the paper describes users
        computing from price history)."""
        times, prices = self._db.price_arrays(market, start, end)
        if len(times) < 2:
            return 1.0
        total = times[-1] - times[0]
        if total <= 0:
            return 1.0
        intervals = np.diff(times)
        available = intervals[prices[:-1] <= bid_price].sum()
        return float(available / total)

    def mean_time_to_revocation(
        self,
        market: MarketID,
        bid_price: float,
        start: float = 0.0,
        end: float | None = None,
    ) -> float:
        """Average run length (seconds) the spot price stays at or
        below ``bid_price`` once it is below — the expected lifetime of
        a spot instance bid at that level."""
        times, prices = self._db.price_arrays(market, start, end)
        if len(times) == 0:
            return 0.0
        below = prices <= bid_price
        # Run starts: below-samples whose predecessor was above (or the
        # first sample); run ends: the first above-sample after each
        # start, or the final sample time for a still-open run.
        previous = np.concatenate(([False], below[:-1]))
        starts = times[below & ~previous]
        if len(starts) == 0:
            return 0.0
        ends = times[~below & previous]
        if len(ends) < len(starts):  # trailing open run
            ends = np.concatenate((ends, times[-1:]))
        return float(np.mean(ends - starts))

    def mean_price(
        self, market: MarketID, start: float = 0.0, end: float | None = None
    ) -> float:
        """Time-weighted mean spot price over the window."""
        times, prices = self._db.price_arrays(market, start, end)
        if len(times) == 0:
            return 0.0
        if len(times) == 1:
            return float(prices[0])
        total = times[-1] - times[0]
        if total <= 0:
            return float(prices[-1])
        weighted = float(np.dot(prices[:-1], np.diff(times)))
        return weighted / total

    def spike_multiples(
        self, market: MarketID, start: float = 0.0, end: float | None = None
    ) -> list[tuple[float, float]]:
        """(time, price / on-demand price) series for a market."""
        od = self.on_demand_price(market)
        times, prices = self._db.price_arrays(market, start, end)
        return list(zip(times.tolist(), (prices / od).tolist()))

    # -- rankings ------------------------------------------------------------------------
    def top_stable_markets(
        self,
        n: int = 10,
        bid_multiple: float = 1.0,
        start: float = 0.0,
        end: float | None = None,
        region: str | None = None,
    ) -> list[MarketStability]:
        """The ``n`` most stable markets: longest mean-time-to-revocation
        at a bid of ``bid_multiple x on-demand`` (the paper's flagship
        query), with availability and mean price as tie-breakers."""
        entries: list[MarketStability] = []
        for market in self._db.markets:
            if region is not None and market.region != region:
                continue
            if not self._db.price_count(market):
                continue
            bid = bid_multiple * self.on_demand_price(market)
            entries.append(
                MarketStability(
                    market=market,
                    mean_time_to_revocation=self.mean_time_to_revocation(
                        market, bid, start, end
                    ),
                    availability_at_bid=self.availability_at_bid(
                        market, bid, start, end
                    ),
                    mean_price=self.mean_price(market, start, end),
                )
            )
        entries.sort(
            key=lambda e: (
                -e.mean_time_to_revocation,
                -e.availability_at_bid,
                e.mean_price,
            )
        )
        return entries[:n]

    def least_unavailable_markets(
        self,
        candidates: list[MarketID],
        kind: ProbeKind = ProbeKind.ON_DEMAND,
        horizon: float | None = None,
    ) -> list[tuple[MarketID, float]]:
        """Rank candidate markets by total measured unavailable time
        (ascending) — what SpotCheck/SpotOn use to pick fail-over
        targets."""
        scored = []
        for market in candidates:
            periods = self._db.unavailability_periods(market, kind, horizon)
            scored.append((market, sum(p.duration for p in periods)))
        scored.sort(key=lambda pair: pair[1])
        return scored

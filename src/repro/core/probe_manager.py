"""Per-market probe manager.

Each monitored market gets a :class:`ProbeManager` that owns the
trigger logic of Sections 3.1-3.3:

* watch the spot price; when it crosses ``T x on-demand`` (and the
  cooldown and sampling ratio allow), issue an on-demand probe;
* on a detected rejection, re-probe every ``delta`` seconds until the
  market is available again (measuring the unavailability duration);
* accept related-market probe requests fanned out by the service;
* run the periodic spot CheckCapacity probe and its recovery loop.

The manager reports detected unavailability to the service, which
performs the family/zone fan-out and cross-checks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common import errors
from repro.common.rng import RngStream
from repro.core.config import SpotLightConfig
from repro.core.market_id import MarketID
from repro.core.probes import ProbeExecutor
from repro.core.records import OUTCOME_FULFILLED, ProbeKind, ProbeRecord, ProbeTrigger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.service import SpotLight

#: Retry delay after an API-throttled / account-limited probe attempt.
TRANSIENT_RETRY_DELAY = 15.0


class ProbeManager:
    """Trigger logic and recovery loops for one market."""

    def __init__(
        self,
        market: MarketID,
        service: "SpotLight",
        executor: ProbeExecutor,
        config: SpotLightConfig,
        rng: RngStream,
    ) -> None:
        self.market = market
        self.service = service
        self.executor = executor
        self.config = config
        self.rng = rng
        self.last_spike_trigger = float("-inf")
        self.last_related_probe = float("-inf")
        self.od_recovery_active = False
        self.spot_recovery_active = False
        self.probes_triggered = 0

    # -- price watching ---------------------------------------------------------
    def on_price(self, now: float, price: float) -> None:
        """React to a spot price observation (the market-based trigger)."""
        multiple = self.executor.spike_multiple(self.market, price)
        if multiple < self.config.threshold_multiple:
            return
        if now - self.last_spike_trigger < self.config.spike_cooldown:
            return
        if not self.rng.bernoulli(self.config.sampling_probability):
            # Sampled out: remember the spike so a sustained spike does
            # not get re-sampled every tick.
            self.last_spike_trigger = now
            return
        self.last_spike_trigger = now
        self.probes_triggered += 1
        record = self.executor.request_on_demand(
            self.market, ProbeTrigger.PRICE_SPIKE, spike_multiple=multiple
        )
        self._handle_od_outcome(record, multiple)

    # -- outcome handling ----------------------------------------------------------
    def _handle_od_outcome(
        self, record: ProbeRecord | None, multiple: float
    ) -> None:
        if record is None or not record.rejected:
            return
        if record.outcome == errors.INSUFFICIENT_INSTANCE_CAPACITY:
            self.service.on_unavailable(self.market, ProbeKind.ON_DEMAND, multiple)
            self._start_od_recovery()

    def probe_related(self, trigger: ProbeTrigger, multiple: float) -> None:
        """A related market detected a rejection; probe this one too."""
        now = self.executor.now
        if now - self.last_related_probe < self.config.related_probe_cooldown:
            return
        self.last_related_probe = now
        record = self.executor.request_on_demand(
            self.market, trigger, spike_multiple=multiple
        )
        if (
            record is not None
            and record.outcome == errors.INSUFFICIENT_INSTANCE_CAPACITY
        ):
            # Related rejections are logged and recovered from, but do
            # not fan out again (no cascades).
            self.service.on_related_unavailable(self.market, multiple)
            self._start_od_recovery()

    # -- on-demand recovery loop ------------------------------------------------------
    def _start_od_recovery(self) -> None:
        if self.od_recovery_active:
            return
        self.od_recovery_active = True
        self._od_recovery_deadline = (
            self.executor.now + self.config.max_recovery_duration
        )
        self.service.schedule(self.config.reprobe_interval, self._od_recovery_step)

    def _od_recovery_step(self) -> None:
        if not self.od_recovery_active:
            return
        record = self.executor.request_on_demand(
            self.market,
            ProbeTrigger.RECOVERY,
            spike_multiple=self.executor.spike_multiple(self.market),
        )
        now = self.executor.now
        if record is not None and record.outcome == OUTCOME_FULFILLED:
            self.od_recovery_active = False
            return
        if now >= self._od_recovery_deadline:
            # Budget exhaustion or persistent rejection: stop chasing.
            self.od_recovery_active = False
            return
        delay = self.config.reprobe_interval
        if record is None:
            delay = min(delay, TRANSIENT_RETRY_DELAY)
        self.service.schedule(delay, self._od_recovery_step)

    # -- spot probing ----------------------------------------------------------------------
    def periodic_spot_probe(self) -> None:
        """The scheduled CheckCapacity probe for this market."""
        record = self.executor.check_capacity(
            self.market,
            ProbeTrigger.PERIODIC,
            spike_multiple=self.executor.spike_multiple(self.market),
        )
        self._handle_spot_outcome(record)

    def _handle_spot_outcome(self, record: ProbeRecord | None) -> None:
        if record is None:
            return
        if record.outcome == errors.STATUS_CAPACITY_NOT_AVAILABLE:
            self.service.on_unavailable(
                self.market,
                ProbeKind.SPOT,
                self.executor.spike_multiple(self.market),
            )
            self._start_spot_recovery()

    def _start_spot_recovery(self) -> None:
        if self.spot_recovery_active:
            return
        self.spot_recovery_active = True
        self._spot_recovery_deadline = (
            self.executor.now + self.config.max_recovery_duration
        )
        self.service.schedule(self.config.reprobe_interval, self._spot_recovery_step)

    def _spot_recovery_step(self) -> None:
        if not self.spot_recovery_active:
            return
        record = self.executor.check_capacity(
            self.market,
            ProbeTrigger.RECOVERY,
            spike_multiple=self.executor.spike_multiple(self.market),
        )
        now = self.executor.now
        if record is not None and record.outcome == OUTCOME_FULFILLED:
            self.spot_recovery_active = False
            return
        if now >= self._spot_recovery_deadline:
            self.spot_recovery_active = False
            return
        self.service.schedule(self.config.reprobe_interval, self._spot_recovery_step)

    def cross_check_spot(self, multiple: float) -> None:
        """Spot probe on this market after an on-demand rejection here."""
        record = self.executor.check_capacity(
            self.market, ProbeTrigger.CROSS_CHECK, spike_multiple=multiple
        )
        if (
            record is not None
            and record.outcome == errors.STATUS_CAPACITY_NOT_AVAILABLE
        ):
            self._start_spot_recovery()

    def cross_check_on_demand(self, multiple: float) -> None:
        """On-demand probe on this market after a spot rejection here."""
        record = self.executor.request_on_demand(
            self.market, ProbeTrigger.CROSS_CHECK, spike_multiple=multiple
        )
        if (
            record is not None
            and record.outcome == errors.INSUFFICIENT_INSTANCE_CAPACITY
        ):
            self._start_od_recovery()

"""SpotLight — the information service itself.

SpotLight watches the spot price of every monitored market and
*actively probes* the platform to learn availability information the
cloud does not publish:

* :class:`~repro.core.service.SpotLight` — the service: subscribes to
  price updates, triggers probes, owns the database and budget;
* :mod:`repro.core.probes` — the five probe functions of Chapter 4
  (RequestOnDemand, RequestInsufficiency, CheckCapacity, BidSpread,
  Revocation);
* :class:`~repro.core.probe_manager.ProbeManager` — per-market trigger
  logic (spike threshold, sampling, cooldowns, recovery re-probing);
* :class:`~repro.core.database.ProbeDatabase` — the probe/price log and
  its derived unavailability periods;
* :class:`~repro.core.query.SpotLightQuery` — the query API
  applications use (availability, MTTR, most-stable markets, ...).
"""

from repro.core.budget import BudgetController
from repro.core.config import SpotLightConfig
from repro.core.database import ProbeDatabase
from repro.core.datastore import Datastore, InMemoryDatastore, SnapshotDatastore
from repro.core.frontend import QueryFrontend
from repro.core.market_id import MarketID
from repro.core.query import SpotLightQuery
from repro.core.records import (
    OUTCOME_FULFILLED,
    PriceRecord,
    ProbeKind,
    ProbeRecord,
    ProbeTrigger,
    UnavailabilityPeriod,
)
from repro.core.service import SpotLight

__all__ = [
    "SpotLight",
    "SpotLightConfig",
    "SpotLightQuery",
    "QueryFrontend",
    "ProbeDatabase",
    "Datastore",
    "InMemoryDatastore",
    "SnapshotDatastore",
    "BudgetController",
    "MarketID",
    "ProbeRecord",
    "PriceRecord",
    "ProbeKind",
    "ProbeTrigger",
    "UnavailabilityPeriod",
    "OUTCOME_FULFILLED",
]

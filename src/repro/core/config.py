"""SpotLight configuration.

The tunables come straight from Chapter 3:

* ``threshold_multiple`` — the spike threshold ``T`` in multiples of the
  on-demand price; a spot price at or above ``T x on-demand`` triggers
  an on-demand probe.  The prototype used ``T = 1`` to maximise data
  collection.
* ``sampling_probability`` — the ratio ``p``: probe a qualifying spike
  only with probability ``p``, so a small budget can still sample
  less-volatile events at a lower ``T``.
* ``reprobe_interval`` — after detecting unavailability, re-probe every
  ``delta`` seconds until a probe is fulfilled.
* budgeting over a configurable window; when the budget is consumed the
  service simply stops probing until the next window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.clock import SECONDS_PER_DAY


@dataclass
class SpotLightConfig:
    """All SpotLight tunables, with the paper's defaults."""

    # -- spike trigger (Section 3.2) ---------------------------------------
    threshold_multiple: float = 1.0
    sampling_probability: float = 1.0
    spike_cooldown: float = 900.0  # one trigger per market per cooldown

    # -- recovery / fan-out (Sections 3.1-3.2) --------------------------------
    reprobe_interval: float = 300.0  # delta
    max_recovery_duration: float = 24 * 3600.0  # stop chasing after this
    probe_related_family: bool = True
    probe_related_zones: bool = True
    related_probe_cooldown: float = 900.0
    cross_check_spot_on_unavailable: bool = True  # od-spot data for Fig 5.12
    cross_check_od_on_spot_unavailable: bool = True  # spot-od data

    # -- spot probing (Section 3.3) ----------------------------------------------
    spot_probe_interval: float = 4 * 3600.0  # periodic CheckCapacity cadence
    bid_spread_max_requests: int = 6
    bid_increase_factor: float = 2.0  # exponential upper-bound search

    # -- cost control (Section 3.4) ------------------------------------------------
    budget: float = float("inf")  # dollars per window
    budget_window: float = 30 * SECONDS_PER_DAY
    seed: int = 20160501

    # -- serving ----------------------------------------------------------------------
    #: TTL of the frontend's query-result cache, in provider-clock
    #: seconds (availability answers change slowly; serving is read-heavy).
    frontend_cache_ttl: float = 300.0

    # -- scope ------------------------------------------------------------------------
    regions: list[str] = field(default_factory=list)  # empty = all
    families: list[str] = field(default_factory=list)  # empty = all
    products: list[str] = field(default_factory=list)  # empty = all

    def __post_init__(self) -> None:
        if self.threshold_multiple < 0:
            raise ValueError(f"threshold must be non-negative: {self.threshold_multiple}")
        if not 0.0 <= self.sampling_probability <= 1.0:
            raise ValueError(
                f"sampling probability must be in [0, 1]: {self.sampling_probability}"
            )
        if self.reprobe_interval <= 0:
            raise ValueError(f"re-probe interval must be positive: {self.reprobe_interval}")
        if self.bid_spread_max_requests < 2:
            raise ValueError("bid spread needs at least two requests")
        if self.budget <= 0:
            raise ValueError(f"budget must be positive: {self.budget}")
        if self.frontend_cache_ttl < 0:
            raise ValueError(
                f"frontend cache TTL must be non-negative: {self.frontend_cache_ttl}"
            )

"""Deterministic catalog partitioning for sharded serving.

A :class:`ShardMap` assigns every market to exactly one of ``shards``
partitions by hashing its canonical string form
(``"zone/instance_type/product"``) with BLAKE2b.  The assignment is a
pure function of the market and the shard count — any process
(router, shard worker, or client) that knows the shard count computes
the same owner without coordination, which is what lets shard workers
load a *filtered* snapshot and lets clients route point queries
directly.

Hashing (rather than contiguous market ranges) was chosen because the
catalog is static per study but heavily skewed by region: contiguous
ranges over the sorted catalog would put all of ``us-east-1`` on one
shard and concentrate load, while a hash spreads every region across
all shards.  The trade-off — catalog-wide queries must always touch
every shard — is already forced by the scatter-gather merge, so
hashing loses nothing.

The ``epoch`` identifies the topology so clients holding a stale map
can detect a change: every router (and shard) response carries the
epoch in an ``X-Shard-Epoch`` header, and a client that sees a
mismatch refetches ``GET /shards`` and falls back through the router.
By default the epoch is the shard count, which distinguishes any two
topologies that differ in size; deployments that re-shard at the same
size can pass an explicit epoch.
"""

from __future__ import annotations

from collections.abc import Callable
from hashlib import blake2b
from typing import Any

__all__ = ["ShardMap"]


class ShardMap:
    """Deterministic hash partitioning of markets over ``shards`` shards."""

    __slots__ = ("shards", "epoch")

    def __init__(self, shards: int, epoch: int | None = None) -> None:
        shards = int(shards)
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self.shards = shards
        self.epoch = int(epoch) if epoch is not None else shards

    def owner(self, market: Any) -> int:
        """Shard index owning ``market`` (a MarketID or its string form)."""
        if self.shards == 1:
            return 0
        digest = blake2b(str(market).encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.shards

    def filter(self, shard: int) -> Callable[[Any], bool]:
        """Predicate selecting the markets owned by ``shard``.

        Suitable as the ``market_filter`` of a ``ProbeDatabase`` or
        ``SnapshotDatastore`` so a shard worker loads only its slice.
        """
        if not 0 <= shard < self.shards:
            raise ValueError(f"shard {shard} out of range for {self.shards} shards")
        return lambda market: self.owner(market) == shard

    def assignments(self, markets: Any) -> dict[int, list[Any]]:
        """Group ``markets`` by owning shard, preserving input order."""
        grouped: dict[int, list[Any]] = {}
        for market in markets:
            grouped.setdefault(self.owner(market), []).append(market)
        return grouped

    def to_dict(self) -> dict[str, Any]:
        return {"strategy": "hash", "shards": self.shards, "epoch": self.epoch}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> ShardMap:
        strategy = data.get("strategy", "hash")
        if strategy != "hash":
            raise ValueError(f"unsupported shard strategy {strategy!r}")
        return cls(data["shards"], epoch=data.get("epoch"))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardMap):
            return NotImplemented
        return self.shards == other.shards and self.epoch == other.epoch

    def __hash__(self) -> int:
        return hash((self.shards, self.epoch))

    def __repr__(self) -> str:
        return f"ShardMap(shards={self.shards}, epoch={self.epoch})"

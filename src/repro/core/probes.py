"""The five probe functions of Chapter 4.

* **RequestOnDemand** — request one on-demand server in the market whose
  spot price spiked; terminate it immediately if granted; log the
  error code otherwise.
* **RequestInsufficiency** — the follow-up behaviour after a denial
  (periodic recovery probes, related-market fan-out, spot cross-check);
  orchestrated by :class:`~repro.core.probe_manager.ProbeManager` on
  top of the primitives here.
* **CheckCapacity** — one spot request bidding the current spot price;
  ``capacity-not-available`` means the spot pool itself is out.
* **BidSpread** — find the *intrinsic* bid price that actually gets a
  spot instance: exponential search up for an upper bound, then binary
  search down, with 2-3 requests on average and at most 6.
* **Revocation** — hold a spot instance bid at the spot price through a
  price spike to see whether the market revokes it.

Each issued request becomes a :class:`~repro.core.records.ProbeRecord`
in the database, with its cost charged to the budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common import errors
from repro.common.errors import (
    EC2Error,
    RequestLimitExceededError,
    ServiceLimitExceededError,
)
from repro.common.rng import RngStream
from repro.core.budget import BudgetController
from repro.core.config import SpotLightConfig
from repro.core.database import ProbeDatabase
from repro.core.market_id import MarketID
from repro.core.records import (
    OUTCOME_FULFILLED,
    ProbeKind,
    ProbeRecord,
    ProbeTrigger,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.providers.base import CloudProvider

#: Probe outcomes that mean "try again later" rather than information
#: about the market (these are account-side limits, not availability).
TRANSIENT_OUTCOMES = frozenset(
    {errors.REQUEST_LIMIT_EXCEEDED, errors.INSTANCE_LIMIT_EXCEEDED}
)


@dataclass(frozen=True)
class BidSpreadResult:
    """Outcome of a BidSpread intrinsic-price search."""

    market: MarketID
    published_price: float
    intrinsic_price: float | None  # None when capacity was unavailable
    requests_used: int

    @property
    def premium(self) -> float:
        """Intrinsic price over published price (0 when not found)."""
        if self.intrinsic_price is None or self.published_price <= 0:
            return 0.0
        return self.intrinsic_price / self.published_price - 1.0


class ProbeExecutor:
    """Issues probes against the platform and logs the outcomes."""

    def __init__(
        self,
        provider: "CloudProvider",
        database: ProbeDatabase,
        budget: BudgetController,
        config: SpotLightConfig,
        rng: RngStream,
    ) -> None:
        self._provider = provider
        self._db = database
        self._budget = budget
        self._config = config
        self._rng = rng

    # -- helpers ---------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._provider.now

    def _region_ready(self, market: MarketID, tokens: float = 2.0) -> bool:
        """Whether the region's API bucket can cover a probe (request +
        cleanup call).  Probing with an empty bucket would strand held
        requests, so the executor defers instead."""
        limits = self._provider.limits[market.region]
        return limits.available_api_tokens >= tokens

    def _abandon_request(self, request_id: str) -> None:
        """Walk away from a held request.  If the market fulfilled it in
        the meantime (held requests auto-fulfil when the price falls),
        terminate the instance too — otherwise it would run up charges
        indefinitely."""
        request = self._provider.spot_requests[request_id]
        if request.is_open:
            self._provider.cancel_spot_request(request_id)
        if request.is_active:
            self._provider.terminate_spot_instance(request_id)

    def _cleanup(self, action, attempts: int = 8) -> None:
        """Run a cleanup call (terminate/cancel), retrying on throttling.

        Cleanup must eventually happen or probe instances leak slots and
        money, so throttled attempts are re-scheduled a few seconds out.
        """
        try:
            action()
        except RequestLimitExceededError:
            if attempts > 0:
                self._provider.schedule_in(
                    10.0,
                    lambda: self._cleanup(action, attempts - 1),
                    label="probe-cleanup",
                )

    def on_demand_price(self, market: MarketID) -> float:
        return self._provider.on_demand_price(*market.api_args)

    def published_spot_price(self, market: MarketID) -> float:
        return self._provider.current_spot_price(*market.api_args)

    def spike_multiple(self, market: MarketID, price: float | None = None) -> float:
        """Spot price as a multiple of the on-demand price."""
        spot = price if price is not None else self.published_spot_price(market)
        return spot / self.on_demand_price(market)

    def _log(self, record: ProbeRecord) -> ProbeRecord:
        self._db.insert_probe(record)
        if record.cost > 0:
            self._budget.charge(record.time, record.cost)
        return record

    # -- RequestOnDemand ----------------------------------------------------------
    def request_on_demand(
        self,
        market: MarketID,
        trigger: ProbeTrigger,
        spike_multiple: float = 0.0,
    ) -> ProbeRecord | None:
        """One on-demand probe.  Returns None if the budget suppressed it
        or the failure was transient (account limits, API throttling)."""
        probe_cost = self.on_demand_price(market)
        if not self._budget.can_spend(self.now, probe_cost):
            return None
        if not self._region_ready(market):
            return None
        try:
            instance = self._provider.run_instances(*market.api_args)
        except (RequestLimitExceededError, ServiceLimitExceededError):
            return None
        except EC2Error as exc:
            return self._log(
                ProbeRecord(
                    time=self.now,
                    market=market,
                    kind=ProbeKind.ON_DEMAND,
                    trigger=trigger,
                    outcome=exc.code,
                    spike_multiple=spike_multiple,
                )
            )
        # Granted: pay the one-hour minimum and terminate immediately.
        self._cleanup(lambda: self._provider.terminate_instances([instance.instance_id]))
        return self._log(
            ProbeRecord(
                time=self.now,
                market=market,
                kind=ProbeKind.ON_DEMAND,
                trigger=trigger,
                outcome=OUTCOME_FULFILLED,
                spike_multiple=spike_multiple,
                cost=probe_cost,
                request_id=instance.instance_id,
            )
        )

    # -- CheckCapacity ---------------------------------------------------------------
    def check_capacity(
        self,
        market: MarketID,
        trigger: ProbeTrigger,
        bid_price: float | None = None,
        keep_instance: bool = False,
        spike_multiple: float = 0.0,
    ) -> ProbeRecord | None:
        """One spot probe bidding ``bid_price`` (default: current price).

        A held request is cancelled immediately; a fulfilled one is
        terminated unless ``keep_instance`` (the Revocation probe keeps
        it to watch for price-triggered termination).
        """
        price = bid_price if bid_price is not None else self.published_spot_price(market)
        price = max(price, 0.0001)
        if not self._budget.can_spend(self.now, price):
            return None
        if not self._region_ready(market):
            return None
        try:
            request = self._provider.request_spot_instances(*market.api_args, bid_price=price)
        except (RequestLimitExceededError, ServiceLimitExceededError):
            return None
        except EC2Error as exc:
            return self._log(
                ProbeRecord(
                    time=self.now,
                    market=market,
                    kind=ProbeKind.SPOT,
                    trigger=trigger,
                    outcome=exc.code,
                    bid_price=price,
                    spike_multiple=spike_multiple,
                )
            )
        if request.is_active:
            cost = self.published_spot_price(market)
            if not keep_instance:
                self._cleanup(
                    lambda: self._provider.terminate_spot_instance(request.request_id)
                )
            return self._log(
                ProbeRecord(
                    time=self.now,
                    market=market,
                    kind=ProbeKind.SPOT,
                    trigger=trigger,
                    outcome=OUTCOME_FULFILLED,
                    bid_price=price,
                    cost=cost,
                    spike_multiple=spike_multiple,
                    request_id=request.request_id,
                )
            )
        # Held: log the held status and cancel so the slot frees up.
        outcome = request.status
        self._cleanup(lambda: self._abandon_request(request.request_id))
        return self._log(
            ProbeRecord(
                time=self.now,
                market=market,
                kind=ProbeKind.SPOT,
                trigger=trigger,
                outcome=outcome,
                bid_price=price,
                spike_multiple=spike_multiple,
                request_id=request.request_id,
            )
        )

    # -- BidSpread ---------------------------------------------------------------------
    def bid_spread(self, market: MarketID) -> BidSpreadResult:
        """Find the minimum bid that actually obtains a spot instance.

        Exponential search up from the published price to find a
        fulfilled bid, then binary search between the highest failed
        and lowest fulfilled bids.  Uses at most
        ``config.bid_spread_max_requests`` requests.
        """
        published = self.published_spot_price(market)
        cap = self.on_demand_price(market) * 10.0
        max_requests = self._config.bid_spread_max_requests
        factor = self._config.bid_increase_factor

        requests_used = 0
        # The paper searches "between spot price and upper bound": the
        # published price is the search floor, so the intrinsic price is
        # never reported below it.
        low_fail = published
        best_success: float | None = None
        bid = published

        # Phase 1: exponential climb until a bid is fulfilled.
        while requests_used < max_requests:
            record = self.check_capacity(
                market, ProbeTrigger.BID_SPREAD, bid_price=min(bid, cap)
            )
            if record is None:
                break
            requests_used += 1
            if record.outcome == OUTCOME_FULFILLED:
                best_success = record.bid_price
                break
            if record.outcome == errors.STATUS_CAPACITY_NOT_AVAILABLE:
                return BidSpreadResult(market, published, None, requests_used)
            low_fail = max(low_fail, record.bid_price)
            if bid >= cap:
                break
            bid *= factor

        if best_success is None:
            return BidSpreadResult(market, published, None, requests_used)

        # Phase 2: binary search between the bounds.
        while requests_used < max_requests and best_success - low_fail > 0.01 * published:
            mid = (low_fail + best_success) / 2.0
            record = self.check_capacity(
                market, ProbeTrigger.BID_SPREAD, bid_price=mid
            )
            if record is None:
                break
            requests_used += 1
            if record.outcome == OUTCOME_FULFILLED:
                best_success = record.bid_price
            elif record.outcome == errors.STATUS_CAPACITY_NOT_AVAILABLE:
                break
            else:
                low_fail = record.bid_price
        return BidSpreadResult(market, published, best_success, requests_used)

    # -- Revocation ------------------------------------------------------------------------
    def start_revocation_watch(self, market: MarketID) -> str | None:
        """Issue a spot request at the current price and keep the
        instance, so a later price spike revokes it.  Returns the spot
        request id (None when the request did not fulfil)."""
        record = self.check_capacity(
            market,
            ProbeTrigger.REVOCATION,
            keep_instance=True,
            spike_multiple=self.spike_multiple(market),
        )
        if record is None or record.outcome != OUTCOME_FULFILLED:
            return None
        return record.request_id

    def poll_revocation(self, request_id: str) -> float | None:
        """Check a watched request; returns time-to-revocation once the
        market revoked it, None while it is still running."""
        request = self._provider.spot_requests[request_id]
        return request.time_to_revocation()

    def stop_revocation_watch(self, request_id: str) -> None:
        """Terminate a watched instance that was never revoked."""
        request = self._provider.spot_requests[request_id]
        if request.is_active:
            self._cleanup(lambda: self._provider.terminate_spot_instance(request_id))

"""The columnar read-side index.

PR 1 made the *write* side columnar (packed price columns, batched
demand ticks); this module does the same for the *read* side.  A
:class:`ReadIndex` hangs off a :class:`~repro.core.database.ProbeDatabase`
and maintains lazily-built, incrementally-invalidated numpy views of
everything the query engine scans:

* :class:`PeriodColumns` — per ``(market, kind)``, the unavailability
  periods as contiguous arrays (closed-period starts/ends/probe counts
  plus the still-open trailing run), derived from the database's packed
  per-market probe columns with a handful of array passes instead of a
  per-record Python loop;
* :class:`PriceStack` — the whole catalog's price series stacked into
  one CSR-style triple (``offsets``, ``times``, ``prices``), so
  catalog-wide rankings are segment reductions over two flat arrays;
* :class:`ProbeColumns` — every probe record as flat columns (times,
  kind/trigger/outcome codes, rejection flags, spike multiples), the
  view the analysis readers tally over.

Invalidation is **incremental and per market**: appending a probe drops
only that ``(market, kind)``'s period entry (and marks the global probe
columns stale); appending a price drops only that market's cached price
snapshot (and marks the stack stale).  Views handed out are snapshot
copies — safe to hold across later inserts — and a stale view is never
served: every accessor revalidates against the database's write
counters first.

The heavy ranking kernel (:func:`stability_metrics`) computes
mean-time-to-revocation, availability-at-bid, and time-weighted mean
price for *all* markets at once.  Per-segment reductions use
``np.add.reduceat`` (segment-local summation) rather than global
prefix-sum differences, so precision matches the per-market reference
arithmetic instead of suffering catastrophic cancellation against a
catalog-wide running total.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.core.market_id import MarketID
from repro.core.records import ProbeKind, ProbeTrigger, UnavailabilityPeriod

if TYPE_CHECKING:  # friend class of ProbeDatabase; no runtime import cycle
    from repro.core.database import ProbeDatabase

#: Stable integer codes for the enum columns (enum definition order).
KIND_CODES: dict[ProbeKind, int] = {k: i for i, k in enumerate(ProbeKind)}
TRIGGER_CODES: dict[ProbeTrigger, int] = {t: i for i, t in enumerate(ProbeTrigger)}

_EMPTY_F8 = np.empty(0, dtype=np.float64)
_EMPTY_I8 = np.empty(0, dtype=np.int64)


class PeriodColumns:
    """One ``(market, kind)``'s unavailability periods as columns.

    Closed periods (``starts``/``ends``/``counts``) are in start order;
    a trailing run of rejections with no fulfilled probe after it is
    kept separately (``open_start``/``open_count``) because its end
    depends on the caller's horizon.
    """

    __slots__ = (
        "market", "kind", "starts", "ends", "counts",
        "open_start", "open_count", "last_time", "has_probes",
    )

    def __init__(
        self,
        market: MarketID,
        kind: ProbeKind,
        starts: np.ndarray,
        ends: np.ndarray,
        counts: np.ndarray,
        open_start: float | None,
        open_count: int,
        last_time: float,
        has_probes: bool,
    ) -> None:
        self.market = market
        self.kind = kind
        self.starts = starts
        self.ends = ends
        self.counts = counts
        self.open_start = open_start
        self.open_count = open_count
        self.last_time = last_time
        self.has_probes = has_probes

    def open_end(self, horizon: float | None) -> float:
        """End of the still-open period under a horizon (reference
        semantics: the horizon, or the last probe time, floored at the
        run start)."""
        end = self.last_time if horizon is None else horizon
        return max(end, self.open_start)

    def max_end(self) -> float | None:
        """Latest period end with no horizon (None when period-free)."""
        if self.open_start is not None:
            return self.open_end(None)
        if self.starts.size:
            return float(self.ends[-1])
        return None

    def unavailable_within(self, start: float, end: float) -> float:
        """Total measured-unavailable seconds clipped to ``[start, end]``.

        Accumulates period overlaps in start order with a sequential
        Python sum — the exact arithmetic of the scalar reference —
        over numpy-clipped period columns.
        """
        total = 0.0
        if self.starts.size:
            overlaps = (
                np.minimum(self.ends, end) - np.maximum(self.starts, start)
            )
            for overlap in overlaps.tolist():
                if overlap > 0.0:
                    total += overlap
        if self.open_start is not None:
            lo = max(self.open_start, start)
            hi = min(self.open_end(end), end)
            if hi > lo:
                total += hi - lo
        return total

    def total_duration(self, horizon: float | None) -> float:
        """Sum of all period durations (reference accumulation order)."""
        total = 0.0
        if self.starts.size:
            for duration in (self.ends - self.starts).tolist():
                total += duration
        if self.open_start is not None:
            total += self.open_end(horizon) - self.open_start
        return total

    def durations(self, horizon: float | None) -> np.ndarray:
        """Per-period durations, in start order (open period last)."""
        closed = self.ends - self.starts
        if self.open_start is None:
            return closed
        return np.concatenate(
            (closed, [self.open_end(horizon) - self.open_start])
        )

    def period_starts(self) -> np.ndarray:
        """Start times of every period, open period last."""
        if self.open_start is None:
            return self.starts
        return np.concatenate((self.starts, [self.open_start]))

    def contains(self, when: float) -> bool:
        """Whether ``when`` falls inside a measured period (no horizon)."""
        if self.starts.size:
            idx = int(np.searchsorted(self.starts, when, side="right")) - 1
            if idx >= 0 and when < self.ends[idx]:
                return True
        if self.open_start is not None:
            return self.open_start <= when < self.open_end(None)
        return False

    def to_periods(self, horizon: float | None) -> list[UnavailabilityPeriod]:
        """Materialize :class:`UnavailabilityPeriod` objects (reference
        field values, byte-identical floats)."""
        periods = [
            UnavailabilityPeriod(self.market, self.kind, start, end, count)
            for start, end, count in zip(
                self.starts.tolist(), self.ends.tolist(), self.counts.tolist()
            )
        ]
        if self.open_start is not None:
            periods.append(
                UnavailabilityPeriod(
                    self.market, self.kind, self.open_start,
                    self.open_end(horizon), self.open_count,
                    end_observed=False,
                )
            )
        return periods


class PriceStack:
    """Every market's price series stacked into flat CSR-style columns:
    market ``i`` owns ``times[offsets[i]:offsets[i+1]]``."""

    __slots__ = ("markets", "offsets", "times", "prices")

    def __init__(
        self,
        markets: tuple[MarketID, ...],
        offsets: np.ndarray,
        times: np.ndarray,
        prices: np.ndarray,
    ) -> None:
        self.markets = markets
        self.offsets = offsets
        self.times = times
        self.prices = prices

    def __len__(self) -> int:
        return len(self.markets)

    @property
    def counts(self) -> np.ndarray:
        return np.diff(self.offsets)

    def bounds(self, start: float, end: float | None) -> tuple[np.ndarray, np.ndarray]:
        """Per-market index ranges of samples with ``start <= t <= end``
        (absolute indices into the stacked columns)."""
        lo = self.offsets[:-1].copy()
        hi = self.offsets[1:].copy()
        if self.times.size == 0:
            return lo, hi
        full_start = start <= self.times.min()
        full_end = end is None or end >= self.times.max()
        if full_start and full_end:
            return lo, hi
        for i in range(len(self.markets)):
            segment = self.times[self.offsets[i]:self.offsets[i + 1]]
            if not full_start:
                lo[i] = self.offsets[i] + np.searchsorted(
                    segment, start, side="left"
                )
            if not full_end:
                hi[i] = self.offsets[i] + np.searchsorted(
                    segment, end, side="right"
                )
        return lo, hi


class ProbeColumns:
    """Every probe record as flat columns, market-major (markets in
    sorted order, time order within a market)."""

    __slots__ = (
        "markets", "outcomes", "market_index", "times", "spike_multiples",
        "kind_codes", "trigger_codes", "outcome_codes", "rejected",
        "_region_cache", "_ordinal_cache",
    )

    def __init__(
        self,
        markets: tuple[MarketID, ...],
        outcomes: tuple[str, ...],
        market_index: np.ndarray,
        times: np.ndarray,
        spike_multiples: np.ndarray,
        kind_codes: np.ndarray,
        trigger_codes: np.ndarray,
        outcome_codes: np.ndarray,
        rejected: np.ndarray,
    ) -> None:
        self.markets = markets
        self.outcomes = outcomes
        self.market_index = market_index
        self.times = times
        self.spike_multiples = spike_multiples
        self.kind_codes = kind_codes
        self.trigger_codes = trigger_codes
        self.outcome_codes = outcome_codes
        self.rejected = rejected
        self._region_cache: np.ndarray | None = None
        self._ordinal_cache: dict[MarketID, int] | None = None

    def __len__(self) -> int:
        return len(self.times)

    def kind_mask(self, kind: ProbeKind) -> np.ndarray:
        return self.kind_codes == KIND_CODES[kind]

    def trigger_mask(self, *triggers: ProbeTrigger) -> np.ndarray:
        mask = np.zeros(len(self.times), dtype=bool)
        for trigger in triggers:
            mask |= self.trigger_codes == TRIGGER_CODES[trigger]
        return mask

    def outcome_code(self, outcome: str) -> int:
        """The code of an outcome string (-1 when never recorded, which
        matches no record)."""
        try:
            return self.outcomes.index(outcome)
        except ValueError:
            return -1

    def market_ordinal(self, market: MarketID) -> int | None:
        if self._ordinal_cache is None:
            self._ordinal_cache = {m: i for i, m in enumerate(self.markets)}
        return self._ordinal_cache.get(market)

    def record_regions(self) -> np.ndarray:
        """Region string per record (numpy str array)."""
        if self._region_cache is None:
            by_market = np.asarray([m.region for m in self.markets])
            self._region_cache = (
                by_market[self.market_index]
                if len(self.markets)
                else np.asarray([], dtype=str)
            )
        return self._region_cache


# -- segment reductions -------------------------------------------------------

def _segment_sums(weights: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Per-segment ``weights[lo:hi].sum()`` for many segments at once.

    ``np.add.reduceat`` keeps each sum segment-local (precision on par
    with the per-market reference reductions); a global cumsum-and-
    subtract would carry the whole catalog's running total into every
    segment and lose digits to cancellation.
    """
    if len(lo) == 0:
        return weights[:0].copy()
    # One zero sentinel so hi == len(weights) stays a valid boundary.
    padded = np.concatenate((weights, np.zeros(1, dtype=weights.dtype)))
    indices = np.empty(2 * len(lo), dtype=np.int64)
    indices[0::2] = lo
    indices[1::2] = hi
    sums = np.add.reduceat(padded, indices)[0::2]
    # reduceat quirk: an empty segment yields padded[lo], not 0.
    return np.where(lo < hi, sums, 0)


def stability_metrics(
    stack: PriceStack,
    bids: np.ndarray,
    start: float = 0.0,
    end: float | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-market ``(mean_time_to_revocation, availability_at_bid,
    time-weighted mean price)`` over ``[start, end]``, one stacked pass.

    Implements exactly the per-market reference formulas of
    :class:`~repro.core.query.SpotLightQuery` (run detection against a
    shifted below-bid mask, interval-weighted sums, the same degenerate-
    window fallbacks), evaluated for every market at once.
    """
    n_markets = len(stack.markets)
    mttr = np.zeros(n_markets)
    avail = np.ones(n_markets)
    mean_price = np.zeros(n_markets)
    if n_markets == 0 or stack.times.size == 0:
        return mttr, avail, mean_price

    times, prices, offsets = stack.times, stack.prices, stack.offsets
    total_samples = times.size
    lo, hi = stack.bounds(start, end)
    n = hi - lo
    nonempty = n > 0
    # Clamped helpers: for empty windows these indices are meaningless
    # but must stay in range; every use is masked by `n` checks.
    lo_c = np.minimum(lo, total_samples - 1)
    hi1 = np.maximum(hi - 1, lo_c)

    bid_per_sample = np.repeat(bids, np.diff(offsets))
    below = prices <= bid_per_sample
    prev = np.empty(total_samples, dtype=bool)
    prev[0] = False
    prev[1:] = below[:-1]
    prev[lo_c[nonempty]] = False  # a window's first sample has no predecessor

    # In-window membership (windows live in disjoint segments).
    delta = np.zeros(total_samples + 1, dtype=np.int64)
    np.add.at(delta, lo, 1)
    np.add.at(delta, hi, -1)
    windowed = np.cumsum(delta[:-1]) > 0

    # Interval after sample i (zero for each window's last sample via
    # the [lo, hi-1) reduction range below).
    intervals = np.empty(total_samples)
    intervals[:-1] = times[1:] - times[:-1]
    intervals[-1] = 0.0

    first_t = times[lo_c]
    last_t = times[hi1]
    total = last_t - first_t

    # availability_at_bid: time below bid / window span.
    below_time = _segment_sums(intervals * below, lo, hi1)
    spanned = (n >= 2) & (total > 0)
    avail[spanned] = below_time[spanned] / total[spanned]

    # mean_price: interval-weighted, with the reference fallbacks.
    weighted = _segment_sums(intervals * prices, lo, hi1)
    single = n == 1
    mean_price[single] = prices[lo_c][single]
    degenerate = (n >= 2) & (total <= 0)
    mean_price[degenerate] = prices[hi1][degenerate]
    mean_price[spanned] = weighted[spanned] / total[spanned]

    # mean_time_to_revocation: below-bid runs.  Run starts are below
    # samples whose predecessor was above (or the window's first
    # sample); ends are the first above sample after each start; a
    # still-open trailing run ends at the window's final sample.
    run_starts = windowed & below & ~prev
    run_ends = windowed & ~below & prev
    start_count = _segment_sums(run_starts.astype(np.int64), lo, hi)
    end_count = _segment_sums(run_ends.astype(np.int64), lo, hi)
    start_sum = _segment_sums(times * run_starts, lo, hi)
    end_sum = _segment_sums(times * run_ends, lo, hi)
    end_sum = end_sum + np.where(end_count < start_count, last_t, 0.0)
    has_runs = nonempty & (start_count > 0)
    mttr[has_runs] = (
        (end_sum[has_runs] - start_sum[has_runs]) / start_count[has_runs]
    )
    return mttr, avail, mean_price


# -- the index ----------------------------------------------------------------

class ReadIndex:
    """Columnar read-side views over one probe database.

    A friend of :class:`~repro.core.database.ProbeDatabase`: it reads
    the database's packed per-market columns directly and the database
    calls the ``invalidate_*`` hooks on every insert.  All views are
    built lazily on first use and revalidated against the write
    counters, so a view is never served stale.
    """

    def __init__(self, database: "ProbeDatabase") -> None:
        self._db = database
        self._probe_version = 0
        self._price_version = 0
        self._periods: dict[tuple[MarketID, ProbeKind], PeriodColumns] = {}
        self._price_arrays: dict[MarketID, tuple[np.ndarray, np.ndarray]] = {}
        self._stack: PriceStack | None = None
        self._stack_version = -1
        self._substacks: dict[tuple[MarketID, ...], PriceStack] = {}
        self._substacks_version = -1
        self._columns: ProbeColumns | None = None
        self._columns_version = -1
        self.probe_invalidations = 0
        self.price_invalidations = 0

    # -- invalidation hooks (called by the database on insert) --------------
    def invalidate_probes(self, market: MarketID, kind: ProbeKind) -> None:
        self._probe_version += 1
        self.probe_invalidations += 1
        self._periods.pop((market, kind), None)

    def invalidate_prices(self, market: MarketID) -> None:
        self._price_version += 1
        self.price_invalidations += 1
        self._price_arrays.pop(market, None)

    def stats(self) -> dict[str, int]:
        """Invalidation counters and warm-view counts — how much of the
        index survives a stream of replicated inserts (per-market
        invalidation means untouched markets stay warm)."""
        return {
            "probe_invalidations": self.probe_invalidations,
            "price_invalidations": self.price_invalidations,
            "warm_period_views": len(self._periods),
            "warm_price_arrays": len(self._price_arrays),
        }

    def reset(self) -> None:
        """Drop every cached view (benchmarks use this to re-measure
        the cold build path)."""
        self._periods.clear()
        self._price_arrays.clear()
        self._stack = None
        self._stack_version = -1
        self._substacks.clear()
        self._substacks_version = -1
        self._columns = None
        self._columns_version = -1

    # -- periods -------------------------------------------------------------
    def period_columns(self, market: MarketID, kind: ProbeKind) -> PeriodColumns:
        key = (market, kind)
        entry = self._periods.get(key)
        if entry is None:
            entry = self._build_period_columns(market, kind)
            self._periods[key] = entry
        return entry

    def _build_period_columns(
        self, market: MarketID, kind: ProbeKind
    ) -> PeriodColumns:
        block = self._db._probe_blocks.get(market)
        empty = PeriodColumns(
            market, kind, _EMPTY_F8, _EMPTY_F8, _EMPTY_I8,
            None, 0, 0.0, has_probes=False,
        )
        if block is None:
            return empty
        kinds = np.frombuffer(block.kinds, dtype=np.int8)
        selected = kinds == KIND_CODES[kind]
        matches = int(selected.sum())
        if matches == 0:
            return empty
        if matches == len(kinds):  # single-kind market: skip the gather
            times = np.frombuffer(block.times, dtype=np.float64).copy()
            rejected = (
                np.frombuffer(block.rejected, dtype=np.int8).astype(bool)
            )
        else:
            times = np.frombuffer(block.times, dtype=np.float64)[selected]
            rejected = (
                np.frombuffer(block.rejected, dtype=np.int8)[selected]
                .astype(bool)
            )
        prev = np.empty_like(rejected)
        prev[0] = False
        prev[1:] = rejected[:-1]
        start_idx = np.flatnonzero(rejected & ~prev)
        end_idx = np.flatnonzero(~rejected & prev)
        closed = len(end_idx)
        open_start: float | None = None
        open_count = 0
        if len(start_idx) > closed:  # trailing run never saw a fulfilled probe
            open_start = float(times[start_idx[-1]])
            open_count = int(times.size - start_idx[-1])
        return PeriodColumns(
            market, kind,
            times[start_idx[:closed]],
            times[end_idx],
            (end_idx - start_idx[:closed]).astype(np.int64),
            open_start, open_count,
            float(times[-1]), has_probes=True,
        )

    def durations_stack(
        self, kind: ProbeKind, horizon: float | None = None
    ) -> np.ndarray:
        """Every market's period durations, ordered like the reference
        period list (by start time, ties by market order)."""
        starts: list[np.ndarray] = []
        durations: list[np.ndarray] = []
        ordinals: list[np.ndarray] = []
        for ordinal, market in enumerate(self._db.markets):
            entry = self.period_columns(market, kind)
            d = entry.durations(horizon)
            if d.size:
                starts.append(entry.period_starts())
                durations.append(d)
                ordinals.append(np.full(d.size, ordinal, dtype=np.int64))
        if not durations:
            return _EMPTY_F8
        all_starts = np.concatenate(starts)
        all_durations = np.concatenate(durations)
        order = np.lexsort((np.concatenate(ordinals), all_starts))
        return all_durations[order]

    # -- prices --------------------------------------------------------------
    def market_price_arrays(
        self, market: MarketID
    ) -> tuple[np.ndarray, np.ndarray]:
        """One market's full price series as cached numpy snapshots."""
        cached = self._price_arrays.get(market)
        if cached is None:
            column = self._db._prices_by_market.get(market)
            if column is None:
                cached = (_EMPTY_F8, _EMPTY_F8)
            else:
                cached = column.arrays()
            self._price_arrays[market] = cached
        return cached

    def price_view(
        self, market: MarketID, start: float | None = None,
        end: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy window onto a market's cached price snapshot
        (bisected exactly like ``TimeSeries.bounds``)."""
        times, prices = self.market_price_arrays(market)
        lo = 0 if start is None else int(np.searchsorted(times, start, "left"))
        hi = (
            len(times) if end is None
            else int(np.searchsorted(times, end, "right"))
        )
        return times[lo:hi], prices[lo:hi]

    def price_stack(
        self, markets: Iterable[MarketID] | None = None
    ) -> PriceStack:
        """The stacked price columns — the full catalog or a subset
        (e.g. one region's markets).  Both are cached until the next
        price insert, so repeated region-filtered rankings do not
        re-concatenate their segment on every call."""
        if markets is not None:
            key = tuple(markets)
            if self._substacks_version != self._price_version:
                self._substacks.clear()
                self._substacks_version = self._price_version
            cached = self._substacks.get(key)
            if cached is None:
                cached = self._substacks[key] = self._build_stack(key)
            return cached
        if self._stack is None or self._stack_version != self._price_version:
            self._stack = self._build_stack(
                tuple(sorted(self._db._prices_by_market))
            )
            self._stack_version = self._price_version
        return self._stack

    def _build_stack(self, markets: tuple[MarketID, ...]) -> PriceStack:
        series = self._db._prices_by_market
        offsets = np.zeros(len(markets) + 1, dtype=np.int64)
        time_parts: list[np.ndarray] = []
        price_parts: list[np.ndarray] = []
        for i, market in enumerate(markets):
            column = series.get(market)
            count = 0 if column is None else len(column)
            offsets[i + 1] = offsets[i] + count
            if count:
                # Transient frombuffer views; np.concatenate copies them
                # out before the next append could invalidate a buffer.
                time_parts.append(np.frombuffer(column.times, dtype=np.float64))
                price_parts.append(
                    np.frombuffer(column.values, dtype=np.float64)
                )
        if not time_parts:
            return PriceStack(markets, offsets, _EMPTY_F8, _EMPTY_F8)
        return PriceStack(
            markets, offsets,
            np.concatenate(time_parts), np.concatenate(price_parts),
        )

    # -- probes --------------------------------------------------------------
    def probe_columns(self) -> ProbeColumns:
        if self._columns is None or self._columns_version != self._probe_version:
            self._columns = self._build_probe_columns()
            self._columns_version = self._probe_version
        return self._columns

    def _build_probe_columns(self) -> ProbeColumns:
        blocks = self._db._probe_blocks
        markets = tuple(sorted(blocks))
        outcomes = tuple(self._db._outcome_names)
        counts = [len(blocks[m].times) for m in markets]
        total = sum(counts)
        if total == 0:
            return ProbeColumns(
                markets, outcomes,
                _EMPTY_I8.astype(np.int32), _EMPTY_F8, _EMPTY_F8,
                _EMPTY_I8.astype(np.int8), _EMPTY_I8.astype(np.int8),
                _EMPTY_I8.astype(np.int32), np.empty(0, dtype=bool),
            )

        def concat(field: str, dtype) -> np.ndarray:
            return np.concatenate(
                [
                    np.frombuffer(getattr(blocks[m], field), dtype=dtype)
                    for m in markets
                    if len(blocks[m].times)
                ]
            )

        market_index = np.repeat(
            np.arange(len(markets), dtype=np.int32), counts
        )
        return ProbeColumns(
            markets, outcomes, market_index,
            concat("times", np.float64),
            concat("spike_multiples", np.float64),
            concat("kinds", np.int8),
            concat("triggers", np.int8),
            concat("outcomes", np.int32),
            concat("rejected", np.int8).astype(bool),
        )

    # -- warm-up -------------------------------------------------------------
    def prime(self) -> None:
        """Build every view now (servers call this before first traffic
        so no request pays the index build)."""
        self.price_stack()
        self.probe_columns()
        for market in self._db._probe_blocks:
            for kind in ProbeKind:
                self.period_columns(market, kind)

"""The serving frontend.

:class:`~repro.core.query.SpotLightQuery` is the stateless query
engine: pure reads over a datastore and a catalog.  The
:class:`QueryFrontend` is the layer applications actually talk to:

* **typed methods** mirroring the engine's flagship queries, with a
  TTL-based result cache in front (availability answers change slowly;
  the paper's serving path is read-heavy);
* a **request/response schema** — dict-in/dict-out ``handle()`` — for
  clients that speak plain data (the CLI ``query`` subcommand, or a
  network transport layered on top).  Markets travel as
  ``"zone/type/product"`` strings, enums as their values, and every
  response carries ``ok``, ``cached``, and ``served_at``.

The cache key is the canonical JSON of ``(query, params)``; entries
expire ``cache_ttl`` seconds after being filled, measured on the clock
the frontend is given (the provider's clock for an embedded frontend,
wall time for a standalone one).

On top of the object cache sits the **wire cache** — the serving hot
path.  :meth:`QueryFrontend.handle_wire` answers a schema request with
a :class:`WireResponse` holding the *serialized* UTF-8 JSON response
bytes and a precomputed strong ETag, keyed by the same
:meth:`request_key`.  A wire hit is a dict lookup returning bytes that
a transport writes straight to the socket — no ``json.dumps`` per hit.
ETags hash the ``(query, result)`` content plus a **generation**
counter bumped by :meth:`invalidate`, so conditional requests
(``If-None-Match`` → 304) stay correct across cache invalidation and
keep answering 304 across TTL refreshes that recompute the same
result.  The typed methods are untouched: they keep returning engine
objects from the object cache.

Both caches keep their dicts in expiry order (constant TTL + monotonic
clock means insertion order *is* expiry order; refreshed keys are
re-inserted at the end), so making room for an insert pops expired
entries from the front instead of scanning the whole dict — O(1)
amortized at capacity.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.market_id import MarketID
from repro.core.query import MarketStability, SpotLightQuery
from repro.core.records import ProbeKind, UnavailabilityPeriod

#: Default result-cache TTL (seconds on the frontend's clock).
DEFAULT_CACHE_TTL = 300.0

#: Per-market point queries the stacked cold-batch kernel can answer
#: with one catalog-wide :func:`~repro.core.read_index.stability_metrics`
#: pass instead of one engine call each.
STACKABLE_QUERIES = frozenset(
    {"availability-at-bid", "mean-time-to-revocation", "mean-price"}
)

#: Minimum number of *distinct* cold stackable queries in a batch before
#: the stacked kernel is used.  Below this the per-query path wins — and
#: a batch of identical sub-queries must keep flowing through it so
#: duplicate coalescing (one engine call, followers get cached bytes)
#: behaves exactly like the equivalent sequence of single requests.
STACKED_BATCH_MIN = 4


class BadRequestError(ValueError):
    """A request that does not fit the schema."""


@dataclass
class _CacheEntry:
    value: Any
    expires: float


def wire_encode(payload: object) -> bytes:
    """The canonical wire encoding: compact UTF-8 JSON.

    Every serialized response — single, batch element, cached bytes —
    uses this one encoding, so decode→re-encode round-trips
    byte-identically and batch bodies can be assembled by concatenating
    already-serialized parts.
    """
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def assemble_batch_body(parts: list[bytes]) -> bytes:
    """Join per-query response bytes into one batch response body
    without re-encoding any of them."""
    return (
        b'{"ok":true,"count":' + str(len(parts)).encode() + b',"results":['
        + b",".join(parts) + b"]}"
    )


class QueryRequest:
    """One wire query with its canonical key memoized.

    The transport builds one of these per parsed request; single-flight
    coalescing, the wire byte cache, and the ETag all share the single
    :meth:`QueryFrontend.request_key` computation instead of re-running
    ``json.dumps(sort_keys=True)`` at every layer.
    """

    __slots__ = ("query", "params", "_key")

    def __init__(self, query: object, params: object) -> None:
        self.query = query
        self.params = params if params is not None else {}
        self._key: str | None = None

    @classmethod
    def from_dict(cls, request: dict) -> "QueryRequest":
        return cls(request.get("query"), request.get("params", {}))

    @property
    def key(self) -> str:
        key = self._key
        if key is None:
            key = self._key = QueryFrontend.request_key(self.query, self.params)
        return key

    def as_dict(self) -> dict[str, object]:
        return {"query": self.query, "params": self.params}


class WireResponse:
    """One serialized response: exact bytes plus wire metadata.

    ``body`` is what this request gets; ``follower_body`` is what a
    *subsequent* identical request would get (the cached variant with
    ``"cached": true`` baked in) — coalesced followers and batch
    duplicates use it so a batch stays byte-identical to the
    equivalent sequence of single requests.
    """

    __slots__ = ("status", "body", "etag", "cached", "follower_body")

    def __init__(
        self,
        status: int,
        body: bytes,
        etag: str | None,
        cached: bool,
        follower_body: bytes,
    ) -> None:
        self.status = status
        self.body = body
        self.etag = etag
        self.cached = cached
        self.follower_body = follower_body

    def as_follower(self) -> "WireResponse":
        return WireResponse(
            self.status, self.follower_body, self.etag, True, self.follower_body
        )


class _WireEntry:
    __slots__ = ("status", "body", "etag", "expires")

    def __init__(
        self, status: int, body: bytes, etag: str, expires: float
    ) -> None:
        self.status = status
        self.body = body
        self.etag = etag
        self.expires = expires


def _parse_market(value: object) -> MarketID:
    """Accept a MarketID, a ``"zone/type/product"`` string, or a dict."""
    if isinstance(value, MarketID):
        return value
    if isinstance(value, str):
        parts = value.split("/", 2)
        if len(parts) != 3 or not all(parts):
            raise BadRequestError(
                f"market must be 'zone/type/product', got {value!r}"
            )
        return MarketID(*parts)
    if isinstance(value, dict):
        try:
            return MarketID(
                str(value["availability_zone"]),
                str(value["instance_type"]),
                str(value["product"]),
            )
        except KeyError as exc:
            raise BadRequestError(f"market dict missing key: {exc}") from None
    raise BadRequestError(f"cannot interpret market: {value!r}")


def _parse_kind(value: object) -> ProbeKind:
    if isinstance(value, ProbeKind):
        return value
    try:
        return ProbeKind(str(value))
    except ValueError:
        raise BadRequestError(f"unknown probe kind: {value!r}") from None


_MISSING = object()


class _Params:
    """Schema-side access to a request's params: every failure here is
    the *client's* fault and raises :class:`BadRequestError`, so
    ``handle()`` can tell bad requests apart from engine-side errors."""

    def __init__(self, raw: dict[str, object]) -> None:
        self._raw = raw

    def _get(self, key: str, default: object = _MISSING) -> object:
        value = self._raw.get(key, default)
        if value is _MISSING:
            raise BadRequestError(f"missing required param {key!r}")
        return value

    def market(self, key: str = "market") -> MarketID:
        return _parse_market(self._get(key))

    def optional_market(self, key: str = "market") -> MarketID | None:
        value = self._raw.get(key)
        return None if value is None else _parse_market(value)

    def markets(self, key: str) -> list[MarketID]:
        value = self._get(key)
        if not isinstance(value, list) or not value:
            raise BadRequestError(f"{key} must be a non-empty list")
        return [_parse_market(item) for item in value]

    def number(self, key: str, default: object = _MISSING) -> float:
        value = self._get(key, default)
        try:
            return float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise BadRequestError(f"{key} must be a number: {value!r}") from None

    def optional_number(self, key: str) -> float | None:
        if self._raw.get(key) is None:
            return None
        return self.number(key)

    def integer(self, key: str, default: object = _MISSING) -> int:
        value = self._get(key, default)
        try:
            return int(value)  # type: ignore[call-overload]
        except (TypeError, ValueError):
            raise BadRequestError(f"{key} must be an integer: {value!r}") from None

    def kind(self, key: str = "kind",
             default: ProbeKind = ProbeKind.ON_DEMAND) -> ProbeKind:
        return _parse_kind(self._get(key, default))

    def optional_kind(self, key: str = "kind") -> ProbeKind | None:
        value = self._raw.get(key)
        return None if value is None else _parse_kind(value)

    def optional_string(self, key: str) -> str | None:
        value = self._raw.get(key)
        if value is not None and not isinstance(value, str):
            raise BadRequestError(f"{key} must be a string: {value!r}")
        return value


def _market_json(market: MarketID) -> dict[str, str]:
    return {
        "market": str(market),
        "availability_zone": market.availability_zone,
        "instance_type": market.instance_type,
        "product": market.product,
    }


def _stability_json(entry: MarketStability) -> dict[str, object]:
    return {
        **_market_json(entry.market),
        "mean_time_to_revocation": entry.mean_time_to_revocation,
        "availability_at_bid": entry.availability_at_bid,
        "mean_price": entry.mean_price,
    }


def _period_json(period: UnavailabilityPeriod) -> dict[str, object]:
    return {
        **_market_json(period.market),
        "kind": period.kind.value,
        "start": period.start,
        "end": period.end,
        "duration": period.duration,
        "probe_count": period.probe_count,
        "end_observed": period.end_observed,
    }


class QueryFrontend:
    """TTL-cached serving layer over a stateless query engine."""

    def __init__(
        self,
        engine: SpotLightQuery,
        clock: Callable[[], float] | None = None,
        cache_ttl: float = DEFAULT_CACHE_TTL,
        max_entries: int = 1024,
    ) -> None:
        if cache_ttl < 0:
            raise ValueError(f"cache TTL must be non-negative: {cache_ttl}")
        if max_entries < 1:
            raise ValueError(f"cache needs at least one entry: {max_entries}")
        self.engine = engine
        self.cache_ttl = cache_ttl
        self.max_entries = max_entries
        self._clock = clock if clock is not None else time.monotonic
        self._cache: dict[str, _CacheEntry] = {}
        self._wire_cache: dict[str, _WireEntry] = {}
        self._generation = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.wire_hits = 0
        self.wire_misses = 0
        self._handlers: dict[str, Callable[[dict], object]] = {
            "top-stable-markets": self._q_top_stable_markets,
            "availability": self._q_availability,
            "availability-at-bid": self._q_availability_at_bid,
            "mean-time-to-revocation": self._q_mean_time_to_revocation,
            "mean-price": self._q_mean_price,
            "on-demand-price": self._q_on_demand_price,
            "unavailability-periods": self._q_unavailability_periods,
            "least-unavailable-markets": self._q_least_unavailable,
            "rejection-rate": self._q_rejection_rate,
            "rejection-counts": self._q_rejection_counts,
        }

    # -- cache machinery ----------------------------------------------------
    @staticmethod
    def request_key(query: object, params: object) -> str:
        """Canonical identity of a ``(query, params)`` pair.

        The result cache keys on it, and a transport in front of the
        frontend can use the same canonicalization to recognise
        identical in-flight requests (single-flight coalescing).
        """
        return json.dumps({"query": query, "params": params}, sort_keys=True)

    def _cached(
        self, query: str, params: dict[str, object], compute: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """Serve from cache or compute; returns ``(value, was_cached)``."""
        key = self.request_key(query, params)
        now = self._clock()
        entry = self._cache.get(key)
        if entry is not None and now < entry.expires:
            self.hits += 1
            return entry.value, True
        self.misses += 1
        value = compute()
        if entry is not None:
            # Re-insert at the end so the dict stays expiry-ordered
            # (constant TTL + monotonic clock: insertion order is
            # expiry order — what lets _evict pop from the front).
            del self._cache[key]
        elif len(self._cache) >= self.max_entries:
            self._evict(now)
        self._cache[key] = _CacheEntry(value, now + self.cache_ttl)
        return value, False

    def _evict(self, now: float) -> None:
        """Make room for one insert.  ``expirations`` counts entries
        whose TTL had lapsed; ``evictions`` counts live entries dropped
        purely for capacity — each removal is tallied exactly once.

        The dict is expiry-ordered (see :meth:`_cached`), so lapsed
        entries are popped from the front until the first live one —
        O(expired), not O(entries) — and the scan never touches live
        entries it will not drop.
        """
        cache = self._cache
        while cache:
            oldest = next(iter(cache))
            if cache[oldest].expires > now:
                break
            del cache[oldest]
            self.expirations += 1
        while len(cache) >= self.max_entries:
            # Dicts iterate in insertion order: drop the oldest entry.
            del cache[next(iter(cache))]
            self.evictions += 1

    def invalidate(self) -> None:
        """Drop every cached result (e.g. after a bulk data import).

        Bumps the ETag generation: every ETag minted after an
        invalidation differs from every ETag minted before it, so a
        poller holding a pre-invalidation tag gets a full 200 (with the
        new tag) rather than a 304, even when the recomputed result
        happens to be identical.
        """
        self._cache.clear()
        self._wire_cache.clear()
        self._generation += 1

    def prime(self) -> None:
        """Warm the engine's read-side index (servers call this before
        announcing readiness, so the first cold query after a snapshot
        load does not also pay the index build)."""
        prime = getattr(self.engine, "prime", None)
        if prime is not None:
            prime()

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._cache),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "wire_entries": len(self._wire_cache),
            "wire_hits": self.wire_hits,
            "wire_misses": self.wire_misses,
            "generation": self._generation,
        }

    # -- the wire byte cache -------------------------------------------------
    @property
    def generation(self) -> int:
        """The ETag generation (bumped by :meth:`invalidate`)."""
        return self._generation

    def _etag(self, query: object, result: object) -> str:
        """A strong ETag over the *content* of an answer.

        Hashes ``(query, result)`` — not the response envelope — so a
        TTL refresh that recomputes the same result keeps the same tag
        (repeat pollers keep getting 304s), while the generation prefix
        guarantees a new tag after :meth:`invalidate`.
        """
        digest = hashlib.blake2b(
            wire_encode([query, result]), digest_size=10
        ).hexdigest()
        return f'"g{self._generation}-{digest}"'

    def wire_lookup(self, key: str) -> WireResponse | None:
        """The hot path: serialized bytes for ``key`` if cached and
        fresh, else None.  A hit costs one dict lookup — no encoding."""
        entry = self._wire_cache.get(key)
        if entry is None:
            return None
        if self._clock() >= entry.expires:
            del self._wire_cache[key]
            return None
        self.wire_hits += 1
        return WireResponse(entry.status, entry.body, entry.etag, True, entry.body)

    def handle_wire(self, request: "QueryRequest | dict") -> WireResponse:
        """Serve one schema request as serialized bytes (see
        :class:`WireResponse`); the byte-cache layer over
        :meth:`handle`.

        Only ``ok`` responses are cached (and tagged): error responses
        are recomputed per request, which keeps their bytes identical
        to what a fresh computation would produce.
        """
        if isinstance(request, QueryRequest):
            key = request.key
            raw = request.as_dict()
        else:
            key = self.request_key(
                request.get("query"), request.get("params", {})
            )
            raw = request
        hit = self.wire_lookup(key)
        if hit is not None:
            return hit
        self.wire_misses += 1
        return self.store_wire(key, self.handle(raw))

    def store_wire(self, key: str, response: dict[str, object]) -> WireResponse:
        """Serialize a :meth:`handle`-shaped response, cache the ``ok``
        variant under ``key``, and return the leader's
        :class:`WireResponse`.

        This is the single place response dicts become wire bytes: the
        per-request path, the stacked batch kernel, and a scatter-gather
        router storing merged (or shard-forwarded) answers all share it,
        so their bytes, ETags, and cache behavior stay identical.
        """
        body = wire_encode(response)
        if not response.get("ok"):
            code = response.get("error", {}).get("code")
            status = 500 if code == "internal-error" else 400
            return WireResponse(status, body, None, False, body)
        if response.get("cached"):
            follower = body  # already a downstream cache hit
        else:
            follower = wire_encode({**response, "cached": True})
        etag = self._etag(response["query"], response["result"])
        now = self._clock()
        if key in self._wire_cache:
            del self._wire_cache[key]  # re-insert: keep expiry order
        elif len(self._wire_cache) >= self.max_entries:
            self._evict_wire(now)
        self._wire_cache[key] = _WireEntry(
            200, follower, etag, now + self.cache_ttl
        )
        return WireResponse(200, body, etag, False, follower)

    def _evict_wire(self, now: float) -> None:
        """Make room in the wire cache: pop expired entries from the
        front of the expiry-ordered dict, then oldest-first."""
        cache = self._wire_cache
        while cache:
            oldest = next(iter(cache))
            if cache[oldest].expires > now:
                break
            del cache[oldest]
        while len(cache) >= self.max_entries:
            del cache[next(iter(cache))]

    def handle_wire_batch(self, requests: list) -> bytes:
        """Serve a batch of schema requests as one assembled body.

        Duplicate sub-queries are answered once and their later
        occurrences get the cached-variant bytes — exactly what the
        equivalent sequence of single requests would have produced.
        Enough distinct cold point queries take the stacked kernel path
        (:meth:`stacked_wire`) — one catalog-wide pass instead of one
        engine call each.  (The async transport implements the same
        contract with single-flight coalescing; this synchronous form
        serves the CLI and in-process callers.)
        """
        parsed = [
            QueryRequest.from_dict(item) if isinstance(item, dict) else None
            for item in requests
        ]
        stacked = self.stacked_wire(
            [request for request in parsed if request is not None]
        )
        parts: list[bytes] = []
        for request in parsed:
            if request is None:
                parts.append(
                    wire_encode(
                        self._error("bad-request", "request must be a dict")
                    )
                )
                continue
            leader = stacked.pop(request.key, None)
            if leader is None:
                leader = self.handle_wire(request)
            parts.append(leader.body)
        return assemble_batch_body(parts)

    def _wire_fresh(self, key: str) -> bool:
        """Whether ``key`` has a fresh wire entry, without touching the
        hit counters (planning check, not a serve)."""
        entry = self._wire_cache.get(key)
        return entry is not None and self._clock() < entry.expires

    def stacked_wire(
        self, requests: "list[QueryRequest]"
    ) -> dict[str, WireResponse]:
        """The stacked cold-batch kernel: answer many *distinct* cold
        per-market point queries with one catalog-wide read-index pass.

        Returns leader :class:`WireResponse` objects keyed by request
        key for every query the pass answered (wire cache filled, so
        later duplicates get follower bytes).  Returns ``{}`` — and the
        caller falls back to per-query evaluation — when the engine has
        no stacked kernel (scalar reference path, duck-typed engines)
        or fewer than :data:`STACKED_BATCH_MIN` distinct cold stackable
        queries are present, which keeps duplicate-heavy batches on the
        coalescing path.

        Queries sharing a ``[start, end]`` window share one kernel pass;
        a market queried at two different bids within one window forces
        a second pass (each pass evaluates one bid per market).
        """
        batch_fn = getattr(self.engine, "point_stats_batch", None)
        if batch_fn is None:
            return {}
        plan: dict[str, tuple] = {}
        for request in requests:
            if (
                not isinstance(request.query, str)
                or request.query not in STACKABLE_QUERIES
                or request.key in plan
            ):
                continue
            if not isinstance(request.params, dict):
                continue
            if self._wire_fresh(request.key):
                continue
            p = _Params(request.params)
            try:
                market = p.market()
                start = p.number("start", 0.0)
                end = p.optional_number("end")
                bid = (
                    0.0 if request.query == "mean-price"
                    else p.number("bid_price")
                )
            except BadRequestError:
                continue  # the per-query path renders the error bytes
            plan[request.key] = (request, market, bid, start, end)
        if len(plan) < STACKED_BATCH_MIN:
            return {}
        # One layer per (window, bid assignment): a layer holds at most
        # one bid per market.  Bid-independent mean-price queries join
        # the window's first layer.
        windows: dict[tuple, list[tuple[dict, list]]] = {}
        for request, market, bid, start, end in plan.values():
            layers = windows.setdefault((start, end), [])
            placed = None
            if request.query == "mean-price":
                if not layers:
                    layers.append(({}, []))
                placed = layers[0]
            else:
                for layer in layers:
                    existing = layer[0].get(market)
                    if existing is None or existing == bid:
                        placed = layer
                        break
                if placed is None:
                    placed = ({}, [])
                    layers.append(placed)
                placed[0][market] = bid
            placed[1].append((request, market, bid))
        out: dict[str, WireResponse] = {}
        for (start, end), layers in windows.items():
            for bids, members in layers:
                assignments = dict(bids)
                for _, market, _ in members:
                    assignments.setdefault(market, 0.0)
                try:
                    stats = batch_fn(assignments, start, end)
                except Exception:
                    return out  # engine failure: per-query path reports it
                if stats is None:
                    return out  # no stacked kernel after all
                for request, market, bid in members:
                    # Markets absent from the price stack carry the same
                    # degenerate defaults the per-market methods return.
                    mttr, avail, mean_price = stats.get(market, (0.0, 1.0, 0.0))
                    if request.query == "mean-price":
                        value = mean_price
                        normalized: dict[str, object] = {
                            "market": str(market), "start": start, "end": end,
                        }
                    else:
                        value = (
                            avail if request.query == "availability-at-bid"
                            else mttr
                        )
                        normalized = {
                            "market": str(market), "bid_price": bid,
                            "start": start, "end": end,
                        }
                    self.wire_misses += 1
                    result, was_cached = self._cached(
                        request.query, normalized, lambda v=value: v
                    )
                    out[request.key] = self.store_wire(request.key, {
                        "ok": True,
                        "query": request.query,
                        "result": result,
                        "cached": was_cached,
                        "served_at": self._clock(),
                    })
        return out

    # -- typed API (what the apps consume) ---------------------------------
    def on_demand_price(self, market: MarketID) -> float:
        value, _ = self._cached(
            "on-demand-price",
            {"market": str(market)},
            lambda: self.engine.on_demand_price(market),
        )
        return value

    def top_stable_markets(
        self,
        n: int = 10,
        bid_multiple: float = 1.0,
        start: float = 0.0,
        end: float | None = None,
        region: str | None = None,
    ) -> list[MarketStability]:
        value, _ = self._cached(
            "top-stable-markets",
            {"n": n, "bid_multiple": bid_multiple, "start": start, "end": end,
             "region": region},
            lambda: self.engine.top_stable_markets(n, bid_multiple, start, end, region),
        )
        return list(value)

    def availability(
        self,
        market: MarketID,
        kind: ProbeKind = ProbeKind.ON_DEMAND,
        start: float = 0.0,
        end: float | None = None,
    ) -> float:
        value, _ = self._cached(
            "availability",
            {"market": str(market), "kind": kind.value, "start": start, "end": end},
            lambda: self.engine.availability(market, kind, start, end),
        )
        return value

    def availability_at_bid(
        self,
        market: MarketID,
        bid_price: float,
        start: float = 0.0,
        end: float | None = None,
    ) -> float:
        value, _ = self._cached(
            "availability-at-bid",
            {"market": str(market), "bid_price": bid_price, "start": start,
             "end": end},
            lambda: self.engine.availability_at_bid(market, bid_price, start, end),
        )
        return value

    def mean_time_to_revocation(
        self,
        market: MarketID,
        bid_price: float,
        start: float = 0.0,
        end: float | None = None,
    ) -> float:
        value, _ = self._cached(
            "mean-time-to-revocation",
            {"market": str(market), "bid_price": bid_price, "start": start,
             "end": end},
            lambda: self.engine.mean_time_to_revocation(market, bid_price, start, end),
        )
        return value

    def mean_price(
        self, market: MarketID, start: float = 0.0, end: float | None = None
    ) -> float:
        value, _ = self._cached(
            "mean-price",
            {"market": str(market), "start": start, "end": end},
            lambda: self.engine.mean_price(market, start, end),
        )
        return value

    def spike_multiples(
        self, market: MarketID, start: float = 0.0, end: float | None = None
    ) -> list[tuple[float, float]]:
        value, _ = self._cached(
            "spike-multiples",
            {"market": str(market), "start": start, "end": end},
            lambda: self.engine.spike_multiples(market, start, end),
        )
        return list(value)

    def unavailability_periods(
        self,
        market: MarketID | None = None,
        kind: ProbeKind = ProbeKind.ON_DEMAND,
        horizon: float | None = None,
    ) -> list[UnavailabilityPeriod]:
        value, _ = self._cached(
            "unavailability-periods",
            {"market": None if market is None else str(market),
             "kind": kind.value, "horizon": horizon},
            lambda: self.engine.unavailability_periods(market, kind, horizon),
        )
        return list(value)

    def least_unavailable_markets(
        self,
        candidates: list[MarketID],
        kind: ProbeKind = ProbeKind.ON_DEMAND,
        horizon: float | None = None,
    ) -> list[tuple[MarketID, float]]:
        value, _ = self._cached(
            "least-unavailable-markets",
            {"candidates": [str(m) for m in candidates], "kind": kind.value,
             "horizon": horizon},
            lambda: self.engine.least_unavailable_markets(candidates, kind, horizon),
        )
        return list(value)

    def is_unavailable_at(
        self, market: MarketID, when: float, kind: ProbeKind = ProbeKind.ON_DEMAND
    ) -> bool:
        value, _ = self._cached(
            "is-unavailable-at",
            {"market": str(market), "when": when, "kind": kind.value},
            lambda: self.engine.is_unavailable_at(market, when, kind),
        )
        return value

    def rejection_rate(
        self, market: MarketID | None = None, kind: ProbeKind | None = None
    ) -> float:
        value, _ = self._cached(
            "rejection-rate",
            {"market": None if market is None else str(market),
             "kind": None if kind is None else kind.value},
            lambda: self.engine.rejection_rate(market, kind),
        )
        return value

    def rejection_counts(
        self, market: MarketID | None = None, kind: ProbeKind | None = None
    ) -> tuple[int, int]:
        """``(rejected, total)`` probe counts — what a scatter-gather
        router sums across shards to reproduce the global
        :meth:`rejection_rate` exactly."""
        value, _ = self._cached(
            "rejection-counts",
            {"market": None if market is None else str(market),
             "kind": None if kind is None else kind.value},
            lambda: self.engine.rejection_counts(market, kind),
        )
        return value

    # -- request/response API ----------------------------------------------
    def handle(self, request: dict[str, object]) -> dict[str, object]:
        """Serve one schema request; never raises on bad input.

        Request: ``{"query": <name>, "params": {...}}``.  Response:
        ``{"ok": True, "query", "result", "cached", "served_at"}`` or
        ``{"ok": False, "error": {"code", "message"}}``.
        """
        if not isinstance(request, dict):
            return self._error("bad-request", "request must be a dict")
        query = request.get("query")
        handler = self._handlers.get(query) if isinstance(query, str) else None
        if handler is None:
            return self._error(
                "unknown-query",
                f"unknown query {query!r}; valid: {sorted(self._handlers)}",
            )
        params = request.get("params", {})
        if not isinstance(params, dict):
            return self._error("bad-request", "params must be a dict")
        hits_before = self.hits
        try:
            result = handler(params)
        except BadRequestError as exc:
            return self._error("bad-request", str(exc))
        except Exception as exc:  # engine-side failure, not the client's fault
            return self._error("internal-error", f"{type(exc).__name__}: {exc}")
        return {
            "ok": True,
            "query": query,
            "result": result,
            "cached": self.hits > hits_before,
            "served_at": self._clock(),
        }

    @staticmethod
    def _error(code: str, message: str) -> dict[str, object]:
        return {"ok": False, "error": {"code": code, "message": message}}

    # -- schema handlers ----------------------------------------------------
    def _q_top_stable_markets(self, params: dict) -> object:
        p = _Params(params)
        entries = self.top_stable_markets(
            n=p.integer("n", 10),
            bid_multiple=p.number("bid_multiple", 1.0),
            start=p.number("start", 0.0),
            end=p.optional_number("end"),
            region=p.optional_string("region"),
        )
        return [_stability_json(entry) for entry in entries]

    def _q_availability(self, params: dict) -> object:
        p = _Params(params)
        return self.availability(
            p.market(),
            kind=p.kind(),
            start=p.number("start", 0.0),
            end=p.optional_number("end"),
        )

    def _q_availability_at_bid(self, params: dict) -> object:
        p = _Params(params)
        return self.availability_at_bid(
            p.market(),
            p.number("bid_price"),
            start=p.number("start", 0.0),
            end=p.optional_number("end"),
        )

    def _q_mean_time_to_revocation(self, params: dict) -> object:
        p = _Params(params)
        return self.mean_time_to_revocation(
            p.market(),
            p.number("bid_price"),
            start=p.number("start", 0.0),
            end=p.optional_number("end"),
        )

    def _q_mean_price(self, params: dict) -> object:
        p = _Params(params)
        return self.mean_price(
            p.market(), start=p.number("start", 0.0), end=p.optional_number("end")
        )

    def _q_on_demand_price(self, params: dict) -> object:
        return self.on_demand_price(_Params(params).market())

    def _q_unavailability_periods(self, params: dict) -> object:
        p = _Params(params)
        periods = self.unavailability_periods(
            market=p.optional_market(),
            kind=p.kind(),
            horizon=p.optional_number("horizon"),
        )
        return [_period_json(period) for period in periods]

    def _q_least_unavailable(self, params: dict) -> object:
        p = _Params(params)
        ranked = self.least_unavailable_markets(
            p.markets("candidates"),
            kind=p.kind(),
            horizon=p.optional_number("horizon"),
        )
        return [
            {**_market_json(market), "unavailable_seconds": total}
            for market, total in ranked
        ]

    def _q_rejection_rate(self, params: dict) -> object:
        p = _Params(params)
        return self.rejection_rate(
            market=p.optional_market(), kind=p.optional_kind()
        )

    def _q_rejection_counts(self, params: dict) -> object:
        p = _Params(params)
        rejected, total = self.rejection_counts(
            market=p.optional_market(), kind=p.optional_kind()
        )
        return {"rejected": rejected, "total": total}

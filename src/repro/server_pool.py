"""Multi-process serving: the wire tier scaled across cores.

One :class:`~repro.server.SpotLightServer` is a single asyncio event
loop — one Python process, one core.  :class:`WorkerPool` pre-forks
``N`` worker processes that each load the same read-only datastore
snapshot, build their own frontend + read index, and bind the same
``(host, port)`` with ``SO_REUSEPORT``, so the kernel spreads incoming
connections across the workers and throughput grows with cores instead
of saturating one event loop.

Pieces:

* :class:`StatsBoard` — a tiny shared-memory counter board.  Each
  worker owns one row and republishes its running totals after every
  request; any worker answering ``GET /stats`` folds all rows into a
  ``"cluster"`` aggregate, so one request sees fleet-wide traffic even
  though it landed on a single worker.
* :func:`_worker_main` — the (spawn-safe, module-level) worker entry
  point: load snapshot, prime the read index, serve until
  SIGINT/SIGTERM, drain gracefully, report.
* :class:`WorkerPool` — the parent-side controller: reserves the port
  (a bound, never-listening ``SO_REUSEPORT`` placeholder socket held
  for the pool's lifetime, so ``port=0`` resolves race-free), spawns
  the workers, waits for readiness, forwards shutdown, and checks that
  every worker drained cleanly.

Workers use the ``spawn`` start method: forking a parent that already
runs threads or an event loop (pytest, benchmarks) is a deadlock
lottery, and spawn keeps the workers' state exactly what
``_worker_main`` builds.
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing
import multiprocessing.connection
import signal
import socket
from dataclasses import dataclass
from typing import Sequence

from repro.core.frontend import DEFAULT_CACHE_TTL, QueryFrontend
from repro.server import CLUSTER_COUNTER_FIELDS, SpotLightServer

#: One row per worker; SpotLightServer._board_counters produces the
#: values, repro.server owns the schema.
BOARD_FIELDS = CLUSTER_COUNTER_FIELDS

DEFAULT_READY_TIMEOUT = 120.0
DEFAULT_STOP_TIMEOUT = 60.0


class StatsBoard:
    """Shared-memory per-worker counter rows.

    Lock-free by construction: each worker is the only writer of its
    row (aligned 8-byte stores), readers sum whatever totals are
    currently visible — stats are allowed to trail by a request.
    """

    def __init__(
        self, ctx: multiprocessing.context.BaseContext, workers: int
    ) -> None:
        self.workers = workers
        self._cells = ctx.Array("d", workers * len(BOARD_FIELDS), lock=False)

    def publish(self, worker_id: int, counters: dict[str, float]) -> None:
        base = worker_id * len(BOARD_FIELDS)
        for offset, field in enumerate(BOARD_FIELDS):
            # counters[field], not .get: a schema mismatch must fail
            # loudly rather than silently publish zeros.
            self._cells[base + offset] = float(counters[field])

    def row(self, worker_id: int) -> dict[str, int]:
        base = worker_id * len(BOARD_FIELDS)
        return {
            field: int(self._cells[base + offset])
            for offset, field in enumerate(BOARD_FIELDS)
        }

    def aggregate(self) -> dict[str, int]:
        totals = dict.fromkeys(BOARD_FIELDS, 0)
        for worker_id in range(self.workers):
            for field, value in self.row(worker_id).items():
                totals[field] += value
        totals["workers"] = self.workers
        return totals


@dataclass
class _WorkerSpec:
    """Everything a spawned worker needs (must stay picklable)."""

    worker_id: int
    snapshot: str
    host: str
    port: int
    rate_per_second: float
    burst: float
    cache_ttl: float
    board: StatsBoard
    ready: object  # multiprocessing Event


def _snapshot_frontend(snapshot: str, cache_ttl: float) -> QueryFrontend:
    """A frontend over a read-only snapshot (same resolution rule as
    ``python -m repro query``: prices against the full default catalog)."""
    from repro.core.datastore import SnapshotDatastore
    from repro.core.query import SpotLightQuery
    from repro.ec2.catalog import default_catalog

    datastore = SnapshotDatastore(snapshot, append_log=False, must_exist=True)
    return QueryFrontend(
        SpotLightQuery(datastore, default_catalog()), cache_ttl=cache_ttl
    )


async def _worker_serve(spec: _WorkerSpec, frontend: QueryFrontend) -> None:
    shutdown = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, shutdown.set)
    server = SpotLightServer(
        frontend,
        host=spec.host,
        port=spec.port,
        rate_per_second=spec.rate_per_second,
        burst=spec.burst,
        reuse_port=True,
        worker_id=spec.worker_id,
        stats_board=spec.board,
    )
    await server.start()
    spec.ready.set()
    await shutdown.wait()
    await server.stop()
    queries = server.stats()["endpoints"]["/query"]["requests"]
    print(
        f"worker {spec.worker_id} drained: {queries} queries, "
        f"{server.coalesced} coalesced, {server.throttled} throttled",
        flush=True,
    )


def _worker_main(spec: _WorkerSpec) -> None:
    """Entry point of one pre-forked worker process."""
    # Hold off SIGINT/SIGTERM until the event loop's graceful handlers
    # are in place (a signal racing the snapshot load should not leave
    # a half-started worker with the default die-now disposition).
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    frontend = _snapshot_frontend(spec.snapshot, spec.cache_ttl)
    frontend.prime()  # the first cold query must not pay the index build
    asyncio.run(_worker_serve(spec, frontend))


def _reserve_port(host: str, port: int) -> tuple[socket.socket, int]:
    """Bind (but never listen on) an ``SO_REUSEPORT`` placeholder.

    Resolves ``port=0`` to a concrete port no other process can take,
    without ever receiving connections itself: the kernel only
    balances across *listening* members of a reuseport group.
    """
    placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        placeholder.bind((host, port))
    except BaseException:
        placeholder.close()
        raise
    return placeholder, placeholder.getsockname()[1]


class WorkerPool:
    """``N`` pre-forked SO_REUSEPORT workers over one snapshot::

        with WorkerPool("./state", workers=4) as pool:
            client = SpotLightClient(*pool.address)
            ...

    ``start()`` returns once every worker is accepting connections;
    ``stop()`` drains them gracefully and raises if any worker exited
    uncleanly.
    """

    def __init__(
        self,
        snapshot: str,
        workers: int,
        host: str = "127.0.0.1",
        port: int = 0,
        rate_per_second: float = 500.0,
        burst: float = 1000.0,
        cache_ttl: float = DEFAULT_CACHE_TTL,
        ready_timeout: float = DEFAULT_READY_TIMEOUT,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker: {workers}")
        self.snapshot = str(snapshot)
        self.workers = workers
        self.host = host
        self.ready_timeout = ready_timeout
        ctx = multiprocessing.get_context("spawn")
        self.board = StatsBoard(ctx, workers)
        self._placeholder, self.port = _reserve_port(host, port)
        self._ready = [ctx.Event() for _ in range(workers)]
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(
                    _WorkerSpec(
                        worker_id=worker_id,
                        snapshot=self.snapshot,
                        host=host,
                        port=self.port,
                        rate_per_second=rate_per_second,
                        burst=burst,
                        cache_ttl=cache_ttl,
                        board=self.board,
                        ready=self._ready[worker_id],
                    ),
                ),
                name=f"spotlight-worker-{worker_id}",
                daemon=True,
            )
            for worker_id in range(workers)
        ]

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    @property
    def sentinels(self) -> Sequence[int]:
        """Process sentinels (for ``multiprocessing.connection.wait``)."""
        return [proc.sentinel for proc in self._procs]

    def start(self) -> "WorkerPool":
        for proc in self._procs:
            proc.start()
        for worker_id, event in enumerate(self._ready):
            remaining = self.ready_timeout
            while not event.wait(timeout=min(0.25, remaining)):
                proc = self._procs[worker_id]
                if not proc.is_alive():
                    code = proc.exitcode
                    self.terminate()
                    raise RuntimeError(
                        f"worker {worker_id} exited with code {code} before "
                        f"becoming ready (snapshot {self.snapshot!r})"
                    )
                remaining -= 0.25
                if remaining <= 0:
                    self.terminate()
                    raise RuntimeError(
                        f"worker {worker_id} not ready within "
                        f"{self.ready_timeout:.0f}s"
                    )
        return self

    def wait(self) -> None:
        """Block until any worker exits (normally only on shutdown)."""
        multiprocessing.connection.wait(self.sentinels)

    def stop(self, timeout: float = DEFAULT_STOP_TIMEOUT) -> None:
        """Graceful shutdown: SIGTERM every worker, join, verify clean
        exits.  Raises ``RuntimeError`` if a worker had to be killed or
        exited nonzero."""
        try:
            # A startup interrupt can leave part of the pool unspawned;
            # only ever-started workers can be signalled or joined.
            started = [proc for proc in self._procs if proc.pid is not None]
            for proc in started:
                if proc.is_alive():
                    proc.terminate()  # SIGTERM -> worker drains
            killed = []
            for proc in started:
                proc.join(timeout=timeout)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=5.0)
                    killed.append(proc.name)
            unclean = [
                f"{proc.name} (exit {proc.exitcode})"
                for proc in started
                if proc.exitcode != 0
            ]
            if killed or unclean:
                raise RuntimeError(
                    f"workers did not drain cleanly: "
                    f"killed={killed} unclean={unclean}"
                )
        finally:
            self._placeholder.close()

    def terminate(self) -> None:
        """Hard stop (startup-failure cleanup; no drain guarantees)."""
        for proc in self._procs:
            if proc.is_alive():
                proc.kill()
        for proc in self._procs:
            if proc.pid is not None:
                proc.join(timeout=5.0)
        self._placeholder.close()

    def aggregate(self) -> dict[str, int]:
        return self.board.aggregate()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

"""Multi-process serving: the wire tier scaled across cores.

One :class:`~repro.server.SpotLightServer` is a single asyncio event
loop — one Python process, one core.  :class:`WorkerPool` pre-forks
``N`` worker processes that each load the same read-only datastore
snapshot, build their own frontend + read index, and bind the same
``(host, port)`` with ``SO_REUSEPORT``, so the kernel spreads incoming
connections across the workers and throughput grows with cores instead
of saturating one event loop.

Pieces:

* :class:`StatsBoard` — a tiny shared-memory counter board.  Each
  worker owns one row and republishes its running totals after every
  request; any worker answering ``GET /stats`` folds all rows into a
  ``"cluster"`` aggregate, so one request sees fleet-wide traffic even
  though it landed on a single worker.  A separate **health row**,
  written by the parent's supervisor, tells every worker how many of
  its siblings are alive — which is how a ``/healthz`` answered by a
  perfectly healthy worker still reports a ``degraded`` pool.
* :func:`_worker_main` — the (spawn-safe, module-level) worker entry
  point: load snapshot, prime the read index, serve until
  SIGINT/SIGTERM, drain gracefully, report.
* :class:`WorkerPool` — the parent-side controller: reserves the port
  (a bound, never-listening ``SO_REUSEPORT`` placeholder socket held
  for the pool's lifetime, so ``port=0`` resolves race-free), spawns
  the workers, waits for readiness, forwards shutdown, and checks that
  every worker drained cleanly.

**Supervision** (on by default): a parent-side thread watches the
worker sentinels; a worker that dies — segfault, OOM kill, a chaos
plan's ``kill-worker`` — is re-spawned with capped exponential backoff
(``respawn_backoff * 2**(n-1)``, capped at ``backoff_cap``) up to
``max_respawns`` per slot.  While a slot is down the health row shows
``alive < workers`` (handlers answer ``degraded``); when a slot
exhausts its budget the pool is marked failed and :meth:`WorkerPool.wait`
returns so the caller can drain.  See RELIABILITY.md.

Workers use the ``spawn`` start method: forking a parent that already
runs threads or an event loop (pytest, benchmarks) is a deadlock
lottery, and spawn keeps the workers' state exactly what
``_worker_main`` builds.
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing
import multiprocessing.connection
import signal
import socket
import threading
from dataclasses import dataclass
from typing import Sequence

from repro.core.frontend import DEFAULT_CACHE_TTL, QueryFrontend
from repro.server import (
    CLUSTER_COUNTER_FIELDS,
    CLUSTER_GAUGE_FIELDS,
    SpotLightServer,
)

#: One row per worker; SpotLightServer._board_counters produces the
#: values, repro.server owns the schema.  The schema includes the wire
#: hot-path counters (``batch_queries``, ``not_modified``) so cluster
#: aggregates report batch and 304 traffic without a board change here.
BOARD_FIELDS = CLUSTER_COUNTER_FIELDS

#: The supervisor-written health row (see StatsBoard.set_health).
HEALTH_FIELDS = ("workers", "alive", "respawns", "failed")

DEFAULT_READY_TIMEOUT = 120.0
DEFAULT_STOP_TIMEOUT = 60.0

#: Supervision defaults: respawn budget per worker slot, and the capped
#: exponential backoff between a death and its respawn.
DEFAULT_MAX_RESPAWNS = 8
DEFAULT_RESPAWN_BACKOFF = 0.25
DEFAULT_BACKOFF_CAP = 5.0


class StatsBoard:
    """Shared-memory per-worker counter rows plus a pool health row.

    Lock-free by construction: each worker is the only writer of its
    row (aligned 8-byte stores), the supervisor is the only writer of
    the health row, readers sum whatever totals are currently visible —
    stats are allowed to trail by a request.
    """

    def __init__(
        self, ctx: multiprocessing.context.BaseContext, workers: int
    ) -> None:
        self.workers = workers
        self._cells = ctx.Array("d", workers * len(BOARD_FIELDS), lock=False)
        self._health = ctx.Array("d", len(HEALTH_FIELDS), lock=False)

    def publish(self, worker_id: int, counters: dict[str, float]) -> None:
        base = worker_id * len(BOARD_FIELDS)
        for offset, field in enumerate(BOARD_FIELDS):
            # counters[field], not .get: a schema mismatch must fail
            # loudly rather than silently publish zeros.
            self._cells[base + offset] = float(counters[field])

    def row(self, worker_id: int) -> dict[str, int]:
        base = worker_id * len(BOARD_FIELDS)
        return {
            field: int(self._cells[base + offset])
            for offset, field in enumerate(BOARD_FIELDS)
        }

    def aggregate(self) -> dict[str, int]:
        totals = dict.fromkeys(BOARD_FIELDS, 0)
        for worker_id in range(self.workers):
            for field, value in self.row(worker_id).items():
                if field in CLUSTER_GAUGE_FIELDS:
                    # Gauges (cache generation, replica lag) are
                    # point-in-time per worker: summing rows would
                    # scale them by the worker count.  Max reports the
                    # worst/newest worker, which is what an operator
                    # alerting on lag wants.
                    totals[field] = max(totals[field], value)
                else:
                    totals[field] += value
        totals["workers"] = self.workers
        return totals

    def set_health(
        self, workers: int, alive: int, respawns: int, failed: int
    ) -> None:
        for offset, value in enumerate((workers, alive, respawns, failed)):
            self._health[offset] = float(value)

    def health(self) -> dict[str, int]:
        return {
            field: int(self._health[offset])
            for offset, field in enumerate(HEALTH_FIELDS)
        }


@dataclass
class _WorkerSpec:
    """Everything a spawned worker needs (must stay picklable)."""

    worker_id: int
    snapshot: str
    host: str
    port: int
    rate_per_second: float
    burst: float
    cache_ttl: float
    follow: bool
    max_lag: int
    poll_interval: float
    board: StatsBoard
    ready: object  # multiprocessing Event


def _snapshot_frontend(snapshot: str, cache_ttl: float):
    """``(frontend, datastore)`` over a read-only snapshot (same
    resolution rule as ``python -m repro query``: prices against the
    full default catalog)."""
    from repro.core.datastore import SnapshotDatastore
    from repro.core.query import SpotLightQuery
    from repro.ec2.catalog import default_catalog

    datastore = SnapshotDatastore(snapshot, append_log=False, must_exist=True)
    frontend = QueryFrontend(
        SpotLightQuery(datastore, default_catalog()), cache_ttl=cache_ttl
    )
    return frontend, datastore


async def _worker_serve(
    spec: _WorkerSpec, frontend: QueryFrontend, replica: "object | None" = None
) -> None:
    shutdown = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, shutdown.set)
    server = SpotLightServer(
        frontend,
        host=spec.host,
        port=spec.port,
        rate_per_second=spec.rate_per_second,
        burst=spec.burst,
        reuse_port=True,
        worker_id=spec.worker_id,
        stats_board=spec.board,
        replica=replica,
        frontend_lock=replica.lock if replica is not None else None,
    )
    shard_count = getattr(spec, "shard_count", 0)
    if shard_count:
        # Shard workers stamp the shard-map epoch (which defaults to
        # the shard count) on every response, so a direct-routing
        # client can detect a topology change without a round trip
        # through the router.
        server._extra_headers = (
            f"X-Shard-Epoch: {shard_count}\r\n".encode("latin-1")
        )
    await server.start()
    if replica is not None:
        replica.start()
    spec.ready.set()
    await shutdown.wait()
    await server.stop()
    if replica is not None:
        replica.stop()
    queries = server.stats()["endpoints"]["/query"]["requests"]
    print(
        f"worker {spec.worker_id} drained: {queries} queries, "
        f"{server.coalesced} coalesced, {server.throttled} throttled",
        flush=True,
    )


def _worker_main(spec: _WorkerSpec) -> None:
    """Entry point of one pre-forked worker process."""
    # Hold off SIGINT/SIGTERM until the event loop's graceful handlers
    # are in place (a signal racing the snapshot load should not leave
    # a half-started worker with the default die-now disposition).
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    frontend, datastore = _snapshot_frontend(spec.snapshot, spec.cache_ttl)
    frontend.prime()  # the first cold query must not pay the index build
    replica = None
    if spec.follow:
        from repro.ec2.catalog import default_catalog
        from repro.replication import ReplicaTailer

        replica = ReplicaTailer(
            datastore,
            frontend,
            catalog=default_catalog(),
            max_lag=spec.max_lag,
            poll_interval=spec.poll_interval,
        )
    asyncio.run(_worker_serve(spec, frontend, replica))


@dataclass
class _ShardSpec(_WorkerSpec):
    """A worker spec plus the shard topology: the worker id doubles as
    the shard index into ``ShardMap(shard_count)``."""

    shard_count: int = 1


def _shard_worker_main(spec: _ShardSpec) -> None:
    """Entry point of one shard worker: load the snapshot *filtered* to
    this shard's slice of the catalog, prime a read index over only
    those markets, and serve on the shard's own port."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    import time

    from repro.core.datastore import SnapshotDatastore
    from repro.core.query import SpotLightQuery
    from repro.core.shard import ShardMap
    from repro.ec2.catalog import default_catalog

    shard_map = ShardMap(spec.shard_count)
    datastore = SnapshotDatastore(
        spec.snapshot,
        append_log=False,
        must_exist=True,
        market_filter=shard_map.filter(spec.worker_id),
    )
    frontend = QueryFrontend(
        SpotLightQuery(datastore, default_catalog()), cache_ttl=spec.cache_ttl
    )
    started = time.perf_counter()
    frontend.prime()
    print(
        f"shard {spec.worker_id}/{spec.shard_count} primed "
        f"{len(datastore.markets)} markets in "
        f"{time.perf_counter() - started:.3f}s",
        flush=True,
    )
    asyncio.run(_worker_serve(spec, frontend))


def _reserve_port(host: str, port: int) -> tuple[socket.socket, int]:
    """Bind (but never listen on) an ``SO_REUSEPORT`` placeholder.

    Resolves ``port=0`` to a concrete port no other process can take,
    without ever receiving connections itself: the kernel only
    balances across *listening* members of a reuseport group.
    """
    placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        placeholder.bind((host, port))
    except BaseException:
        placeholder.close()
        raise
    return placeholder, placeholder.getsockname()[1]


class WorkerPool:
    """``N`` pre-forked SO_REUSEPORT workers over one snapshot::

        with WorkerPool("./state", workers=4) as pool:
            client = SpotLightClient(*pool.address)
            ...

    ``start()`` returns once every worker is accepting connections;
    ``stop()`` drains them gracefully, returns a drain summary, and
    raises if a worker that was alive at stop time had to be killed or
    exited nonzero.  With ``supervise`` (the default) dead workers are
    re-spawned with capped exponential backoff until ``max_respawns``.
    """

    def __init__(
        self,
        snapshot: str,
        workers: int,
        host: str = "127.0.0.1",
        port: int = 0,
        rate_per_second: float = 500.0,
        burst: float = 1000.0,
        cache_ttl: float = DEFAULT_CACHE_TTL,
        follow: bool = False,
        max_lag: int = 512,
        poll_interval: float = 0.2,
        ready_timeout: float = DEFAULT_READY_TIMEOUT,
        supervise: bool = True,
        max_respawns: int = DEFAULT_MAX_RESPAWNS,
        respawn_backoff: float = DEFAULT_RESPAWN_BACKOFF,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker: {workers}")
        self.snapshot = str(snapshot)
        self.workers = workers
        self.host = host
        self.ready_timeout = ready_timeout
        self.supervise = supervise
        self.max_respawns = max_respawns
        self.respawn_backoff = respawn_backoff
        self.backoff_cap = backoff_cap
        self._ctx = multiprocessing.get_context("spawn")
        self._spec = dict(
            rate_per_second=rate_per_second,
            burst=burst,
            cache_ttl=cache_ttl,
            follow=follow,
            max_lag=max_lag,
            poll_interval=poll_interval,
        )
        self.board = StatsBoard(self._ctx, workers)
        self._placeholder, self.port = _reserve_port(host, port)
        self.respawns = 0
        #: (worker_id, exitcode) of every unexpected worker death.
        self.exit_history: list[tuple[int, int | None]] = []
        self.drain_summary: dict[str, object] | None = None
        self._respawn_counts = [0] * workers
        self._recorded_exits: set[int] = set()  # id(proc) already logged
        self._no_respawn: set[int] = set()  # slots chaos wants left dead
        self._stopping = threading.Event()
        self._failed = threading.Event()
        self._supervisor: threading.Thread | None = None
        self._procs: list[multiprocessing.process.BaseProcess] = []
        self._ready: list[object] = []
        for worker_id in range(workers):
            proc, ready = self._make_proc(worker_id)
            self._procs.append(proc)
            self._ready.append(ready)

    def _make_proc(self, worker_id: int):
        ready = self._ctx.Event()
        spec = _WorkerSpec(
            worker_id=worker_id,
            snapshot=self.snapshot,
            host=self.host,
            port=self.port,
            board=self.board,
            ready=ready,
            **self._spec,
        )
        proc = self._ctx.Process(
            target=_worker_main,
            args=(spec,),
            name=f"spotlight-worker-{worker_id}",
            daemon=True,
        )
        return proc, ready

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    @property
    def sentinels(self) -> Sequence[int]:
        """Process sentinels (for ``multiprocessing.connection.wait``)."""
        return [proc.sentinel for proc in self._procs]

    @property
    def failed(self) -> bool:
        """True once a worker slot exhausted its respawn budget."""
        return self._failed.is_set()

    def worker_pids(self) -> dict[int, int]:
        """Live workers: ``{worker_id: pid}`` (chaos harness target)."""
        return {
            worker_id: proc.pid
            for worker_id, proc in enumerate(self._procs)
            if proc.is_alive() and proc.pid is not None
        }

    def alive_workers(self) -> int:
        return sum(1 for proc in self._procs if proc.is_alive())

    def disable_respawn(self, worker_id: int) -> None:
        """Leave this slot dead when it exits (chaos ``kill-shard``):
        the supervisor records the death and publishes degraded health
        but neither respawns the slot nor marks the pool failed."""
        self._no_respawn.add(worker_id)

    def start(self) -> "WorkerPool":
        for proc in self._procs:
            proc.start()
        for worker_id, event in enumerate(self._ready):
            remaining = self.ready_timeout
            while not event.wait(timeout=min(0.25, remaining)):
                proc = self._procs[worker_id]
                if not proc.is_alive():
                    code = proc.exitcode
                    self.terminate()
                    raise RuntimeError(
                        f"worker {worker_id} exited with code {code} before "
                        f"becoming ready (snapshot {self.snapshot!r})"
                    )
                remaining -= 0.25
                if remaining <= 0:
                    self.terminate()
                    raise RuntimeError(
                        f"worker {worker_id} not ready within "
                        f"{self.ready_timeout:.0f}s"
                    )
        self._publish_health()
        if self.supervise:
            self._supervisor = threading.Thread(
                target=self._supervise, name="spotlight-supervisor",
                daemon=True,
            )
            self._supervisor.start()
        return self

    # -- supervision --------------------------------------------------------
    def _publish_health(self) -> None:
        self.board.set_health(
            workers=self.workers,
            alive=self.alive_workers(),
            respawns=self.respawns,
            failed=1 if self._failed.is_set() else 0,
        )

    def _record_exit(self, worker_id: int, proc) -> None:
        if id(proc) not in self._recorded_exits:
            self._recorded_exits.add(id(proc))
            self.exit_history.append((worker_id, proc.exitcode))

    def _supervise(self) -> None:
        """Detect dead workers; re-spawn with capped exponential
        backoff; give up (and release :meth:`wait`) once a slot
        exhausts ``max_respawns``."""
        try:
            while not self._stopping.is_set():
                for worker_id, proc in enumerate(self._procs):
                    if proc.is_alive() or self._stopping.is_set():
                        continue
                    proc.join(timeout=1.0)
                    self._record_exit(worker_id, proc)
                    self._publish_health()
                    if worker_id in self._no_respawn:
                        continue  # deliberately dead (chaos kill-shard)
                    self._respawn_counts[worker_id] += 1
                    count = self._respawn_counts[worker_id]
                    if count > self.max_respawns:
                        print(
                            f"worker {worker_id} exhausted its respawn "
                            f"budget ({self.max_respawns}); pool failed",
                            flush=True,
                        )
                        # Publish the failed health row *before* the
                        # event releases wait()ing callers, so they
                        # never observe a healthy-looking board.
                        self.board.set_health(
                            workers=self.workers,
                            alive=self.alive_workers(),
                            respawns=self.respawns,
                            failed=1,
                        )
                        self._failed.set()
                        return
                    delay = min(
                        self.backoff_cap,
                        self.respawn_backoff * (2.0 ** (count - 1)),
                    )
                    print(
                        f"worker {worker_id} exited with code "
                        f"{proc.exitcode}; respawning in {delay:.2f}s "
                        f"(attempt {count}/{self.max_respawns})",
                        flush=True,
                    )
                    if self._stopping.wait(delay):
                        return
                    replacement, ready = self._make_proc(worker_id)
                    self._procs[worker_id] = replacement
                    self._ready[worker_id] = ready
                    replacement.start()
                    self.respawns += 1
                    self._publish_health()
                    while not ready.wait(timeout=0.25):
                        if (
                            self._stopping.is_set()
                            or not replacement.is_alive()
                        ):
                            break  # death-before-ready: next sweep sees it
                    if ready.is_set():
                        print(
                            f"respawned worker {worker_id} "
                            f"(pid {replacement.pid})",
                            flush=True,
                        )
                    self._publish_health()
                live = [p.sentinel for p in self._procs if p.is_alive()]
                if live:
                    multiprocessing.connection.wait(live, timeout=0.5)
        except Exception as exc:  # pragma: no cover - defensive
            print(f"supervisor crashed: {type(exc).__name__}: {exc}",
                  flush=True)
            self._failed.set()
            self._publish_health()
            raise

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the pool permanently fails (supervised) or any
        worker exits (unsupervised).  Returns :attr:`failed`.

        Never hangs on workers that are *already* dead: their sentinels
        are skipped, and an all-dead unsupervised pool returns
        immediately.
        """
        if self._supervisor is not None:
            self._failed.wait(timeout)
            return self.failed
        live = [proc.sentinel for proc in self._procs if proc.is_alive()]
        if live:
            multiprocessing.connection.wait(live, timeout=timeout)
        return self.failed

    def stop(self, timeout: float = DEFAULT_STOP_TIMEOUT) -> dict[str, object]:
        """Graceful shutdown: stop supervising, SIGTERM every live
        worker, join, verify clean drains.

        Returns a drain summary (exit codes per slot, respawn totals,
        the full unexpected-exit history).  Raises ``RuntimeError`` if
        a worker that was alive at stop time had to be killed or exited
        nonzero; workers that were already dead are reported in the
        summary, not raised — their deaths were either supervised
        (and respawned) or the very reason the caller is stopping.
        """
        self._stopping.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=10.0)
        try:
            # A startup interrupt can leave part of the pool unspawned;
            # only ever-started workers can be signalled or joined.
            started = [proc for proc in self._procs if proc.pid is not None]
            draining = [proc for proc in started if proc.is_alive()]
            for proc in draining:
                proc.terminate()  # SIGTERM -> worker drains
            killed = []
            for proc in draining:
                proc.join(timeout=timeout)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=5.0)
                    killed.append(proc.name)
            for worker_id, proc in enumerate(self._procs):
                if proc in started and not proc.is_alive():
                    # Pre-dead workers land in the history too (their
                    # exit codes belong in the drain summary).
                    if proc not in draining:
                        self._record_exit(worker_id, proc)
            unclean = [
                f"{proc.name} (exit {proc.exitcode})"
                for proc in draining
                if proc.exitcode != 0
            ]
            self.drain_summary = {
                "workers": self.workers,
                "respawns": self.respawns,
                "failed": self.failed,
                "exit_codes": {
                    proc.name: proc.exitcode for proc in started
                },
                "unexpected_exits": list(self.exit_history),
                "killed": killed,
                "unclean": unclean,
            }
            if killed or unclean:
                raise RuntimeError(
                    f"workers did not drain cleanly: "
                    f"killed={killed} unclean={unclean}"
                )
            return self.drain_summary
        finally:
            self._publish_health()
            self._placeholder.close()

    def terminate(self) -> None:
        """Hard stop (startup-failure cleanup; no drain guarantees)."""
        self._stopping.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.kill()
        for proc in self._procs:
            if proc.pid is not None:
                proc.join(timeout=5.0)
        self._placeholder.close()

    def aggregate(self) -> dict[str, int]:
        return self.board.aggregate()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class ShardCluster(WorkerPool):
    """``N`` shard workers, each serving one :class:`~repro.core.shard.ShardMap`
    slice of the snapshot on its *own* port (a router tier scatters
    across them — unlike :class:`WorkerPool` the shards are not
    interchangeable, so SO_REUSEPORT load-spreading across one port
    would route queries to workers that do not own the data).

    Supervision is inherited: a dead shard is respawned on its original
    port (each port is held by a bound ``SO_REUSEPORT`` placeholder for
    the cluster's lifetime, so the respawn rebinds race-free) unless
    :meth:`disable_respawn` marked the slot as deliberately dead.

    Shards run with effectively unlimited admission by default — the
    router in front enforces per-client rate limits, and every shard
    request arrives from the router's address, which a per-client
    bucket would throttle as a single hot client.
    """

    def __init__(
        self,
        snapshot: str,
        shards: int,
        host: str = "127.0.0.1",
        cache_ttl: float = DEFAULT_CACHE_TTL,
        rate_per_second: float = 1e9,
        burst: float = 1e9,
        ready_timeout: float = DEFAULT_READY_TIMEOUT,
        supervise: bool = True,
        max_respawns: int = DEFAULT_MAX_RESPAWNS,
        respawn_backoff: float = DEFAULT_RESPAWN_BACKOFF,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard: {shards}")
        self.shard_count = shards
        self._shard_placeholders: list[socket.socket] = []
        self.shard_ports: list[int] = []
        try:
            for _ in range(shards):
                placeholder, port = _reserve_port(host, 0)
                self._shard_placeholders.append(placeholder)
                self.shard_ports.append(port)
        except BaseException:
            self._close_shard_placeholders()
            raise
        # port=0 reserves the base-class placeholder too; unused, but
        # keeps the base lifecycle (stop/terminate close it) intact.
        super().__init__(
            snapshot,
            workers=shards,
            host=host,
            port=0,
            rate_per_second=rate_per_second,
            burst=burst,
            cache_ttl=cache_ttl,
            follow=False,
            ready_timeout=ready_timeout,
            supervise=supervise,
            max_respawns=max_respawns,
            respawn_backoff=respawn_backoff,
            backoff_cap=backoff_cap,
        )

    def _make_proc(self, worker_id: int):
        # During super().__init__ the shard ports are already reserved;
        # each slot (and its respawns) binds its own fixed port.
        ready = self._ctx.Event()
        spec = _ShardSpec(
            worker_id=worker_id,
            snapshot=self.snapshot,
            host=self.host,
            port=self.shard_ports[worker_id],
            board=self.board,
            ready=ready,
            shard_count=self.shard_count,
            **self._spec,
        )
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(spec,),
            name=f"spotlight-shard-{worker_id}",
            daemon=True,
        )
        return proc, ready

    @property
    def shard_addresses(self) -> list[tuple[str, int]]:
        """One ``(host, port)`` per shard, indexed by shard id."""
        return [(self.host, port) for port in self.shard_ports]

    def _close_shard_placeholders(self) -> None:
        while self._shard_placeholders:
            self._shard_placeholders.pop().close()

    def stop(self, timeout: float = DEFAULT_STOP_TIMEOUT) -> dict[str, object]:
        try:
            return super().stop(timeout)
        finally:
            self._close_shard_placeholders()

    def terminate(self) -> None:
        try:
            super().terminate()
        finally:
            self._close_shard_placeholders()

"""Live replication: one recorder's WAL, tailed by replica servers.

The paper's questions are about *now* — spike risk, revocation odds,
availability — so the serving tier cannot stop at frozen snapshots.
This module turns a :class:`~repro.core.datastore.SnapshotDatastore`
directory into a single-writer / many-reader replication channel with
exactly the crash-safety the format-2 layout already guarantees:

* :class:`Recorder` owns the write side.  It appends increments through
  the normal WAL path and periodically *commits*: WAL fsync, then an
  atomic replace of a ``watermark.json`` sidecar naming how many
  complete rows of the live generation are durable (plus a cumulative
  ``seq``).  Because rows are fsync'd strictly before the watermark
  that names them, a reader that trusts the watermark can never read a
  row that a crash might take back.
* :class:`ReplicaTailer` owns a read side.  It polls the watermark and
  tails the WAL files with per-row CRC32 validation via
  :class:`WalCursor`, applying only rows at or below the committed
  counts.  A torn or garbled tail is "not yet written": the cursor
  holds position (bounded retry with backoff, never a crash) until the
  writer finishes the record or trims the tail on restart.  Applied
  rows flow through the read index's per-market invalidation, so warm
  query views for untouched markets stay warm.
* WAL **generation rollover** (the recorder's ``save()``) is announced
  in the watermark's ``previous`` block: a lagging tailer drains the
  retired generation's WAL — retained on disk until the *next* save —
  to its final row count, then switches cursors to the new generation.
  A tailer more than one generation behind reloads from the live
  snapshot instead (``resync``).
* :class:`ChangeFeed` is a bounded ring of replication events (price
  spikes, revocations, availability transitions) with dense sequence
  numbers, backing the server's ``GET /watch`` chunked change feed and
  its resumable ``since_seq`` cursor.

Staleness is a first-class measurement: ``ReplicaTailer.health()``
reports ``applied_seq`` vs the recorder's ``committed_seq`` and flips
``stale`` past a configurable lag bound, which the serving tier
surfaces through ``/stats`` and degrades ``/healthz`` on.

Format note: WAL rows never contain embedded newlines (market ids,
enums, and numbers only), so the tailer may frame rows by ``\\n`` and
let the CRC column arbitrate torn or garbled lines.
"""

from __future__ import annotations

import csv
import json
import os
import threading
import time
from collections import deque
from dataclasses import replace
from pathlib import Path

from repro.core.database import parse_price_csv_row
from repro.core.datastore import SnapshotDatastore, _fsync_path, _row_crc
from repro.core.records import PriceRecord, ProbeRecord, ProbeTrigger

WATERMARK_FILE = "watermark.json"

#: Upper bound on bytes a single cursor poll will frame (keeps one
#: slow poll from buffering an arbitrarily large backlog at once; the
#: next poll simply continues from the advanced offset).
_MAX_POLL_BYTES = 4 << 20


# -- the committed watermark ------------------------------------------------
def read_watermark(root: str | Path) -> dict | None:
    """The recorder's committed watermark, or ``None`` when missing or
    unreadable (a torn sidecar cannot happen — it is written with the
    same tmp-fsync-replace dance as the manifest — but a reader must
    still survive finding garbage)."""
    path = Path(root) / WATERMARK_FILE
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(data, dict):
        return None
    try:
        return {
            "generation": int(data["generation"]),
            "probe_rows": int(data["probe_rows"]),
            "price_rows": int(data["price_rows"]),
            "seq": int(data["seq"]),
            "previous": data.get("previous"),
        }
    except (KeyError, TypeError, ValueError):
        return None


def write_watermark(
    root: str | Path,
    *,
    generation: int,
    probe_rows: int,
    price_rows: int,
    seq: int,
    previous: dict | None = None,
) -> None:
    """Atomically publish a committed watermark (tmp + fsync + replace
    + directory fsync, the snapshot manifest's own commit discipline)."""
    root = Path(root)
    payload = {
        "generation": generation,
        "probe_rows": probe_rows,
        "price_rows": price_rows,
        "seq": seq,
        "previous": previous,
    }
    tmp = root / (WATERMARK_FILE + ".tmp")
    with tmp.open("w") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(root / WATERMARK_FILE)
    _fsync_path(root)


# -- the change feed ---------------------------------------------------------
class ChangeFeed:
    """A bounded ring of replication events with dense sequence numbers.

    Sequence numbers start at 1 and never skip, so a ``/watch``
    subscriber can prove exactly-once delivery by checking density.
    The ring is per-replica-process: a replica restart resets it, which
    is why resumability is *bounded* — a subscriber whose cursor fell
    off the ring gets an explicit gap marker, never silent loss.
    """

    def __init__(self, capacity: int = 8192) -> None:
        self._events: deque[dict] = deque(maxlen=max(int(capacity), 1))
        self._lock = threading.Lock()
        self._next_seq = 1
        self.published = 0
        self.dropped = 0

    def publish(self, event: dict) -> dict:
        with self._lock:
            event = {**event, "seq": self._next_seq}
            self._next_seq += 1
            if len(self._events) == self._events.maxlen:
                self.dropped += 1
            self._events.append(event)
            self.published += 1
        return event

    @property
    def latest_seq(self) -> int:
        return self._next_seq - 1

    @property
    def oldest_seq(self) -> int:
        """Oldest retained seq (``latest_seq + 1`` when empty)."""
        with self._lock:
            return self._events[0]["seq"] if self._events else self._next_seq

    def since(self, cursor: int, limit: int = 256) -> tuple[list[dict], bool]:
        """``(events, gap)``: events with ``seq > cursor`` (up to
        ``limit``), and whether the ring has already dropped events the
        cursor never saw."""
        with self._lock:
            if not self._events:
                return [], False
            gap = cursor + 1 < self._events[0]["seq"]
            out = [e for e in self._events if e["seq"] > cursor]
        return out[:limit], gap

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "latest_seq": self._next_seq - 1,
                "retained": len(self._events),
                "published": self.published,
                "dropped": self.dropped,
            }


# -- tailing a WAL file ------------------------------------------------------
class WalCursor:
    """Incrementally read complete, CRC-verified rows from a live WAL.

    The cursor never trusts anything past the first incomplete or
    garbled line: on the write side that is a record mid-append or a
    torn tail the recorder will trim — "not yet written", not an error
    — so it stops there *without advancing* and reports the rows it
    could verify.  The file is re-opened on every poll, which makes a
    writer-side trim (an atomic tmp+replace that changes the inode)
    transparent: verified rows keep their byte offsets, so the cursor's
    position stays valid across the swap.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.rows = 0       # verified rows consumed so far
        self.offset = 0     # byte offset just past the last verified row
        self.fields: list[str] | None = None
        self.has_crc = False
        self.holds = 0      # polls that stopped at an unverifiable tail
        self.rescans = 0    # realignments after the file shrank

    def read(self, max_rows: int, collect: bool = True) -> list[dict]:
        """Up to ``max_rows`` verified rows as field dicts (empty when
        nothing new is durable yet).  ``collect=False`` advances the
        cursor without materialising rows — used to align past rows a
        snapshot load already applied."""
        if max_rows <= 0:
            return []
        try:
            size = self.path.stat().st_size
        except OSError:
            return []
        if size < self.offset:
            # The file shrank below a position we already verified — a
            # rewrite this cursor cannot reconcile row-by-row.  Realign
            # from the top, skipping the rows already consumed.
            target = self.rows
            self.fields = None
            self.offset = 0
            self.rows = 0
            self.rescans += 1
            if target:
                self._scan(target, collect=False)
        return self._scan(max_rows, collect)

    def _scan(self, max_rows: int, collect: bool) -> list[dict]:
        out: list[dict] = []
        try:
            handle = self.path.open("rb")
        except OSError:
            return out
        with handle:
            if self.fields is None:
                head = handle.readline()
                if not head.endswith(b"\n"):
                    return out  # header itself not fully written yet
                text = head.decode("utf-8", errors="replace").rstrip("\r\n")
                header = next(csv.reader([text]), None)
                if not header:
                    return out
                self.has_crc = header[-1:] == ["crc"]
                self.fields = header[:-1] if self.has_crc else header
                self.offset = handle.tell()
            else:
                handle.seek(self.offset)
            data = handle.read(_MAX_POLL_BYTES)
        expected = len(self.fields) + (1 if self.has_crc else 0)
        taken = 0
        pos = 0
        while taken < max_rows:
            newline = data.find(b"\n", pos)
            if newline < 0:
                break  # incomplete trailing line — not yet written
            text = (
                data[pos:newline].rstrip(b"\r").decode("utf-8", errors="replace")
            )
            row = next(csv.reader([text]), None)
            ok = row is not None and len(row) == expected
            if ok and self.has_crc:
                try:
                    ok = int(row[-1]) == _row_crc(row[:-1])
                except ValueError:
                    ok = False
            if not ok:
                # Torn or garbled: CSV framing past this point cannot
                # be trusted.  Hold position; the writer will finish
                # the record or trim the tail on its next recovery.
                self.holds += 1
                break
            self.offset += newline + 1 - pos
            pos = newline + 1
            self.rows += 1
            taken += 1
            if collect:
                out.append(
                    dict(zip(self.fields, row[:-1] if self.has_crc else row))
                )
        return out


def _wal_path(root: Path, kind: str, generation: int) -> Path:
    return root / f"{kind}.wal.{generation}.csv"


def _count_wal_rows(root: Path, kind: str, generation: int) -> int:
    """Verified rows in a (closed) WAL file — the final row count of a
    retired generation, used when resuming after a crash lost the
    watermark that would have recorded it."""
    cursor = WalCursor(_wal_path(root, kind, generation))
    while cursor.read(65536, collect=False):
        pass
    return cursor.rows


# -- the write side ----------------------------------------------------------
class Recorder:
    """The single writer of a replicated snapshot directory.

    Wraps a :class:`SnapshotDatastore` opened with ``append_log=True``
    and adds the commit protocol replicas rely on:

    * :meth:`commit` — fsync the WALs, then atomically publish the
      watermark naming the durable row counts (rows first, watermark
      second: the watermark can never run ahead of the data).
    * :meth:`save` — roll the WAL generation via the datastore's
      snapshot machinery, then publish a watermark whose ``previous``
      block tells tailers where the retired WAL ends.
    * :meth:`bootstrap` — first-run setup: an initial ``save()`` so
      follower replicas (which require a manifest) can open the
      directory; on a resumed directory it re-commits instead, which
      also promotes any rows the crash recovery verified beyond the
      last watermark.
    """

    def __init__(
        self,
        store: SnapshotDatastore,
        fault_injector: "object | None" = None,
    ) -> None:
        if not getattr(store, "_append_log", False):
            raise ValueError(
                "Recorder needs a datastore opened with append_log=True"
            )
        self.store = store
        self._faults = (
            fault_injector
            if fault_injector is not None
            else getattr(store, "_faults", None)
        )
        self.commits = 0
        self.saves = 0
        self._previous: dict | None = None
        self._seq_base = 0
        watermark = read_watermark(store.root)
        if watermark is not None:
            if watermark["generation"] == store.generation:
                self._seq_base = (
                    watermark["seq"]
                    - watermark["probe_rows"]
                    - watermark["price_rows"]
                )
                self._previous = watermark.get("previous")
            else:
                # The watermark names a retired generation: a crash hit
                # between save()'s manifest commit and the fresh
                # watermark.  Everything it committed is in the live
                # snapshot; re-announce the retired WAL's *actual*
                # final row counts so a mid-rollover tailer can still
                # drain it completely.
                self._seq_base = watermark["seq"]
                root = Path(store.root)
                self._previous = {
                    "generation": watermark["generation"],
                    "probe_rows": _count_wal_rows(
                        root, "probes", watermark["generation"]
                    ),
                    "price_rows": _count_wal_rows(
                        root, "prices", watermark["generation"]
                    ),
                }
        self.committed: dict | None = watermark

    @property
    def committed_seq(self) -> int:
        return int(self.committed["seq"]) if self.committed else 0

    def bootstrap(self) -> dict:
        if not (Path(self.store.root) / "manifest.json").exists():
            return self.save()
        return self.commit()

    def commit(self) -> dict:
        """Make every appended row durable, then publish the watermark."""
        if self._faults is not None:
            self._faults.fire("replication.commit")
        self.store.flush()
        counts = self.store.wal_row_counts
        watermark = {
            "generation": self.store.generation,
            "probe_rows": counts["probes"],
            "price_rows": counts["prices"],
            "seq": self._seq_base + counts["probes"] + counts["prices"],
            "previous": self._previous,
        }
        write_watermark(self.store.root, **watermark)
        self.commits += 1
        self.committed = watermark
        return watermark

    def save(self) -> dict:
        """Snapshot + WAL generation rollover, announced to tailers.

        The datastore's ``save()`` fsyncs and retires the live WALs
        before its manifest commit, so the retired generation's final
        row counts — captured here and published in the new watermark's
        ``previous`` block — are durable by the time any tailer can
        observe the rollover.
        """
        retired_generation = self.store.generation
        retired = self.store.wal_row_counts
        self.store.save()
        self._seq_base += retired["probes"] + retired["prices"]
        self._previous = {
            "generation": retired_generation,
            "probe_rows": retired["probes"],
            "price_rows": retired["prices"],
        }
        self.saves += 1
        return self.commit()


class TimeShiftedDatastore:
    """Delegating datastore wrapper that shifts record times forward by
    a fixed offset — how ``record --resume`` keeps per-market time
    order when the fresh simulator's clock restarts at zero over a
    directory that already holds earlier observations."""

    def __init__(self, store: SnapshotDatastore, offset: float) -> None:
        self._store = store
        self.offset = float(offset)

    def insert_probe(self, record: ProbeRecord) -> None:
        self._store.insert_probe(
            replace(record, time=record.time + self.offset)
        )

    def insert_price(self, record: PriceRecord) -> None:
        self._store.insert_price(
            PriceRecord(record.time + self.offset, record.market, record.price)
        )

    def __len__(self) -> int:
        return len(self._store)

    def __getattr__(self, name: str):
        return getattr(self._store, name)


def latest_record_time(store) -> float:
    """The largest observation timestamp anywhere in a store (0.0 when
    empty) — the base for a resume offset."""
    latest = 0.0
    for market in store.markets:
        times, _prices = store.price_arrays(market)
        if len(times):
            latest = max(latest, float(times[-1]))
        probes = store.probes(market)
        if probes:
            latest = max(latest, max(p.time for p in probes))
    return latest


# -- the read side -----------------------------------------------------------
class ReplicaTailer:
    """Follow a recorder's directory, applying committed rows live.

    Owns a read-only :class:`SnapshotDatastore` (``append_log=False``)
    over the same directory the recorder writes, plus a pair of
    :class:`WalCursor` tails.  Each :meth:`step` reads the watermark
    and applies WAL rows *up to the committed counts only* — rows
    beyond the watermark are invisible until the recorder commits, so
    a recorder crash can never make the replica apply something the
    restart might trim.  Inserts run under :attr:`lock` (share it with
    the serving tier as its frontend lock) and go through the store's
    normal insert path, so the read index invalidates only the touched
    markets and the query cache generation bumps once per batch.

    Never raises from the tailing loop: torn tails hold position, a
    vanished file is retried, rollover drains the retired WAL, and a
    tailer left more than one generation behind resyncs from the live
    snapshot.
    """

    def __init__(
        self,
        store: SnapshotDatastore,
        frontend: "object | None" = None,
        *,
        catalog: "object | None" = None,
        threshold_multiple: float = 1.0,
        max_lag: int = 512,
        poll_interval: float = 0.2,
        max_poll_interval: float = 2.0,
        batch_rows: int = 4096,
        feed_capacity: int = 8192,
        lock: "threading.Lock | None" = None,
    ) -> None:
        if getattr(store, "_append_log", True):
            raise ValueError(
                "ReplicaTailer needs a datastore opened with "
                "append_log=False (a tailer must never write the WAL "
                "it follows)"
            )
        self.store = store
        self.frontend = frontend
        self.root = Path(store.root)
        self.catalog = catalog
        self.threshold_multiple = float(threshold_multiple)
        self.max_lag = int(max_lag)
        self.poll_interval = float(poll_interval)
        self.max_poll_interval = float(max_poll_interval)
        self.batch_rows = int(batch_rows)
        self.lock = lock if lock is not None else threading.Lock()
        self.feed = ChangeFeed(feed_capacity)
        self.applied_rows = 0
        self.applied_probes = 0
        self.applied_prices = 0
        self.apply_errors = 0
        self.invalidations = 0
        self.steps = 0
        self.rollovers = 0
        self.resyncs = 0
        self.loop_errors = 0
        self.last_applied_at = 0.0
        self._committed = read_watermark(self.root)
        self._generation = store.generation
        self._od: dict = {}
        self._avail: dict = {}
        self._above: dict = {}
        self._cursors = self._fresh_cursors(store.generation)
        counts = store.wal_row_counts
        for kind, cursor in self._cursors.items():
            cursor.read(counts[kind], collect=False)
        self._seed_baselines()
        self._stop = threading.Event()
        self._paused = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def generation(self) -> int:
        return self._generation

    def _fresh_cursors(self, generation: int) -> dict[str, WalCursor]:
        return {
            kind: WalCursor(_wal_path(self.root, kind, generation))
            for kind in ("probes", "prices")
        }

    # -- one tailing poll ----------------------------------------------------
    def step(self) -> int:
        """Apply whatever the recorder has committed since the last
        poll; returns rows applied (0 = nothing new, or holding at a
        torn tail)."""
        self.steps += 1
        watermark = read_watermark(self.root)
        if watermark is None:
            return 0
        applied = 0
        if watermark["generation"] != self._generation:
            applied += self._handle_rollover(watermark)
        if watermark["generation"] == self._generation:
            self._committed = watermark
            applied += self._drain(
                {
                    "probes": watermark["probe_rows"],
                    "prices": watermark["price_rows"],
                }
            )
        if applied:
            self._after_apply()
        return applied

    def _drain(self, targets: dict[str, int]) -> int:
        applied = 0
        for kind, cursor in self._cursors.items():
            need = targets.get(kind, 0) - cursor.rows
            while need > 0:
                rows = cursor.read(min(need, self.batch_rows))
                if not rows:
                    break  # torn or not-yet-durable tail: hold position
                self._apply(kind, rows)
                applied += len(rows)
                need -= len(rows)
        return applied

    def _handle_rollover(self, watermark: dict) -> int:
        if watermark["generation"] < self._generation:
            return 0  # a stale watermark (recorder mid-restart): ignore
        previous = watermark.get("previous") or {}
        try:
            prev_generation = int(previous.get("generation", -1))
        except (TypeError, ValueError):
            prev_generation = -1
        if prev_generation != self._generation:
            # More than one generation behind — the WAL we were tailing
            # may already be swept.  Rebuild from the live snapshot.
            self._resync()
            return 0
        targets = {
            "probes": int(previous.get("probe_rows", 0)),
            "prices": int(previous.get("price_rows", 0)),
        }
        applied = self._drain(targets)
        if all(
            self._cursors[kind].rows >= targets[kind] for kind in targets
        ):
            self._generation = watermark["generation"]
            self._cursors = self._fresh_cursors(self._generation)
            self.rollovers += 1
        return applied

    def _resync(self) -> None:
        fresh = SnapshotDatastore(self.root, append_log=False, must_exist=True)
        with self.lock:
            engine = getattr(self.frontend, "engine", None)
            if engine is not None and hasattr(engine, "rebind"):
                engine.rebind(fresh)
            self.store = fresh
            if self.frontend is not None:
                self.frontend.invalidate()
        self._generation = fresh.generation
        self._cursors = self._fresh_cursors(self._generation)
        counts = fresh.wal_row_counts
        for kind, cursor in self._cursors.items():
            cursor.read(counts[kind], collect=False)
        self._seed_baselines()
        self.resyncs += 1
        self.feed.publish({"type": "resync", "generation": self._generation})

    # -- applying rows -------------------------------------------------------
    def _apply(self, kind: str, rows: list[dict]) -> None:
        records = []
        for row in rows:
            try:
                if kind == "probes":
                    records.append(ProbeRecord.from_row(row))
                else:
                    records.append(parse_price_csv_row(row))
            except (KeyError, ValueError):
                # A CRC-verified row that does not parse is a writer
                # bug; skip it rather than crash the replica.
                self.apply_errors += 1
        with self.lock:
            for record in records:
                if kind == "probes":
                    self.store.insert_probe(record)
                else:
                    self.store.insert_price(record)
        for record in records:
            self._emit(kind, record)
        self.applied_rows += len(rows)
        if kind == "probes":
            self.applied_probes += len(rows)
        else:
            self.applied_prices += len(rows)

    def _after_apply(self) -> None:
        if self.frontend is not None:
            with self.lock:
                self.frontend.invalidate()
            self.invalidations += 1
        self.last_applied_at = time.time()

    # -- change-feed events --------------------------------------------------
    def _seed_baselines(self) -> None:
        """Derive the per-market event state from the loaded store so
        the first tailed row emits a *transition*, not a replay of
        history."""
        self._avail = {}
        self._above = {}
        for market in list(self.store.markets):
            for record in self.store.probes(market):
                self._avail[(market, record.kind)] = record.rejected
            _times, prices = self.store.price_arrays(market)
            if len(prices):
                self._above[market] = self._is_spike(
                    market, float(prices[-1])
                )

    def _is_spike(self, market, price: float) -> bool:
        if self.catalog is None:
            return False
        on_demand = self._od.get(market)
        if on_demand is None:
            try:
                on_demand = float(
                    self.catalog.on_demand_price(
                        market.instance_type, market.region, market.product
                    )
                )
            except (KeyError, AttributeError):
                on_demand = 0.0
            self._od[market] = on_demand
        return on_demand > 0 and price >= self.threshold_multiple * on_demand

    def _emit(self, kind: str, record) -> None:
        if kind == "prices":
            above = self._is_spike(record.market, record.price)
            if above != self._above.get(record.market, False):
                self.feed.publish(
                    {
                        "type": "spike" if above else "spike-cleared",
                        "market": str(record.market),
                        "time": record.time,
                        "price": record.price,
                    }
                )
            self._above[record.market] = above
            return
        if record.trigger is ProbeTrigger.REVOCATION:
            self.feed.publish(
                {
                    "type": "revocation",
                    "market": str(record.market),
                    "kind": record.kind.value,
                    "time": record.time,
                }
            )
        key = (record.market, record.kind)
        seen = self._avail.get(key)
        if record.rejected and seen is not True:
            self.feed.publish(
                {
                    "type": "unavailable",
                    "market": str(record.market),
                    "kind": record.kind.value,
                    "time": record.time,
                }
            )
        elif not record.rejected and seen is True:
            self.feed.publish(
                {
                    "type": "available",
                    "market": str(record.market),
                    "kind": record.kind.value,
                    "time": record.time,
                }
            )
        self._avail[key] = record.rejected

    # -- staleness -----------------------------------------------------------
    def lag(self, watermark: dict | None = None) -> int:
        """Committed-but-unapplied rows (0 when fully caught up)."""
        if watermark is None:
            watermark = self._committed
        if watermark is None:
            return 0
        applied = sum(cursor.rows for cursor in self._cursors.values())
        committed_here = watermark["probe_rows"] + watermark["price_rows"]
        if watermark["generation"] == self._generation:
            return max(0, committed_here - applied)
        if watermark["generation"] < self._generation:
            return 0
        previous = watermark.get("previous") or {}
        try:
            prev_generation = int(previous.get("generation", -1))
        except (TypeError, ValueError):
            prev_generation = -1
        if prev_generation == self._generation:
            behind = (
                int(previous.get("probe_rows", 0))
                + int(previous.get("price_rows", 0))
                - applied
            )
            return max(0, behind) + committed_here
        # Two or more generations behind: the true distance is unknown
        # until the pending resync; report at least past the staleness
        # bound so health degrades rather than lies.
        return max(committed_here, self.max_lag + 1)

    def health(self, fresh: bool = True) -> dict:
        """The staleness contract: ``applied_seq`` vs ``committed_seq``
        and the ``stale`` flag past :attr:`max_lag`.  ``fresh=True``
        re-reads the watermark (one small file read) so lag keeps
        growing even while the tailer itself is paused or wedged;
        ``fresh=False`` is the cheap per-request gauge."""
        watermark = None
        if fresh:
            watermark = read_watermark(self.root)
        if watermark is None:
            watermark = self._committed
        lag = self.lag(watermark)
        committed_seq = int(watermark["seq"]) if watermark else 0
        return {
            "generation": self._generation,
            "committed_seq": committed_seq,
            "applied_seq": max(0, committed_seq - lag),
            "lag": lag,
            "max_lag": self.max_lag,
            "stale": lag > self.max_lag,
            "caught_up": watermark is not None and lag == 0,
            "paused": self._paused.is_set(),
        }

    def stats(self) -> dict:
        info = self.health()
        info.update(
            {
                "applied_rows": self.applied_rows,
                "applied_probes": self.applied_probes,
                "applied_prices": self.applied_prices,
                "apply_errors": self.apply_errors,
                "invalidations": self.invalidations,
                "steps": self.steps,
                "rollovers": self.rollovers,
                "resyncs": self.resyncs,
                "loop_errors": self.loop_errors,
                "tail_holds": sum(c.holds for c in self._cursors.values()),
                "feed": self.feed.stats(),
            }
        )
        index = getattr(self.store, "read_index", None)
        if index is not None and hasattr(index, "stats"):
            info["read_index"] = index.stats()
        return info

    # -- the tailing loop ----------------------------------------------------
    def start(self) -> "ReplicaTailer":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="spotlight-replica", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        delay = self.poll_interval
        while not self._stop.is_set():
            if self._paused.is_set():
                self._stop.wait(0.05)
                continue
            try:
                applied = self.step()
            except Exception:
                # Tailing must never take the serving process down; a
                # persistent failure shows up as growing lag instead.
                self.loop_errors += 1
                applied = 0
            if applied:
                delay = self.poll_interval
            else:
                delay = min(delay * 1.5, self.max_poll_interval)
            self._stop.wait(delay)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def pause(self) -> None:
        """Suspend applying (the ``lag-replica`` chaos action): lag
        grows against the live watermark until :meth:`resume`."""
        self._paused.set()

    def resume(self) -> None:
        self._paused.clear()

"""On-demand instance lifecycle (Figure 3.1 of the paper).

A submitted request is either denied with
``InsufficientInstanceCapacity`` or accepted into ``pending``; a pending
instance becomes ``running``; terminate moves it through
``shutting-down`` to ``terminated``.  Every transition is timestamped so
SpotLight (and tests) can audit the full history.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import InvalidStateTransition


class InstanceState(str, enum.Enum):
    """States of the Figure 3.1 on-demand state machine."""

    PENDING = "pending"
    RUNNING = "running"
    SHUTTING_DOWN = "shutting-down"
    TERMINATED = "terminated"


_ALLOWED_TRANSITIONS: dict[InstanceState, frozenset[InstanceState]] = {
    InstanceState.PENDING: frozenset({InstanceState.RUNNING, InstanceState.SHUTTING_DOWN}),
    InstanceState.RUNNING: frozenset({InstanceState.SHUTTING_DOWN}),
    InstanceState.SHUTTING_DOWN: frozenset({InstanceState.TERMINATED}),
    InstanceState.TERMINATED: frozenset(),
}

LIFECYCLE_ON_DEMAND = "on-demand"
LIFECYCLE_SPOT = "spot"
LIFECYCLE_SPOT_BLOCK = "spot-block"


@dataclass
class Instance:
    """A launched VM, on-demand or spot-backed."""

    instance_id: str
    instance_type: str
    availability_zone: str
    product: str
    lifecycle: str  # LIFECYCLE_ON_DEMAND or LIFECYCLE_SPOT
    launch_time: float
    units: int
    state: InstanceState = InstanceState.PENDING
    state_history: list[tuple[float, InstanceState]] = field(default_factory=list)
    termination_time: float | None = None
    spot_request_id: str | None = None

    def __post_init__(self) -> None:
        if not self.state_history:
            self.state_history.append((self.launch_time, self.state))

    # -- transitions -----------------------------------------------------
    def _transition(self, new_state: InstanceState, now: float) -> None:
        if new_state not in _ALLOWED_TRANSITIONS[self.state]:
            raise InvalidStateTransition(
                f"{self.instance_id}: cannot go {self.state.value} -> {new_state.value}"
            )
        self.state = new_state
        self.state_history.append((now, new_state))

    def mark_running(self, now: float) -> None:
        self._transition(InstanceState.RUNNING, now)

    def begin_shutdown(self, now: float) -> None:
        self._transition(InstanceState.SHUTTING_DOWN, now)

    def mark_terminated(self, now: float) -> None:
        self._transition(InstanceState.TERMINATED, now)
        self.termination_time = now

    # -- queries ---------------------------------------------------------
    @property
    def is_live(self) -> bool:
        """True while the instance still holds pool capacity."""
        return self.state in (
            InstanceState.PENDING,
            InstanceState.RUNNING,
            InstanceState.SHUTTING_DOWN,
        )

    def running_duration(self, now: float) -> float:
        """Seconds since launch (to termination if terminated)."""
        end = self.termination_time if self.termination_time is not None else now
        return max(0.0, end - self.launch_time)

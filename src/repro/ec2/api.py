"""boto3-like client facade over the simulator.

The paper's prototype was written against boto3; SpotLight's code in
:mod:`repro.core` is written against this client so its structure maps
onto a real deployment directly — swap :class:`EC2Client` for a boto3
client bound to a region and the probing logic is unchanged.

Responses are plain dicts shaped like (simplified) boto3 responses;
errors surface as :class:`~repro.common.errors.EC2Error` subclasses
carrying the real EC2 error codes.
"""

from __future__ import annotations

from typing import Any

from repro.ec2.platform import EC2Simulator


class EC2Client:
    """A per-region view of the simulated platform (like a boto3 client)."""

    def __init__(self, simulator: EC2Simulator, region: str) -> None:
        if region not in simulator.catalog.regions:
            raise KeyError(f"unknown region: {region}")
        self._sim = simulator
        self.region = region

    def _check_zone(self, availability_zone: str) -> None:
        if self._sim.catalog.region_of_zone(availability_zone) != self.region:
            raise ValueError(
                f"{availability_zone} is not in this client's region {self.region}"
            )

    # -- on-demand -----------------------------------------------------------
    def run_instances(
        self, InstanceType: str, Placement: dict[str, str], ProductDescription: str
    ) -> dict[str, Any]:
        """Launch one on-demand instance; raises on rejection."""
        az = Placement["AvailabilityZone"]
        self._check_zone(az)
        instance = self._sim.run_instances(InstanceType, az, ProductDescription)
        return {
            "Instances": [
                {
                    "InstanceId": instance.instance_id,
                    "InstanceType": instance.instance_type,
                    "State": {"Name": instance.state.value},
                    "LaunchTime": instance.launch_time,
                    "Placement": {"AvailabilityZone": az},
                }
            ]
        }

    def terminate_instances(self, InstanceIds: list[str]) -> dict[str, Any]:
        self._sim.terminate_instances(InstanceIds)
        return {
            "TerminatingInstances": [
                {
                    "InstanceId": iid,
                    "CurrentState": {"Name": self._sim.instances[iid].state.value},
                }
                for iid in InstanceIds
            ]
        }

    def describe_instances(self, InstanceIds: list[str]) -> dict[str, Any]:
        reservations = []
        for iid in InstanceIds:
            instance = self._sim.instances[iid]
            reservations.append(
                {
                    "Instances": [
                        {
                            "InstanceId": iid,
                            "InstanceType": instance.instance_type,
                            "State": {"Name": instance.state.value},
                        }
                    ]
                }
            )
        return {"Reservations": reservations}

    # -- spot ------------------------------------------------------------------
    def request_spot_instances(
        self,
        SpotPrice: str,
        InstanceType: str,
        Placement: dict[str, str],
        ProductDescription: str,
    ) -> dict[str, Any]:
        """Submit a spot request; price is a string, as in boto3."""
        az = Placement["AvailabilityZone"]
        self._check_zone(az)
        request = self._sim.request_spot_instances(
            InstanceType, az, ProductDescription, float(SpotPrice)
        )
        return {
            "SpotInstanceRequests": [
                {
                    "SpotInstanceRequestId": request.request_id,
                    "State": request.state.value,
                    "Status": {"Code": request.status},
                    "SpotPrice": SpotPrice,
                }
            ]
        }

    def describe_spot_instance_requests(
        self, SpotInstanceRequestIds: list[str]
    ) -> dict[str, Any]:
        entries = []
        for rid in SpotInstanceRequestIds:
            request = self._sim.spot_requests[rid]
            entry: dict[str, Any] = {
                "SpotInstanceRequestId": rid,
                "State": request.state.value,
                "Status": {"Code": request.status},
            }
            if request.instance_id:
                entry["InstanceId"] = request.instance_id
            entries.append(entry)
        return {"SpotInstanceRequests": entries}

    def cancel_spot_instance_requests(
        self, SpotInstanceRequestIds: list[str]
    ) -> dict[str, Any]:
        cancelled = []
        for rid in SpotInstanceRequestIds:
            request = self._sim.cancel_spot_request(rid)
            cancelled.append(
                {"SpotInstanceRequestId": rid, "State": request.state.value}
            )
        return {"CancelledSpotInstanceRequests": cancelled}

    def terminate_spot_instance(self, SpotInstanceRequestId: str) -> None:
        """Convenience: user-terminate the instance behind a request."""
        self._sim.terminate_spot_instance(SpotInstanceRequestId)

    # -- prices ------------------------------------------------------------------
    def describe_spot_price_history(
        self,
        InstanceTypes: list[str],
        AvailabilityZone: str,
        ProductDescriptions: list[str],
        StartTime: float | None = None,
        EndTime: float | None = None,
    ) -> dict[str, Any]:
        self._check_zone(AvailabilityZone)
        history = []
        for itype in InstanceTypes:
            for product in ProductDescriptions:
                for when, price in self._sim.describe_spot_price_history(
                    itype, AvailabilityZone, product, StartTime, EndTime
                ):
                    history.append(
                        {
                            "InstanceType": itype,
                            "ProductDescription": product,
                            "AvailabilityZone": AvailabilityZone,
                            "Timestamp": when,
                            "SpotPrice": f"{price:.4f}",
                        }
                    )
        history.sort(key=lambda e: e["Timestamp"])
        return {"SpotPriceHistory": history}

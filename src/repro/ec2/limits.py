"""Per-region service limits and API rate limiting.

The paper's prototype had to work under EC2's account limits — at the
time, roughly 20 running on-demand instances and 20 open spot requests
per region, plus an API request rate limit — and its hierarchical
region/market/database managers exist largely to respect them.  The
simulator enforces the same limits so that SpotLight's batching and
concurrency management is exercised for real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.clock import SimClock
from repro.common.errors import (
    RequestLimitExceededError,
    ServiceLimitExceededError,
)

DEFAULT_MAX_ON_DEMAND_INSTANCES = 20
DEFAULT_MAX_OPEN_SPOT_REQUESTS = 20
DEFAULT_API_RATE_PER_SECOND = 5.0
DEFAULT_API_BURST = 100.0


class TokenBucket:
    """Classic token bucket.

    Time comes from a :class:`SimClock` (the simulator's case) or from
    any zero-argument callable returning seconds (``time.monotonic`` for
    a wall-clock consumer such as the serving tier's admission control).
    """

    def __init__(
        self,
        clock: SimClock | Callable[[], float],
        rate: float,
        burst: float,
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError(f"rate and burst must be positive: {rate}, {burst}")
        self._now: Callable[[], float] = (
            clock if callable(clock) else lambda: clock.now
        )
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._last_refill = self._now()

    def _refill(self) -> None:
        now = self._now()
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._last_refill = now

    @property
    def available(self) -> float:
        self._refill()
        return self._tokens

    def try_consume(self, tokens: float = 1.0) -> bool:
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def seconds_until_available(self, tokens: float = 1.0) -> float:
        """How long until ``tokens`` could be consumed (a retry-after
        hint for throttled callers; 0.0 when they fit right now)."""
        self._refill()
        deficit = min(tokens, self.burst) - self._tokens
        return max(0.0, deficit / self.rate)


@dataclass
class RegionLimits:
    """Account limits for one region."""

    region: str
    clock: SimClock
    max_on_demand_instances: int = DEFAULT_MAX_ON_DEMAND_INSTANCES
    max_open_spot_requests: int = DEFAULT_MAX_OPEN_SPOT_REQUESTS
    api_rate_per_second: float = DEFAULT_API_RATE_PER_SECOND
    api_burst: float = DEFAULT_API_BURST
    running_on_demand: int = 0
    open_spot_requests: int = 0
    api_calls_made: int = 0
    api_calls_throttled: int = 0
    _bucket: TokenBucket = field(init=False)

    def __post_init__(self) -> None:
        self._bucket = TokenBucket(self.clock, self.api_rate_per_second, self.api_burst)

    # -- API rate -----------------------------------------------------------
    @property
    def available_api_tokens(self) -> float:
        """API calls the region's rate bucket can absorb right now."""
        return self._bucket.available

    def charge_api_call(self) -> None:
        """Account one API call; raises ``RequestLimitExceeded`` if throttled."""
        if not self._bucket.try_consume():
            self.api_calls_throttled += 1
            raise RequestLimitExceededError(
                f"{self.region}: API request rate exceeded"
            )
        self.api_calls_made += 1

    # -- instance/request counts ----------------------------------------------
    def acquire_on_demand_slot(self) -> None:
        if self.running_on_demand >= self.max_on_demand_instances:
            raise ServiceLimitExceededError(
                f"{self.region}: at the {self.max_on_demand_instances} running "
                f"on-demand instance limit"
            )
        self.running_on_demand += 1

    def release_on_demand_slot(self) -> None:
        if self.running_on_demand <= 0:
            raise ValueError(f"{self.region}: no on-demand slot to release")
        self.running_on_demand -= 1

    def acquire_spot_request_slot(self) -> None:
        if self.open_spot_requests >= self.max_open_spot_requests:
            raise ServiceLimitExceededError(
                f"{self.region}: at the {self.max_open_spot_requests} open spot "
                f"request limit"
            )
        self.open_spot_requests += 1

    def release_spot_request_slot(self) -> None:
        if self.open_spot_requests <= 0:
            raise ValueError(f"{self.region}: no spot request slot to release")
        self.open_spot_requests -= 1

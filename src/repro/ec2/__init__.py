"""EC2 simulator substrate.

A discrete-event model of Amazon EC2 as the paper describes it:

* a catalog of regions, availability zones, instance families/types and
  products with 2015-era on-demand prices (:mod:`repro.ec2.catalog`);
* per-(availability zone, family) capacity pools shared between
  reserved, on-demand, and spot contracts — the Figure 2.2 model
  (:mod:`repro.ec2.pool`);
* a uniform-price auction per market that sets the public spot price
  from the standing bid stack, with revocation warnings and the 10x
  on-demand bid cap (:mod:`repro.ec2.market`);
* the on-demand instance lifecycle of Figure 3.1
  (:mod:`repro.ec2.instance`) and the spot-request lifecycle of
  Figure 3.2 (:mod:`repro.ec2.spot_request`);
* background demand processes with diurnal/weekly cycles, correlated
  cross-AZ surges, and per-region provisioning regimes
  (:mod:`repro.ec2.demand`);
* per-region service limits and API rate limiting
  (:mod:`repro.ec2.limits`);
* :class:`repro.ec2.platform.EC2Simulator` wiring it all together, and
  :class:`repro.ec2.api.EC2Client`, the boto3-like facade SpotLight
  talks to.
"""

from repro.ec2.api import EC2Client
from repro.ec2.catalog import Catalog, InstanceType, default_catalog
from repro.ec2.instance import Instance, InstanceState
from repro.ec2.market import SpotMarket
from repro.ec2.platform import EC2Simulator
from repro.ec2.pool import CapacityPool
from repro.ec2.spot_request import SpotRequest, SpotRequestState

__all__ = [
    "Catalog",
    "InstanceType",
    "default_catalog",
    "Instance",
    "InstanceState",
    "SpotRequest",
    "SpotRequestState",
    "CapacityPool",
    "SpotMarket",
    "EC2Simulator",
    "EC2Client",
]

"""Static catalog of the simulated EC2 platform.

Regions, availability zones, instance families and types, products, and
the on-demand price table.  The layout mirrors EC2 circa 2015-2016, the
period the paper measured: 9 regions, 26 availability zones, ~53
instance types, and three products (Linux/UNIX, Windows, SUSE Linux),
giving on the order of 4500 distinct spot markets.

Instance types within a family differ in size by factors of two (the
paper points out EC2 sizes families this way to simplify bin-packing);
we encode that as integer ``units`` so capacity pools can account for
mixed-size allocation exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

PRODUCT_LINUX = "Linux/UNIX"
PRODUCT_WINDOWS = "Windows"
PRODUCT_SUSE = "SUSE Linux"
PRODUCTS = (PRODUCT_LINUX, PRODUCT_WINDOWS, PRODUCT_SUSE)

# Hourly price multiplier per product relative to Linux/UNIX.
PRODUCT_PRICE_FACTOR = {
    PRODUCT_LINUX: 1.0,
    PRODUCT_WINDOWS: 1.55,
    PRODUCT_SUSE: 1.10,
}

# Spot bids are capped at 10x the on-demand price (policy EC2 added
# after the $1000/hour incident the paper recounts).
MAX_BID_MULTIPLE = 10.0

# (region, number of availability zones, on-demand price factor vs us-east-1)
_REGION_SPECS = [
    ("us-east-1", 5, 1.00),
    ("us-west-1", 3, 1.12),
    ("us-west-2", 3, 1.00),
    ("eu-west-1", 3, 1.10),
    ("eu-central-1", 2, 1.20),
    ("ap-northeast-1", 3, 1.25),
    ("ap-southeast-1", 2, 1.25),
    ("ap-southeast-2", 3, 1.30),
    ("sa-east-1", 2, 1.60),
]

# family -> list of (size suffix, units, base Linux price in us-east-1, $/hr)
# ``units`` is the capacity-normalised size; sizes within a family differ
# by powers of two.  Prices follow the 2015 EC2 on-demand price sheet
# closely enough for the analyses (exactness is not required).
_FAMILY_SPECS: dict[str, list[tuple[str, int, float]]] = {
    # General purpose
    "t2": [
        ("nano", 1, 0.0065),
        ("micro", 1, 0.013),
        ("small", 2, 0.026),
        ("medium", 4, 0.052),
        ("large", 8, 0.104),
    ],
    "m3": [
        ("medium", 1, 0.067),
        ("large", 2, 0.133),
        ("xlarge", 4, 0.266),
        ("2xlarge", 8, 0.532),
    ],
    "m4": [
        ("large", 2, 0.120),
        ("xlarge", 4, 0.239),
        ("2xlarge", 8, 0.479),
        ("4xlarge", 16, 0.958),
        ("10xlarge", 40, 2.394),
    ],
    # Compute optimised
    "c3": [
        ("large", 2, 0.105),
        ("xlarge", 4, 0.210),
        ("2xlarge", 8, 0.420),
        ("4xlarge", 16, 0.840),
        ("8xlarge", 32, 1.680),
    ],
    "c4": [
        ("large", 2, 0.105),
        ("xlarge", 4, 0.209),
        ("2xlarge", 8, 0.419),
        ("4xlarge", 16, 0.838),
        ("8xlarge", 32, 1.675),
    ],
    # Memory optimised
    "r3": [
        ("large", 2, 0.166),
        ("xlarge", 4, 0.333),
        ("2xlarge", 8, 0.665),
        ("4xlarge", 16, 1.330),
        ("8xlarge", 32, 2.660),
    ],
    "m2": [
        ("xlarge", 2, 0.245),
        ("2xlarge", 4, 0.490),
        ("4xlarge", 8, 0.980),
    ],
    # Storage optimised
    "i2": [
        ("xlarge", 4, 0.853),
        ("2xlarge", 8, 1.705),
        ("4xlarge", 16, 3.410),
        ("8xlarge", 32, 6.820),
    ],
    "d2": [
        ("xlarge", 4, 0.690),
        ("2xlarge", 8, 1.380),
        ("4xlarge", 16, 2.760),
        ("8xlarge", 32, 5.520),
    ],
    "hs1": [("8xlarge", 32, 4.600)],
    "hi1": [("4xlarge", 16, 3.100)],
    # GPU / accelerated
    "g2": [
        ("2xlarge", 8, 0.650),
        ("8xlarge", 32, 2.600),
    ],
    "cg1": [("4xlarge", 16, 2.100)],
    # Previous generation general purpose
    "m1": [
        ("small", 1, 0.044),
        ("medium", 2, 0.087),
        ("large", 4, 0.175),
        ("xlarge", 8, 0.350),
    ],
    "c1": [
        ("medium", 2, 0.130),
        ("xlarge", 8, 0.520),
    ],
    "cc2": [("8xlarge", 32, 2.000)],
    "cr1": [("8xlarge", 32, 3.500)],
}


@dataclass(frozen=True)
class InstanceType:
    """One instance type, e.g. ``c3.2xlarge``."""

    name: str
    family: str
    size: str
    units: int
    base_price: float  # Linux/UNIX price in us-east-1, $/hour

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Region:
    """A geographical region with its availability zones."""

    name: str
    availability_zones: tuple[str, ...]
    price_factor: float


@dataclass
class Catalog:
    """The full platform catalog; the single source of pricing truth."""

    regions: dict[str, Region] = field(default_factory=dict)
    instance_types: dict[str, InstanceType] = field(default_factory=dict)
    products: tuple[str, ...] = PRODUCTS

    # -- construction ----------------------------------------------------
    def add_region(self, name: str, zones: int, price_factor: float) -> None:
        azs = tuple(f"{name}{chr(ord('a') + i)}" for i in range(zones))
        self.regions[name] = Region(name, azs, price_factor)

    def add_instance_type(
        self, family: str, size: str, units: int, base_price: float
    ) -> None:
        name = f"{family}.{size}"
        self.instance_types[name] = InstanceType(name, family, size, units, base_price)

    # -- lookups ---------------------------------------------------------
    def region_of_zone(self, availability_zone: str) -> str:
        """Map ``us-east-1d`` -> ``us-east-1``."""
        region = availability_zone.rstrip("abcdefgh")
        if region not in self.regions:
            raise KeyError(f"unknown availability zone: {availability_zone}")
        if availability_zone not in self.regions[region].availability_zones:
            raise KeyError(f"unknown availability zone: {availability_zone}")
        return region

    def zones_in_region(self, region: str) -> tuple[str, ...]:
        return self.regions[region].availability_zones

    def family_of(self, instance_type: str) -> str:
        return self.instance_types[instance_type].family

    def types_in_family(self, family: str) -> list[InstanceType]:
        """All types in a family, smallest first."""
        members = [t for t in self.instance_types.values() if t.family == family]
        return sorted(members, key=lambda t: t.units)

    def families(self) -> list[str]:
        return sorted({t.family for t in self.instance_types.values()})

    # -- pricing ---------------------------------------------------------
    def on_demand_price(
        self, instance_type: str, region: str, product: str = PRODUCT_LINUX
    ) -> float:
        """The fixed on-demand $/hour for a type in a region/product."""
        itype = self.instance_types[instance_type]
        if product not in PRODUCT_PRICE_FACTOR:
            raise KeyError(f"unknown product: {product}")
        factor = self.regions[region].price_factor * PRODUCT_PRICE_FACTOR[product]
        return round(itype.base_price * factor, 4)

    def max_bid(
        self, instance_type: str, region: str, product: str = PRODUCT_LINUX
    ) -> float:
        """The 10x on-demand bid cap for a market."""
        return self.on_demand_price(instance_type, region, product) * MAX_BID_MULTIPLE

    def spot_block_price(
        self,
        instance_type: str,
        region: str,
        product: str = PRODUCT_LINUX,
        duration_hours: int = 1,
    ) -> float:
        """Fixed hourly price of a defined-duration ("spot block") run.

        Spot blocks (Table 2.1's fourth contract) cost less than
        on-demand but more than plain spot, with the discount shrinking
        as the block gets longer: 1-hour blocks ~45% off on-demand,
        6-hour blocks ~30% off — matching EC2's 2015 pricing rule.
        """
        if not 1 <= duration_hours <= 6:
            raise ValueError(
                f"spot blocks run 1-6 hours, not {duration_hours}"
            )
        discount = 0.45 - 0.03 * (duration_hours - 1)
        od = self.on_demand_price(instance_type, region, product)
        return round(od * (1.0 - discount), 4)

    # -- enumeration -----------------------------------------------------
    def iter_markets(self):
        """Yield every (availability zone, instance type, product) triple."""
        for region in self.regions.values():
            for az in region.availability_zones:
                for itype in self.instance_types.values():
                    for product in self.products:
                        yield az, itype.name, product

    def market_count(self) -> int:
        zones = sum(len(r.availability_zones) for r in self.regions.values())
        return zones * len(self.instance_types) * len(self.products)


def default_catalog() -> Catalog:
    """Build the full 2015-era catalog the paper monitored."""
    catalog = Catalog()
    for name, zones, factor in _REGION_SPECS:
        catalog.add_region(name, zones, factor)
    for family, sizes in _FAMILY_SPECS.items():
        for size, units, price in sizes:
            catalog.add_instance_type(family, size, units, price)
    return catalog


def small_catalog(
    regions: list[str] | None = None, families: list[str] | None = None
) -> Catalog:
    """A reduced catalog for fast tests/experiments.

    ``regions``/``families`` default to a representative subset: the
    well-provisioned us-east-1 plus the under-provisioned sa-east-1 and
    ap-southeast-2, with the c3 and m3 families.
    """
    wanted_regions = set(regions or ["us-east-1", "sa-east-1", "ap-southeast-2"])
    wanted_families = set(families or ["c3", "m3"])
    catalog = Catalog()
    for name, zones, factor in _REGION_SPECS:
        if name in wanted_regions:
            catalog.add_region(name, zones, factor)
    missing = wanted_regions - set(catalog.regions)
    if missing:
        raise KeyError(f"unknown regions: {sorted(missing)}")
    for family, sizes in _FAMILY_SPECS.items():
        if family in wanted_families:
            for size, units, price in sizes:
                catalog.add_instance_type(family, size, units, price)
    missing_fams = wanted_families - {
        t.family for t in catalog.instance_types.values()
    }
    if missing_fams:
        raise KeyError(f"unknown families: {sorted(missing_fams)}")
    return catalog

"""The EC2 simulator: pools + markets + demand + lifecycle + billing.

:class:`EC2Simulator` owns the clock and event queue and exposes the
operations SpotLight needs, with the same semantics (and error codes)
as the real EC2 API:

* ``run_instances`` / ``terminate_instances`` for on-demand servers
  (Figure 3.1 lifecycle, ``InsufficientInstanceCapacity`` on rejection);
* ``request_spot_instances`` / ``cancel_spot_request`` for spot servers
  (Figure 3.2 lifecycle with held statuses, fulfilment, the two-minute
  revocation warning, and the 10x bid cap);
* ``describe_spot_price_history`` with the real platform's 20-40 s
  publication lag;
* per-region service limits, API rate limiting, and a billing ledger
  with EC2's one-hour minimum charge (what makes probing costly).

Consumers can subscribe to market-clear events to observe prices the
way a poller would, without simulating thousands of poll calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.common import errors
from repro.common.clock import SECONDS_PER_HOUR, SimClock
from repro.common.errors import (
    BadParametersError,
    SpotBidTooHighError,
)
from repro.common.events import EventQueue
from repro.common.ids import IdGenerator
from repro.common.rng import RngStream
from repro.ec2.catalog import Catalog, default_catalog
from repro.ec2.demand import (
    DEFAULT_TICK_INTERVAL,
    PoolDemandProcess,
    RegionalSurgeCoordinator,
    RegionRegime,
    build_demand,
)
from repro.ec2.instance import (
    LIFECYCLE_ON_DEMAND,
    LIFECYCLE_SPOT,
    LIFECYCLE_SPOT_BLOCK,
    Instance,
)
from repro.ec2.limits import RegionLimits
from repro.ec2.market import REVOCATION_WARNING_SECONDS, SpotMarket
from repro.ec2.pool import CapacityPool
from repro.ec2.spot_request import SpotRequest

# How long an accepted instance stays ``pending`` before ``running``.
BOOT_DELAY_SECONDS = 45.0
# How long ``shutting-down`` lasts before ``terminated``.
SHUTDOWN_DELAY_SECONDS = 30.0

#: Relative pool size per region (us-east-1 is EC2's largest by a wide
#: margin, sa-east-1 its smallest).
REGION_SIZE_FACTOR = {
    "us-east-1": 1.00,
    "us-west-1": 0.35,
    "us-west-2": 0.60,
    "eu-west-1": 0.60,
    "eu-central-1": 0.30,
    "ap-northeast-1": 0.45,
    "ap-southeast-1": 0.25,
    "ap-southeast-2": 0.25,
    "sa-east-1": 0.15,
}


@dataclass
class BillingRecord:
    """One charge on the account ledger."""

    time: float
    instance_id: str
    lifecycle: str
    availability_zone: str
    instance_type: str
    product: str
    hours_charged: float
    rate: float

    @property
    def amount(self) -> float:
        return self.hours_charged * self.rate


@dataclass
class FleetConfig:
    """Configuration for one simulated platform instance."""

    catalog: Catalog = field(default_factory=default_catalog)
    seed: int = 7
    tick_interval: float = DEFAULT_TICK_INTERVAL
    base_pool_units: int = 6000
    regimes: dict[str, RegionRegime] | None = None
    start_time: float = 0.0
    #: Use the batch (numpy) demand tick.  The scalar path draws the
    #: same random blocks and produces identical price series; it exists
    #: as the reference implementation for the golden regression tests.
    vectorized_demand: bool = True


MarketObserver = Callable[[SpotMarket, float, float], None]


class EC2Simulator:
    """A self-contained simulated EC2 deployment."""

    def __init__(self, config: FleetConfig | None = None) -> None:
        self.config = config or FleetConfig()
        self.catalog = self.config.catalog
        self.clock = SimClock(self.config.start_time)
        self.queue = EventQueue(self.clock)
        self.ids = IdGenerator()
        self.rng = RngStream(self.config.seed, "ec2")

        self.pools: dict[tuple[str, str], CapacityPool] = {}
        self.markets: dict[tuple[str, str, str], SpotMarket] = {}
        self.limits: dict[str, RegionLimits] = {}
        self.instances: dict[str, Instance] = {}
        self.spot_requests: dict[str, SpotRequest] = {}
        self.billing: list[BillingRecord] = []
        self._observers: list[MarketObserver] = []
        self._open_requests_by_market: dict[tuple[str, str, str], list[str]] = {}
        self._active_spot_by_pool: dict[tuple[str, str], list[str]] = {}

        self._build_fleet()
        self.demand_processes: list[PoolDemandProcess]
        self.coordinators: list[RegionalSurgeCoordinator]
        self.demand_processes, self.coordinators = build_demand(
            self.catalog,
            self.pools,
            self.markets,
            self.rng.child("demand"),
            self.queue,
            self.config.tick_interval,
            self._on_interactive_preemption,
            self._on_market_cleared,
            self.config.regimes,
            vectorized=self.config.vectorized_demand,
        )
        for process in self.demand_processes:
            process.start()
        for coordinator in self.coordinators:
            coordinator.start()

    # -- construction ---------------------------------------------------------
    def _build_fleet(self) -> None:
        for region_name, region in self.catalog.regions.items():
            self.limits[region_name] = RegionLimits(region_name, self.clock)
            size_factor = REGION_SIZE_FACTOR.get(region_name, 0.3)
            for az in region.availability_zones:
                for family in self.catalog.families():
                    units = max(400, int(self.config.base_pool_units * size_factor))
                    self.pools[(az, family)] = CapacityPool(
                        availability_zone=az, family=family, total_units=units
                    )
        for az, type_name, product in self.catalog.iter_markets():
            region = self.catalog.region_of_zone(az)
            itype = self.catalog.instance_types[type_name]
            self.markets[(az, type_name, product)] = SpotMarket(
                availability_zone=az,
                instance_type=type_name,
                product=product,
                on_demand_price=self.catalog.on_demand_price(
                    type_name, region, product
                ),
                units=itype.units,
            )

    # -- time -------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.clock.now

    def run_until(self, when: float) -> int:
        """Advance the simulation to absolute time ``when``."""
        return self.queue.run_until(when)

    def run_for(self, duration: float) -> int:
        """Advance the simulation by ``duration`` seconds."""
        return self.queue.run_until(self.clock.now + duration)

    # -- observation --------------------------------------------------------------
    def subscribe_market_updates(self, observer: MarketObserver) -> None:
        """Call ``observer(market, now, price)`` after each market clear.

        This stands in for the price polling loop a real deployment
        runs; the information delivered is identical to polling at the
        tick interval.
        """
        self._observers.append(observer)

    def _on_market_cleared(self, market: SpotMarket) -> None:
        # This runs once per market per demand tick — fleet-wide, tens
        # of thousands of times per simulated day — so skip the request
        # re-evaluation and revocation scans outright unless this market
        # actually has open requests or its pool has live spot instances.
        now = self.clock.now
        if self._open_requests_by_market.get(market.market_key):
            self._reevaluate_open_requests(market)
        pool_key = (
            market.availability_zone,
            self.catalog.family_of(market.instance_type),
        )
        if self._active_spot_by_pool.get(pool_key):
            self._revoke_outbid_instances(market)
        if self._observers:
            price = market.current_price(now)
            for observer in self._observers:
                observer(market, now, price)

    # -- helpers ---------------------------------------------------------------------
    def _market(self, az: str, instance_type: str, product: str) -> SpotMarket:
        try:
            return self.markets[(az, instance_type, product)]
        except KeyError:
            raise BadParametersError(
                f"no such market: {az}/{instance_type}/{product}"
            ) from None

    def _pool_for(self, az: str, instance_type: str) -> CapacityPool:
        family = self.catalog.family_of(instance_type)
        return self.pools[(az, family)]

    def _region_limits(self, az: str) -> RegionLimits:
        return self.limits[self.catalog.region_of_zone(az)]

    def _charge(self, instance: Instance, rate: float) -> None:
        hours = max(1.0, instance.running_duration(self.clock.now) / SECONDS_PER_HOUR)
        self.billing.append(
            BillingRecord(
                time=self.clock.now,
                instance_id=instance.instance_id,
                lifecycle=instance.lifecycle,
                availability_zone=instance.availability_zone,
                instance_type=instance.instance_type,
                product=instance.product,
                hours_charged=hours,
                rate=rate,
            )
        )

    def total_cost(self) -> float:
        return sum(record.amount for record in self.billing)

    # -- on-demand API ------------------------------------------------------------------
    def run_instances(
        self, instance_type: str, availability_zone: str, product: str
    ) -> Instance:
        """Request one on-demand instance (a SpotLight probe).

        Raises :class:`InsufficientInstanceCapacityError` when the pool
        cannot satisfy the request — the signal SpotLight logs.
        """
        market = self._market(availability_zone, instance_type, product)
        limits = self._region_limits(availability_zone)
        limits.charge_api_call()
        pool = self._pool_for(availability_zone, instance_type)
        itype = self.catalog.instance_types[instance_type]

        limits.acquire_on_demand_slot()
        try:
            preemption = pool.allocate_on_demand(itype.units, instance_type)
        except Exception:
            limits.release_on_demand_slot()
            raise
        if preemption.interactive_units:
            self._revoke_preempted(pool, preemption.interactive_units)

        instance = Instance(
            instance_id=self.ids.instance_id(),
            instance_type=instance_type,
            availability_zone=availability_zone,
            product=market.product,
            lifecycle=LIFECYCLE_ON_DEMAND,
            launch_time=self.clock.now,
            units=itype.units,
        )
        self.instances[instance.instance_id] = instance
        self.queue.schedule_in(
            BOOT_DELAY_SECONDS,
            lambda: self._boot_instance(instance),
            label=f"boot/{instance.instance_id}",
        )
        return instance

    def _boot_instance(self, instance: Instance) -> None:
        if instance.is_live and instance.state.value == "pending":
            instance.mark_running(self.clock.now)

    def terminate_instances(self, instance_ids: Iterable[str]) -> None:
        """Begin shutdown of the given instances (the user-side path)."""
        for instance_id in instance_ids:
            instance = self.instances.get(instance_id)
            if instance is None:
                raise BadParametersError(f"no such instance: {instance_id}")
            if not instance.is_live:
                continue
            if instance.state.value != "shutting-down":
                instance.begin_shutdown(self.clock.now)
            self.queue.schedule_in(
                SHUTDOWN_DELAY_SECONDS,
                lambda inst=instance: self._finish_termination(inst),
                label=f"term/{instance_id}",
            )

    def _finish_termination(
        self, instance: Instance, capacity_already_released: bool = False
    ) -> None:
        if instance.state.value == "terminated":
            return
        instance.mark_terminated(self.clock.now)
        pool = self._pool_for(instance.availability_zone, instance.instance_type)
        region = self.catalog.region_of_zone(instance.availability_zone)
        market = self._market(
            instance.availability_zone, instance.instance_type, instance.product
        )
        if instance.lifecycle == LIFECYCLE_ON_DEMAND:
            if not capacity_already_released:
                pool.release_on_demand(instance.units, instance.instance_type)
            self._region_limits(instance.availability_zone).release_on_demand_slot()
            rate = self.catalog.on_demand_price(
                instance.instance_type, region, instance.product
            )
            self._charge(instance, rate)
        else:
            if not capacity_already_released:
                pool.release_spot(instance.units)
            pool_key = (pool.availability_zone, pool.family)
            active = self._active_spot_by_pool.get(pool_key, [])
            if instance.instance_id in active:
                active.remove(instance.instance_id)
            rate = market.current_price(instance.launch_time)
            self._charge(instance, rate)

    # -- spot blocks (defined-duration spot) ------------------------------------------------
    def request_spot_block(
        self,
        instance_type: str,
        availability_zone: str,
        product: str,
        duration_hours: int,
    ) -> Instance:
        """Launch a defined-duration spot instance (Table 2.1's "Spot
        Blocks" contract): a fixed discounted price, no revocation for
        the block's duration, automatic termination at its end.

        The capacity is pinned for the duration (the platform will not
        reclaim it for on-demand or reserved starts), so it is accounted
        like a temporary reservation against the on-demand bound —
        obtainability is therefore *not* guaranteed and the request can
        fail with ``InsufficientInstanceCapacity``.
        """
        market = self._market(availability_zone, instance_type, product)
        limits = self._region_limits(availability_zone)
        limits.charge_api_call()
        region = self.catalog.region_of_zone(availability_zone)
        rate = self.catalog.spot_block_price(
            instance_type, region, product, duration_hours
        )
        pool = self._pool_for(availability_zone, instance_type)
        itype = self.catalog.instance_types[instance_type]

        limits.acquire_on_demand_slot()
        try:
            preemption = pool.allocate_on_demand(itype.units, instance_type)
        except Exception:
            limits.release_on_demand_slot()
            raise
        if preemption.interactive_units:
            self._revoke_preempted(pool, preemption.interactive_units)

        instance = Instance(
            instance_id=self.ids.instance_id(),
            instance_type=instance_type,
            availability_zone=availability_zone,
            product=market.product,
            lifecycle=LIFECYCLE_SPOT_BLOCK,
            launch_time=self.clock.now,
            units=itype.units,
        )
        self.instances[instance.instance_id] = instance
        self.queue.schedule_in(
            BOOT_DELAY_SECONDS,
            lambda: self._boot_instance(instance),
            label=f"boot/{instance.instance_id}",
        )
        self.queue.schedule_in(
            duration_hours * SECONDS_PER_HOUR,
            lambda: self._expire_spot_block(instance, rate),
            label=f"block-expiry/{instance.instance_id}",
        )
        return instance

    def _expire_spot_block(self, instance: Instance, rate: float) -> None:
        """A spot block reached the end of its defined duration."""
        if not instance.is_live:
            return
        if instance.state.value in ("pending", "running"):
            instance.begin_shutdown(self.clock.now)
        self._finish_block_termination(instance, rate)

    def terminate_spot_block(self, instance_id: str) -> None:
        """User-side early termination (still billed for hours used)."""
        instance = self.instances.get(instance_id)
        if instance is None or instance.lifecycle != LIFECYCLE_SPOT_BLOCK:
            raise BadParametersError(f"no such spot block: {instance_id}")
        self._region_limits(instance.availability_zone).charge_api_call()
        if not instance.is_live:
            return
        region = self.catalog.region_of_zone(instance.availability_zone)
        # Billing uses the 1-hour block rate (the duration booked is a
        # detail of the expiry event we are preempting).
        rate = self.catalog.spot_block_price(
            instance.instance_type, region, instance.product, 1
        )
        instance.begin_shutdown(self.clock.now)
        self._finish_block_termination(instance, rate)

    def _finish_block_termination(self, instance: Instance, rate: float) -> None:
        instance.mark_terminated(self.clock.now)
        pool = self._pool_for(instance.availability_zone, instance.instance_type)
        pool.release_on_demand(instance.units, instance.instance_type)
        self._region_limits(instance.availability_zone).release_on_demand_slot()
        self._charge(instance, rate)

    # -- spot API ---------------------------------------------------------------------------
    def request_spot_instances(
        self,
        instance_type: str,
        availability_zone: str,
        product: str,
        bid_price: float,
    ) -> SpotRequest:
        """Submit a one-instance spot request (Figure 3.2 lifecycle)."""
        market = self._market(availability_zone, instance_type, product)
        limits = self._region_limits(availability_zone)
        limits.charge_api_call()
        if bid_price <= 0:
            raise BadParametersError(f"bid must be positive: {bid_price}")
        if bid_price > market.max_bid:
            raise SpotBidTooHighError(
                f"bid {bid_price} exceeds the cap {market.max_bid:.4f} "
                f"(10x on-demand)"
            )

        limits.acquire_spot_request_slot()
        request = SpotRequest(
            request_id=self.ids.spot_request_id(),
            instance_type=instance_type,
            availability_zone=availability_zone,
            product=product,
            bid_price=bid_price,
            create_time=self.clock.now,
        )
        self.spot_requests[request.request_id] = request
        self._open_requests_by_market.setdefault(market.market_key, []).append(
            request.request_id
        )
        self._evaluate_request(request, market)
        return request

    def _required_price(self, market: SpotMarket) -> float:
        """The actual price a bid must meet right now.

        Usually the current price; when the market moved recently,
        demand that arrived since the last published update can push
        the effective level higher — the intrinsic-price gap SpotLight's
        BidSpread probe measures (Figure 5.2).
        """
        now = self.clock.now
        price = market.current_price(now)
        earlier = market.current_price(max(0.0, now - 900.0))
        volatility = abs(price - earlier) / max(price, 1e-9)
        if volatility > 0.05 and self.rng.bernoulli(min(0.7, volatility)):
            price *= 1.0 + self.rng.exponential(0.15)
        return round(price, 4)

    def _evaluate_request(self, request: SpotRequest, market: SpotMarket) -> None:
        if not request.is_open:
            return
        pool = self._pool_for(request.availability_zone, request.instance_type)
        available = pool.spot_capacity - pool.interactive_spot_units
        status = market.evaluate_bid(
            request.bid_price,
            self.clock.now,
            available,
            required_price=self._required_price(market),
        )
        if status:
            request.hold(status, self.clock.now)
            return
        # A winning bid may displace a marginal background winner.
        shortfall = market.units - pool.spot_free_units
        if shortfall > 0:
            if shortfall > pool.background_spot_units:
                request.hold(errors.STATUS_CAPACITY_NOT_AVAILABLE, self.clock.now)
                return
            pool.background_spot_units -= shortfall
        if not pool.allocate_spot(market.units):
            request.hold(errors.STATUS_CAPACITY_NOT_AVAILABLE, self.clock.now)
            return
        request.begin_fulfillment(self.clock.now)
        instance = Instance(
            instance_id=self.ids.instance_id(),
            instance_type=request.instance_type,
            availability_zone=request.availability_zone,
            product=request.product,
            lifecycle=LIFECYCLE_SPOT,
            launch_time=self.clock.now,
            units=market.units,
            spot_request_id=request.request_id,
        )
        self.instances[instance.instance_id] = instance
        request.fulfill(instance.instance_id, self.clock.now)
        self._release_request_slot(request)
        self._unindex_open_request(request, market)
        self._active_spot_by_pool.setdefault(
            (pool.availability_zone, pool.family), []
        ).append(instance.instance_id)
        self.queue.schedule_in(
            BOOT_DELAY_SECONDS,
            lambda: self._boot_instance(instance),
            label=f"boot/{instance.instance_id}",
        )

    def _release_request_slot(self, request: SpotRequest) -> None:
        self._region_limits(request.availability_zone).release_spot_request_slot()

    def _unindex_open_request(self, request: SpotRequest, market: SpotMarket) -> None:
        open_list = self._open_requests_by_market.get(market.market_key, [])
        if request.request_id in open_list:
            open_list.remove(request.request_id)

    def cancel_spot_request(self, request_id: str) -> SpotRequest:
        """Cancel an open or active spot request.

        Cancelling an active request leaves its instance running
        (``request-canceled-and-instance-running``), matching EC2.
        """
        request = self.spot_requests.get(request_id)
        if request is None:
            raise BadParametersError(f"no such spot request: {request_id}")
        self._region_limits(request.availability_zone).charge_api_call()
        was_open = request.is_open
        request.cancel(self.clock.now)
        if was_open:
            self._release_request_slot(request)
            market = self._market(
                request.availability_zone, request.instance_type, request.product
            )
            self._unindex_open_request(request, market)
        return request

    def _reevaluate_open_requests(self, market: SpotMarket) -> None:
        request_ids = list(self._open_requests_by_market.get(market.market_key, []))
        for request_id in request_ids:
            request = self.spot_requests[request_id]
            self._evaluate_request(request, market)

    # -- revocation -----------------------------------------------------------------------
    def _revoke_outbid_instances(self, market: SpotMarket) -> None:
        """Price rose above a bid: warn, then terminate after 120 s."""
        now = self.clock.now
        price = market.current_price(now)
        pool = self._pool_for(market.availability_zone, market.instance_type)
        pool_key = (pool.availability_zone, pool.family)
        for instance_id in list(self._active_spot_by_pool.get(pool_key, [])):
            instance = self.instances[instance_id]
            if (
                instance.instance_type != market.instance_type
                or instance.product != market.product
            ):
                continue
            request = self.spot_requests[instance.spot_request_id]
            if not request.is_active or request.bid_price >= price:
                continue
            if request.status == errors.STATUS_MARKED_FOR_TERMINATION:
                continue
            request.mark_for_termination(now)
            self.queue.schedule_in(
                REVOCATION_WARNING_SECONDS,
                lambda r=request: self._finish_revocation(r, capacity_released=False),
                label=f"revoke/{request.request_id}",
            )

    def _revoke_preempted(self, pool: CapacityPool, units: int) -> None:
        """The pool preempted interactive spot capacity; pick victims.

        Lowest bids go first (they would have been outbid anyway).  The
        pool units are already released, so termination must not release
        them again.
        """
        pool_key = (pool.availability_zone, pool.family)
        candidates = [
            self.instances[iid]
            for iid in self._active_spot_by_pool.get(pool_key, [])
            if self.spot_requests[self.instances[iid].spot_request_id].is_active
            and self.spot_requests[self.instances[iid].spot_request_id].status
            != errors.STATUS_MARKED_FOR_TERMINATION
        ]
        candidates.sort(
            key=lambda inst: self.spot_requests[inst.spot_request_id].bid_price
        )
        freed = 0
        for instance in candidates:
            if freed >= units:
                break
            request = self.spot_requests[instance.spot_request_id]
            request.mark_for_termination(self.clock.now)
            freed += instance.units
            self.queue.schedule_in(
                REVOCATION_WARNING_SECONDS,
                lambda r=request: self._finish_revocation(r, capacity_released=True),
                label=f"preempt/{request.request_id}",
            )

    def _on_interactive_preemption(self, pool: CapacityPool, units: int) -> None:
        self._revoke_preempted(pool, units)

    def _finish_revocation(self, request: SpotRequest, capacity_released: bool) -> None:
        if not request.is_active:
            return
        instance = self.instances[request.instance_id]
        request.terminate_by_price(self.clock.now)
        if instance.is_live:
            if instance.state.value == "pending":
                instance.begin_shutdown(self.clock.now)
            elif instance.state.value == "running":
                instance.begin_shutdown(self.clock.now)
            self._finish_termination(
                instance, capacity_already_released=capacity_released
            )

    def terminate_spot_instance(self, request_id: str) -> None:
        """User-side termination of a fulfilled spot instance."""
        request = self.spot_requests.get(request_id)
        if request is None:
            raise BadParametersError(f"no such spot request: {request_id}")
        self._region_limits(request.availability_zone).charge_api_call()
        if not request.is_active:
            raise BadParametersError(
                f"{request_id} has no running instance to terminate"
            )
        instance = self.instances[request.instance_id]
        request.terminate_by_user(self.clock.now)
        if instance.is_live:
            instance.begin_shutdown(self.clock.now)
            self._finish_termination(instance)

    # -- price data ----------------------------------------------------------------------------
    def describe_spot_price_history(
        self,
        instance_type: str,
        availability_zone: str,
        product: str,
        start: float | None = None,
        end: float | None = None,
    ) -> list[tuple[float, float]]:
        """Published price-change events (subject to the 20-40 s lag)."""
        market = self._market(availability_zone, instance_type, product)
        self._region_limits(availability_zone).charge_api_call()
        horizon = self.clock.now - market.publication_lag
        times, prices = market.price_arrays(start, end)
        visible = times <= horizon
        return list(zip(times[visible].tolist(), prices[visible].tolist()))

    def current_spot_price(
        self, instance_type: str, availability_zone: str, product: str
    ) -> float:
        """The price a user can see right now (published, lagged)."""
        market = self._market(availability_zone, instance_type, product)
        return market.published_price(self.clock.now)

    def on_demand_price(
        self, instance_type: str, availability_zone: str, product: str
    ) -> float:
        region = self.catalog.region_of_zone(availability_zone)
        return self.catalog.on_demand_price(instance_type, region, product)

"""Background demand processes driving the simulated platform.

On-demand demand is modelled **per instance type**: each type in an
(availability zone, family) pool has its own occupancy process — with
diurnal/weekly cycles, AR(1) noise, and a sub-bound share of the pool's
on-demand capacity — because the paper's measurements show one type can
be unavailable while its family siblings stay available.  Correlation
between types is injected at three scales:

* **type surges** — a hotspot on a single type in a single zone;
  heavy-tailed magnitudes.  These cause the biggest spot price spikes,
  and because they are local, the cross-AZ correlation of Figure 5.8
  *decreases* with spike size.
* **family surges** — demand hits several types of a family in one zone
  (with per-type susceptibility), which is what makes SpotLight's
  related-market probing pay off (Figure 5.7).
* **regional surges** — a family surge mirrored across most of the
  region's zones (EC2 spreads zone-agnostic requests), producing the
  cross-AZ unavailability correlation of Figure 5.8.

Each market carries a background spot bid stack over a geometric price
grid from the floor to the 10x bid cap, with most mass at low prices,
a "convenience bidder" shelf at the on-demand price, and a thin high
tail.  Frequent demand *bursts* (bid wars) spike the price without any
on-demand pressure — the reason the paper's spike/unavailability
correlation is only partial — and occasional *lulls* drop the clearing
price toward the floor, triggering the low-price capacity withholding
of Figure 5.10.  When a type's on-demand demand exceeds its bound, the
overflow fails over to that type's spot markets with high convenience
bids — the paper's own mechanism for why spot prices spike exactly when
on-demand servers are unavailable.

Implementation: the hot path is **batched**.  One tick event per pool
builds the bid stacks of *all* the pool's markets as two ``(markets,
tiers)`` matrices, draws every random variate of the tick as a handful
of vectorized blocks from a dedicated ``tick`` child stream, and clears
all the auctions with array operations (see PERFORMANCE.md for the
layout and the intentional RNG-stream change this introduced).  A
scalar reference path (``vectorized=False``) shares the same bid-stack
construction and RNG draws but runs each auction through
:meth:`SpotMarket.clear`; seeded runs produce byte-identical price
series on either path, which the golden regression tests pin down.
Burst/lull arrivals are likewise coalesced into one superposed Poisson
process per pool instead of two self-rescheduling events per market.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.common.clock import SECONDS_PER_DAY, SECONDS_PER_WEEK
from repro.common.events import EventQueue
from repro.common.rng import RngStream
from repro.ec2.catalog import PRODUCT_LINUX, PRODUCT_SUSE, PRODUCT_WINDOWS, Catalog
from repro.ec2.market import GLUT_DEMAND_RATIO, Bid, ClearingResult, SpotMarket
from repro.ec2.pool import CapacityPool, Preemption

DEFAULT_TICK_INTERVAL = 300.0

# Relative popularity of each product in the background demand.
PRODUCT_DEMAND_WEIGHT = {
    PRODUCT_LINUX: 0.70,
    PRODUCT_WINDOWS: 0.20,
    PRODUCT_SUSE: 0.10,
}

# Price grid multipliers (x on-demand price) for the background bid
# stack, and the share of base quantity bid at each level.  Low levels
# dominate; the 1.0x shelf models "convenience" bidders; the tail above
# 1x is thin but non-empty, which is what lets a squeezed market clear
# far above the on-demand price.
BID_GRID = (0.05, 0.08, 0.12, 0.20, 0.35, 0.60, 1.00, 1.80, 3.20, 5.60, 10.0)
BID_WEIGHTS = (0.26, 0.20, 0.16, 0.12, 0.08, 0.06, 0.055, 0.025, 0.015, 0.01, 0.005)
# How burst/overflow extra demand spreads over the tiers at and above
# the on-demand price (zero below it).
HIGH_TIER_WEIGHTS = (0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.28, 0.22, 0.19, 0.16, 0.15)

# Adjacent grid multipliers are at least 1.33x apart while the per-tier
# price jitter spans at most 1.08/0.92 ≈ 1.17x, so jittered tier prices
# can never reorder — the batch clearing leans on tiers being strictly
# ascending in price.
_GRID = np.asarray(BID_GRID)
_WEIGHTS = np.asarray(BID_WEIGHTS)
_HIGH_WEIGHTS = np.asarray(HIGH_TIER_WEIGHTS)
_TIERS = len(BID_GRID)

# Per-type on-demand sub-bounds allow some statistical multiplexing: the
# shares sum to more than the family bound, so the family-level bound
# still occasionally binds (both layers exist on the real platform).
TYPE_BOUND_SLACK = 1.15


@dataclass(frozen=True)
class RegionRegime:
    """Provisioning/demand regime of one region.

    ``od_base_utilization`` is the mean per-type on-demand occupancy as
    a fraction of the type's sub-bound; regions near 1.0 are
    under-provisioned and reject requests often (sa-east-1 in the
    paper), regions well below are essentially always available
    (us-east-1).
    """

    name: str
    od_base_utilization: float
    diurnal_amplitude: float = 0.06
    weekly_amplitude: float = 0.03
    noise_sigma: float = 0.02
    type_surge_rate_per_day: float = 0.06  # per (type, zone)
    family_surge_rate_per_day: float = 0.04  # per pool
    regional_surge_rate_per_day: float = 0.12  # per (region, family)
    type_surge_scale: float = 0.14  # fraction of the type bound
    family_surge_scale: float = 0.10
    regional_surge_scale: float = 0.08
    regional_membership: float = 0.50  # P(a zone joins a regional surge)
    surge_duration_mean_s: float = 2400.0
    surge_ramp_s: float = 600.0
    spot_quantity_factor: float = 1.8  # demand/supply ratio in calm times
    spot_burst_rate_per_day: float = 4.0  # per market: bid-war price spikes
    spot_lull_rate_per_day: float = 0.25  # per market: glut -> floor price
    lull_duration_mean_s: float = 5400.0
    reserved_granted_fraction: float = 0.30
    reserved_running_fraction: float = 0.88  # of granted
    diurnal_phase_hours: float = 0.0


#: Calibrated regimes: us-east-1 well provisioned, sa-east-1 and the two
#: ap-southeast regions under-provisioned, others in between — the
#: ordering Figures 5.5/5.6 report.
REGION_REGIMES: dict[str, RegionRegime] = {
    "us-east-1": RegionRegime(
        "us-east-1",
        od_base_utilization=0.55,
        type_surge_rate_per_day=0.02,
        family_surge_rate_per_day=0.008,
        regional_surge_rate_per_day=0.04,
        spot_burst_rate_per_day=4.5,
        spot_lull_rate_per_day=0.30,
    ),
    "us-west-1": RegionRegime(
        "us-west-1",
        od_base_utilization=0.66,
        type_surge_rate_per_day=0.04,
        family_surge_rate_per_day=0.018,
        regional_surge_rate_per_day=0.06,
        diurnal_phase_hours=3.0,
    ),
    "us-west-2": RegionRegime(
        "us-west-2",
        od_base_utilization=0.60,
        type_surge_rate_per_day=0.03,
        family_surge_rate_per_day=0.012,
        regional_surge_rate_per_day=0.05,
        diurnal_phase_hours=3.0,
    ),
    "eu-west-1": RegionRegime(
        "eu-west-1",
        od_base_utilization=0.64,
        type_surge_rate_per_day=0.035,
        family_surge_rate_per_day=0.015,
        regional_surge_rate_per_day=0.05,
        diurnal_phase_hours=-5.0,
    ),
    "eu-central-1": RegionRegime(
        "eu-central-1",
        od_base_utilization=0.68,
        type_surge_rate_per_day=0.05,
        family_surge_rate_per_day=0.02,
        regional_surge_rate_per_day=0.08,
        diurnal_phase_hours=-6.0,
    ),
    "ap-northeast-1": RegionRegime(
        "ap-northeast-1",
        od_base_utilization=0.68,
        type_surge_rate_per_day=0.05,
        family_surge_rate_per_day=0.02,
        regional_surge_rate_per_day=0.08,
        diurnal_phase_hours=-13.0,
    ),
    "ap-southeast-1": RegionRegime(
        "ap-southeast-1",
        od_base_utilization=0.78,
        type_surge_rate_per_day=0.14,
        family_surge_rate_per_day=0.04,
        regional_surge_rate_per_day=0.15,
        type_surge_scale=0.20,
        family_surge_scale=0.12,
        diurnal_phase_hours=-12.0,
        spot_lull_rate_per_day=0.20,
    ),
    "ap-southeast-2": RegionRegime(
        "ap-southeast-2",
        od_base_utilization=0.80,
        type_surge_rate_per_day=0.17,
        family_surge_rate_per_day=0.05,
        regional_surge_rate_per_day=0.18,
        type_surge_scale=0.22,
        family_surge_scale=0.13,
        diurnal_phase_hours=-10.0,
        spot_lull_rate_per_day=0.20,
    ),
    "sa-east-1": RegionRegime(
        "sa-east-1",
        od_base_utilization=0.82,
        type_surge_rate_per_day=0.14,
        family_surge_rate_per_day=0.06,
        regional_surge_rate_per_day=0.22,
        type_surge_scale=0.26,
        family_surge_scale=0.15,
        regional_surge_scale=0.10,
        surge_duration_mean_s=4200.0,
        diurnal_phase_hours=1.0,
        spot_lull_rate_per_day=0.45,
        spot_quantity_factor=1.7,
    ),
}


def regime_for(region: str) -> RegionRegime:
    """The regime of ``region`` (defaults to a mid-tier profile)."""
    return REGION_REGIMES.get(region, RegionRegime(region, od_base_utilization=0.68))


@dataclass
class Surge:
    """One demand surge: ramp up, hold, decay back down."""

    start: float
    ramp: float
    hold: float
    decay: float
    magnitude: float  # fraction of the affected type's bound

    @property
    def end(self) -> float:
        return self.start + self.ramp + self.hold + self.decay

    def level_at(self, now: float) -> float:
        """Surge contribution at ``now`` (0 outside the envelope)."""
        if now <= self.start or now >= self.end:
            return 0.0
        t = now - self.start
        if t < self.ramp:
            return self.magnitude * (t / self.ramp)
        if t < self.ramp + self.hold:
            return self.magnitude
        return self.magnitude * (1.0 - (t - self.ramp - self.hold) / self.decay)


@dataclass
class TypeDemandState:
    """Per-instance-type on-demand demand state within a pool."""

    instance_type: str
    units: int  # units per instance of this type
    bound_units: int  # the type's on-demand sub-bound
    base_utilization: float
    susceptibility: float  # response to family/regional surges
    surges: list[Surge] = field(default_factory=list)
    noise: float = 0.0
    background_od_units: int = 0
    overflow: float = 0.0  # unmet demand beyond the bound (fraction)


@dataclass
class MarketDemandState:
    """Per-market background spot demand state."""

    market: SpotMarket
    type_state: TypeDemandState
    popularity: float  # static per-market demand multiplier
    share_weight: float  # share of the pool's spot supply
    base_instances: int = 1  # calm-time demand anchor (static)
    squeeze_exposure: float = 1.0  # how hard squeezes hit this market
    burst_until: float = 0.0
    burst_strength: float = 0.0
    lull_until: float = 0.0


class PoolDemandProcess:
    """Drives one capacity pool and the spot markets it hosts.

    ``vectorized`` selects the batch clearing path (the default); the
    scalar path draws the same RNG blocks and builds the same bid
    stacks, then runs each market through :meth:`SpotMarket.clear` —
    it exists as the reference implementation the regression tests
    compare against.
    """

    def __init__(
        self,
        pool: CapacityPool,
        regime: RegionRegime,
        markets: list[SpotMarket],
        rng: RngStream,
        queue: EventQueue,
        tick_interval: float = DEFAULT_TICK_INTERVAL,
        on_interactive_preemption: Callable[[CapacityPool, int], None] | None = None,
        on_market_cleared: Callable[[SpotMarket], None] | None = None,
        vectorized: bool = True,
    ) -> None:
        if not markets:
            raise ValueError("a pool demand process needs at least one market")
        self.pool = pool
        self.regime = regime
        self.rng = rng
        self.queue = queue
        self.tick_interval = tick_interval
        self.on_interactive_preemption = on_interactive_preemption
        self.on_market_cleared = on_market_cleared
        self.vectorized = vectorized
        # All per-tick randomness comes from this dedicated child stream
        # in fixed-size blocks, so the scalar and vectorized paths see
        # the exact same variates (see PERFORMANCE.md).
        self._tick_rng = rng.child("tick")

        self._initialise_pool()
        self._build_type_states(markets)
        self._build_market_states(markets)
        self._build_batch_arrays()

    # -- setup -------------------------------------------------------------
    def _initialise_pool(self) -> None:
        pool = self.pool
        granted = int(pool.total_units * self.regime.reserved_granted_fraction)
        if granted:
            pool.grant_reserved(granted)
            running = int(granted * self.regime.reserved_running_fraction)
            if running:
                pool.start_reserved(running)

    def _build_type_states(self, markets: list[SpotMarket]) -> None:
        pool = self.pool
        od_bound = pool.total_units - pool.reserved_granted_units
        type_units = {m.instance_type: m.units for m in markets}
        weights = {
            itype: units * self.rng.child(f"tw/{itype}").lognormal(0.0, 0.25)
            for itype, units in type_units.items()
        }
        total_weight = sum(weights.values())
        self.type_states: dict[str, TypeDemandState] = {}
        for itype, units in sorted(type_units.items()):
            share = weights[itype] / total_weight
            bound = max(units, int(od_bound * share * TYPE_BOUND_SLACK))
            pool.set_type_bound(itype, bound)
            trng = self.rng.child(f"type/{itype}")
            # Base utilisation is expressed against the (slack-inflated)
            # type bound, so divide the slack back out: the *family*
            # total then averages regime.od_base_utilization of the
            # family bound, leaving room before the family bound binds.
            self.type_states[itype] = TypeDemandState(
                instance_type=itype,
                units=units,
                bound_units=bound,
                base_utilization=self.regime.od_base_utilization / TYPE_BOUND_SLACK
                + trng.uniform(-0.06, 0.06),
                susceptibility=trng.lognormal(0.0, 1.2),
            )

    def _build_market_states(self, markets: list[SpotMarket]) -> None:
        self.market_states: list[MarketDemandState] = []
        total_weight = 0.0
        for market in markets:
            popularity = self.rng.child(f"pop/{market.market_key}").lognormal(0.0, 0.35)
            weight = (
                PRODUCT_DEMAND_WEIGHT.get(market.product, 0.1)
                * market.units
                * popularity
            )
            self.market_states.append(
                MarketDemandState(
                    market,
                    self.type_states[market.instance_type],
                    popularity,
                    weight,
                )
            )
            total_weight += weight
        for state in self.market_states:
            state.share_weight /= total_weight
            # The demand anchor is static: it reflects the market's
            # typical spot-demand level, *not* the currently available
            # supply.  When a squeeze shrinks supply, demand stays put
            # and the clearing price climbs the bid stack.
            calm_spot_units = self.pool.total_units * 0.35 * state.share_weight
            state.base_instances = max(
                1, int(calm_spot_units / state.market.units)
            )
            # Squeezes hit markets unevenly — the paper observes that
            # types within a family "may not spike at the same time
            # even if there is a decrease in supply", which is exactly
            # why SpotLight probes related markets.
            state.squeeze_exposure = self.rng.child(
                f"exposure/{state.market.market_key}"
            ).lognormal(0.0, 0.7)

    def _build_batch_arrays(self) -> None:
        """Freeze the per-market/per-type constants into columns."""
        states = self.market_states
        self._type_list = list(self.type_states.values())
        type_index = {s.instance_type: i for i, s in enumerate(self._type_list)}
        self._type_overflow = np.zeros(len(self._type_list))

        self._mk_units = np.array([s.market.units for s in states], dtype=np.float64)
        self._mk_units_int = self._mk_units.astype(np.int64)
        self._mk_od_price = np.array([s.market.on_demand_price for s in states])
        self._mk_max_bid = np.array([s.market.max_bid for s in states])
        self._mk_floor = np.array([s.market.floor_price for s in states])
        self._mk_withhold = np.array([s.market.withhold_price for s in states])
        self._mk_share = np.array([s.share_weight for s in states])
        self._mk_exposure = np.array([s.squeeze_exposure for s in states])
        self._mk_anchor = np.array([s.base_instances for s in states], dtype=np.float64)
        self._mk_type_idx = np.array(
            [type_index[s.type_state.instance_type] for s in states], dtype=np.intp
        )
        # Mutable burst/lull columns, mirrored into the dataclasses for
        # observability; the tick only reads the columns.
        self._mk_burst_until = np.zeros(len(states))
        self._mk_burst_strength = np.zeros(len(states))
        self._mk_lull_until = np.zeros(len(states))

    def start(self) -> None:
        """Schedule ticks and surge/burst/lull arrivals."""
        self.queue.schedule_in(0.0, self._tick, label=f"tick/{self._label()}")
        for state in self.type_states.values():
            self._schedule_type_surge(state)
        self._schedule_family_surge()
        self._schedule_pool_burst()
        self._schedule_pool_lull()

    def _label(self) -> str:
        return f"{self.pool.availability_zone}/{self.pool.family}"

    # -- surges --------------------------------------------------------------
    def _make_surge(self, magnitude: float, duration_scale: float = 1.0) -> Surge:
        now = self.queue.clock.now
        # Lognormal hold: most surges are sub-hour, but the tail reaches
        # many hours — that tail is what gives Figure 5.9 its long
        # unavailability periods.
        hold = (
            self.rng.lognormal(
                math.log(self.regime.surge_duration_mean_s) - 0.6, 1.25
            )
            * duration_scale
        )
        return Surge(
            start=now,
            ramp=self.regime.surge_ramp_s * self.rng.uniform(0.6, 1.4),
            hold=hold,
            decay=self.regime.surge_ramp_s * self.rng.uniform(0.8, 2.0),
            magnitude=magnitude,
        )

    def _schedule_type_surge(self, state: TypeDemandState) -> None:
        rate = self.regime.type_surge_rate_per_day
        if rate <= 0:
            return
        delay = self.rng.exponential(SECONDS_PER_DAY / rate)
        self.queue.schedule_in(
            delay, lambda: self._start_type_surge(state), label="type-surge"
        )

    def _start_type_surge(self, state: TypeDemandState) -> None:
        magnitude = min(
            1.2, self.regime.type_surge_scale * (1.0 + self.rng.pareto(2.2))
        )
        state.surges.append(self._make_surge(magnitude))
        self._schedule_type_surge(state)

    def _schedule_family_surge(self) -> None:
        rate = self.regime.family_surge_rate_per_day
        if rate <= 0:
            return
        delay = self.rng.exponential(SECONDS_PER_DAY / rate)
        self.queue.schedule_in(delay, self._start_family_surge, label="family-surge")

    def _start_family_surge(self) -> None:
        magnitude = self.regime.family_surge_scale * (1.0 + self.rng.pareto(2.5))
        self.add_family_surge(magnitude)
        self._schedule_family_surge()

    def add_family_surge(self, magnitude: float) -> None:
        """Apply a family-wide surge: every type is hit, scaled by its
        susceptibility (so only a subset usually saturates)."""
        for state in self.type_states.values():
            scaled = min(1.2, magnitude * state.susceptibility)
            if scaled > 0.01:
                state.surges.append(self._make_surge(scaled))

    def add_type_surge(self, instance_type: str, magnitude: float) -> Surge:
        """Inject a surge on one type now (tests and scenarios)."""
        state = self.type_states[instance_type]
        surge = self._make_surge(min(1.2, magnitude))
        state.surges.append(surge)
        return surge

    # -- spot demand events -----------------------------------------------------
    # Burst and lull arrivals are independent Poisson processes per
    # market; scheduling them as one *superposed* process per pool (rate
    # = per-market rate x market count, victim drawn uniformly) is
    # statistically identical and keeps the event queue small: two live
    # events per pool instead of two per market.
    def _schedule_pool_burst(self) -> None:
        rate = self.regime.spot_burst_rate_per_day * len(self.market_states)
        if rate <= 0:
            return
        delay = self.rng.exponential(SECONDS_PER_DAY / rate)
        self.queue.schedule_in(delay, self._start_burst, label="spot-burst")

    def _start_burst(self) -> None:
        index = self.rng.integers(0, len(self.market_states))
        state = self.market_states[index]
        now = self.queue.clock.now
        state.burst_until = now + self.rng.exponential(2400.0)
        # Burst strength shifts demand into the high-bid tail.  Bursts
        # are frequent and mostly benign (no on-demand pressure), which
        # is why the paper's spike/unavailability correlation is only
        # partial; their tail is lighter than squeeze-induced spikes,
        # so the correlation strengthens with spike size.
        state.burst_strength = self.rng.lognormal(1.1, 0.8)
        self._mk_burst_until[index] = state.burst_until
        self._mk_burst_strength[index] = state.burst_strength
        self._schedule_pool_burst()

    def _schedule_pool_lull(self) -> None:
        rate = self.regime.spot_lull_rate_per_day * len(self.market_states)
        if rate <= 0:
            return
        delay = self.rng.exponential(SECONDS_PER_DAY / rate)
        self.queue.schedule_in(delay, self._start_lull, label="spot-lull")

    def _start_lull(self) -> None:
        index = self.rng.integers(0, len(self.market_states))
        state = self.market_states[index]
        now = self.queue.clock.now
        state.lull_until = now + self.rng.exponential(self.regime.lull_duration_mean_s)
        self._mk_lull_until[index] = state.lull_until
        self._schedule_pool_lull()

    # -- the tick -----------------------------------------------------------------
    def _tick(self) -> None:
        now = self.queue.clock.now
        self._apply_on_demand(now)
        self._clear_spot_markets(now)
        self.queue.schedule_in(self.tick_interval, self._tick, label="tick")

    def _shared_cycles(self, now: float) -> float:
        regime = self.regime
        hours = now / 3600.0 + regime.diurnal_phase_hours
        diurnal = regime.diurnal_amplitude * math.sin(2 * math.pi * hours / 24.0)
        weekly = regime.weekly_amplitude * math.sin(
            2 * math.pi * now / SECONDS_PER_WEEK
        )
        return diurnal + weekly

    def type_target_fraction(self, state: TypeDemandState, now: float) -> float:
        """Target occupancy of one type as a fraction of its sub-bound.

        Draws fresh AR(1) noise from the pool's event stream; the batch
        tick computes the same quantity inline from its block draws, so
        this method is for scenarios and tests that poke a single type.
        """
        cycles = self._shared_cycles(now)
        state.noise = 0.9 * state.noise + self.rng.normal(
            0.0, self.regime.noise_sigma
        )
        state.surges = [s for s in state.surges if s.end > now]
        surge_level = sum(s.level_at(now) for s in state.surges)
        return state.base_utilization * (1.0 + cycles) + state.noise + surge_level

    def _apply_on_demand(self, now: float) -> None:
        pool = self.pool
        cycles = self._shared_cycles(now)
        states = self._type_list
        # Tick RNG block 1: one AR(1) noise innovation per type.
        noise = self._tick_rng.normals(len(states), 0.0, self.regime.noise_sigma)
        for i, state in enumerate(states):
            state.noise = 0.9 * state.noise + float(noise[i])
            if state.surges:
                state.surges = [s for s in state.surges if s.end > now]
                surge_level = sum(s.level_at(now) for s in state.surges)
            else:
                surge_level = 0.0
            target_frac = (
                state.base_utilization * (1.0 + cycles) + state.noise + surge_level
            )
            state.overflow = min(0.5, max(0.0, target_frac - 1.0))
            self._type_overflow[i] = state.overflow
            target_units = int(
                round(min(max(target_frac, 0.0), 1.0) * state.bound_units)
            )
            delta = target_units - state.background_od_units
            if delta > 0:
                grant = min(delta, pool.type_headroom(state.instance_type))
                if grant > 0:
                    preemption = pool.allocate_on_demand(grant, state.instance_type)
                    state.background_od_units += grant
                    self._notify_preemption(preemption)
            elif delta < 0:
                release = min(-delta, state.background_od_units)
                if release > 0:
                    pool.release_on_demand(release, state.instance_type)
                    state.background_od_units -= release

    def _notify_preemption(self, preemption: Preemption) -> None:
        if preemption.interactive_units and self.on_interactive_preemption:
            self.on_interactive_preemption(self.pool, preemption.interactive_units)

    # -- spot clearing ---------------------------------------------------------------
    def _clear_spot_markets(self, now: float) -> None:
        pool = self.pool
        supply_units = pool.spot_capacity - pool.interactive_spot_units
        prices, counts, supply = self._build_bid_matrix(now, supply_units)
        if self.vectorized:
            fulfilled = self._clear_markets_batch(now, prices, counts, supply)
        else:
            fulfilled = self._clear_markets_scalar(now, prices, counts, supply)
        background_total = int((fulfilled * self._mk_units_int).sum())
        background_total = min(
            background_total, pool.spot_capacity - pool.interactive_spot_units
        )
        pool.set_background_spot(background_total)
        if self.on_market_cleared is not None:
            for state in self.market_states:
                self.on_market_cleared(state.market)

    def _build_bid_matrix(
        self, now: float, supply_units: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """This tick's bid stacks for every market, as columns.

        Returns ``(prices, counts, supply_instances)`` where the first
        two are ``(markets, tiers)`` matrices (tier prices strictly
        ascending, already rounded and clamped to the bid cap) and the
        third is each market's supply share in instances.
        """
        calm_units = self.pool.total_units * 0.35
        squeeze = max(0.0, 1.0 - supply_units / calm_units) if calm_units else 0.0
        # Squeezed supply is withdrawn unevenly: exposed markets lose
        # their share first while protected ones keep theirs, so only a
        # subset of a family's markets spikes in any one squeeze.
        if squeeze > 0.0:
            effective = self._mk_share * np.exp(-3.0 * squeeze * self._mk_exposure)
            shares = effective / (effective.sum() or 1.0)
        else:
            shares = self._mk_share
        share_units = supply_units * shares
        supply = np.maximum(
            0, (share_units // self._mk_units).astype(np.int64)
        )

        # Tick RNG blocks 2-5, in this fixed order (a documented stream
        # change from the pre-vectorized per-market scalar draws).
        n = len(self.market_states)
        quantity_draw = self._tick_rng.lognormals(n, 0.0, 0.10)
        lull_draw = self._tick_rng.uniforms(n, 0.25, 0.80)
        count_noise = self._tick_rng.lognormals((n, _TIERS), 0.0, 0.15)
        price_jitter = self._tick_rng.uniforms((n, _TIERS), 0.92, 1.08)

        quantity_factor = self.regime.spot_quantity_factor * quantity_draw
        lulled = self._mk_lull_until > now
        if lulled.any():
            quantity_factor = np.where(
                lulled, quantity_factor * lull_draw, quantity_factor
            )
        base_quantity = quantity_factor * self._mk_anchor

        burst = np.where(self._mk_burst_until > now, self._mk_burst_strength, 0.0)
        # High-tier extra demand: bid wars (bursts) plus the on-demand
        # overflow fail-over from this market's own type.  Both bid at
        # or above the on-demand price.
        overflow = self._type_overflow[self._mk_type_idx] * np.minimum(
            2.0, self._mk_exposure
        )
        high_extra = self._mk_anchor * (0.25 * burst + 1.6 * overflow)

        quantity = (
            base_quantity[:, None] * _WEIGHTS + high_extra[:, None] * _HIGH_WEIGHTS
        )
        counts = np.rint(quantity * count_noise).astype(np.int64)
        prices = np.round(self._mk_od_price[:, None] * _GRID * price_jitter, 4)
        np.minimum(prices, self._mk_max_bid[:, None], out=prices)
        return prices, counts, supply

    def _clear_markets_batch(
        self,
        now: float,
        prices: np.ndarray,
        counts: np.ndarray,
        supply: np.ndarray,
    ) -> np.ndarray:
        """Clear every market's auction with array operations.

        Tier prices ascend within a row, so the descending bid stack is
        the reversed row and the marginal (lowest winning) bid is the
        first reversed tier whose cumulative demand exceeds supply —
        exactly what :meth:`SpotMarket.clear` finds by iteration.
        """
        counts_desc = counts[:, ::-1]
        prices_desc = prices[:, ::-1]
        cumulative = np.cumsum(counts_desc, axis=1)
        demanded = cumulative[:, -1]
        fulfilled = np.minimum(supply, demanded)
        constrained = demanded > supply
        # argmax finds the first True; rows with no True (unconstrained)
        # are masked off through `constrained` below.
        marginal_idx = (cumulative > supply[:, None]).argmax(axis=1)
        marginal = prices_desc[np.arange(len(supply)), marginal_idx]
        clearing = np.where(constrained, marginal, self._mk_floor)
        np.maximum(clearing, self._mk_floor, out=clearing)
        np.minimum(clearing, self._mk_max_bid, out=clearing)
        # Withholding is judged on the clamped (pre-rounding) level,
        # matching SpotMarket.clear.
        withheld = (demanded < supply * GLUT_DEMAND_RATIO) & (
            clearing <= self._mk_withhold
        )
        clearing = np.round(clearing, 4)

        for i, state in enumerate(self.market_states):
            state.market.set_bid_columns(prices[i], counts[i])
            state.market.record_clearing(
                ClearingResult(
                    time=now,
                    clearing_price=float(clearing[i]),
                    fulfilled_instances=int(fulfilled[i]),
                    demanded_instances=int(demanded[i]),
                    supply_instances=int(supply[i]),
                    capacity_constrained=bool(constrained[i]),
                    withheld=bool(withheld[i]),
                )
            )
        return fulfilled

    def _clear_markets_scalar(
        self,
        now: float,
        prices: np.ndarray,
        counts: np.ndarray,
        supply: np.ndarray,
    ) -> np.ndarray:
        """Reference path: the same stacks through the object auction."""
        fulfilled = np.zeros(len(self.market_states), dtype=np.int64)
        for i, state in enumerate(self.market_states):
            state.market.set_bids(
                [
                    Bid(float(p), int(c))
                    for p, c in zip(prices[i], counts[i])
                    if c > 0
                ]
            )
            result = state.market.clear(now, int(supply[i]))
            fulfilled[i] = result.fulfilled_instances
        return fulfilled


class RegionalSurgeCoordinator:
    """Poisson process of correlated surges per (region, family).

    A regional surge fires a family surge in most (not all) availability
    zones of the region, modelling EC2 spreading zone-agnostic demand
    across zones.
    """

    def __init__(
        self,
        region: str,
        family: str,
        processes: list[PoolDemandProcess],
        rng: RngStream,
        queue: EventQueue,
    ) -> None:
        if not processes:
            raise ValueError("regional coordinator needs at least one pool process")
        self.region = region
        self.family = family
        self.processes = processes
        self.rng = rng
        self.queue = queue
        self.regime = processes[0].regime

    def start(self) -> None:
        self._schedule_next()

    def _schedule_next(self) -> None:
        rate = self.regime.regional_surge_rate_per_day
        if rate <= 0:
            return
        delay = self.rng.exponential(SECONDS_PER_DAY / rate)
        self.queue.schedule_in(delay, self._fire, label=f"regional-surge/{self.region}")

    def _fire(self) -> None:
        base = self.regime.regional_surge_scale * (1.0 + self.rng.pareto(2.8))
        for process in self.processes:
            if not self.rng.bernoulli(self.regime.regional_membership):
                continue
            magnitude = min(1.0, base * self.rng.uniform(0.6, 1.3))
            process.add_family_surge(magnitude)
        self._schedule_next()


def build_demand(
    catalog: Catalog,
    pools: dict[tuple[str, str], CapacityPool],
    markets: dict[tuple[str, str, str], SpotMarket],
    rng: RngStream,
    queue: EventQueue,
    tick_interval: float = DEFAULT_TICK_INTERVAL,
    on_interactive_preemption: Callable[[CapacityPool, int], None] | None = None,
    on_market_cleared: Callable[[SpotMarket], None] | None = None,
    regimes: dict[str, RegionRegime] | None = None,
    vectorized: bool = True,
) -> tuple[list[PoolDemandProcess], list[RegionalSurgeCoordinator]]:
    """Construct pool processes and regional coordinators for a fleet."""
    regime_map = regimes or REGION_REGIMES
    processes: list[PoolDemandProcess] = []
    by_region_family: dict[tuple[str, str], list[PoolDemandProcess]] = {}
    for (az, family), pool in pools.items():
        pool_markets = [
            m for key, m in markets.items() if key[0] == az
            and catalog.family_of(key[1]) == family
        ]
        region = catalog.region_of_zone(az)
        regime = regime_map.get(region, regime_for(region))
        process = PoolDemandProcess(
            pool,
            regime,
            pool_markets,
            rng.child(f"pool/{az}/{family}"),
            queue,
            tick_interval,
            on_interactive_preemption,
            on_market_cleared,
            vectorized=vectorized,
        )
        processes.append(process)
        by_region_family.setdefault((region, family), []).append(process)

    coordinators = [
        RegionalSurgeCoordinator(
            region, family, procs, rng.child(f"regional/{region}/{family}"), queue
        )
        for (region, family), procs in sorted(by_region_family.items())
    ]
    return processes, coordinators

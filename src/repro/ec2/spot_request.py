"""Spot instance request lifecycle (Figure 3.2 of the paper).

A spot request is evaluated (``pending-evaluation``), where it can be
denied with ``price-too-low``, ``capacity-not-available``,
``capacity-oversubscribed``, ``bad-parameters`` or ``system-error``; an
accepted request waits in ``pending-fulfillment`` until fulfilled, after
which the backing instance may be revoked by price
(``marked-for-termination`` then ``instance-terminated-by-price``),
terminated by the user, or the request cancelled.  Every status change
is timestamped, exactly as the prototype logged them to its database.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common import errors
from repro.common.errors import InvalidStateTransition


class SpotRequestState(str, enum.Enum):
    """Top-level request states."""

    OPEN = "open"
    ACTIVE = "active"
    CLOSED = "closed"
    CANCELLED = "cancelled"
    FAILED = "failed"


# Status codes (finer-grained than states, per Figure 3.2).
HELD_STATUSES = frozenset(
    {
        errors.STATUS_CAPACITY_NOT_AVAILABLE,
        errors.STATUS_CAPACITY_OVERSUBSCRIBED,
        errors.STATUS_PRICE_TOO_LOW,
    }
)

TERMINAL_STATUSES = frozenset(
    {
        errors.STATUS_BAD_PARAMETERS,
        errors.STATUS_SYSTEM_ERROR,
        errors.STATUS_CANCELED_BEFORE_FULFILLMENT,
        errors.STATUS_REQUEST_CANCELED_INSTANCE_RUNNING,
        errors.STATUS_TERMINATED_BY_PRICE,
        errors.STATUS_TERMINATED_BY_USER,
    }
)


@dataclass
class SpotRequest:
    """One spot instance request with its full status history."""

    request_id: str
    instance_type: str
    availability_zone: str
    product: str
    bid_price: float
    create_time: float
    state: SpotRequestState = SpotRequestState.OPEN
    status: str = errors.STATUS_PENDING_EVALUATION
    status_history: list[tuple[float, str]] = field(default_factory=list)
    instance_id: str | None = None
    fulfill_time: float | None = None
    close_time: float | None = None

    def __post_init__(self) -> None:
        if not self.status_history:
            self.status_history.append((self.create_time, self.status))

    def _set_status(self, status: str, now: float) -> None:
        self.status = status
        self.status_history.append((now, status))

    # -- evaluation outcomes ----------------------------------------------
    def hold(self, status: str, now: float) -> None:
        """Hold the request open with one of the held statuses."""
        if status not in HELD_STATUSES:
            raise InvalidStateTransition(f"not a holdable status: {status}")
        if self.state is not SpotRequestState.OPEN:
            raise InvalidStateTransition(
                f"{self.request_id}: cannot hold a {self.state.value} request"
            )
        self._set_status(status, now)

    def begin_fulfillment(self, now: float) -> None:
        """Evaluation accepted the bid; request is awaiting capacity grant."""
        if self.state is not SpotRequestState.OPEN:
            raise InvalidStateTransition(
                f"{self.request_id}: cannot fulfil a {self.state.value} request"
            )
        self._set_status(errors.STATUS_PENDING_FULFILLMENT, now)

    def fulfill(self, instance_id: str, now: float) -> None:
        """An instance was launched for this request."""
        if self.state is not SpotRequestState.OPEN:
            raise InvalidStateTransition(
                f"{self.request_id}: cannot fulfil a {self.state.value} request"
            )
        self.state = SpotRequestState.ACTIVE
        self.instance_id = instance_id
        self.fulfill_time = now
        self._set_status(errors.STATUS_FULFILLED, now)

    def fail(self, status: str, now: float) -> None:
        """Permanently fail the request (bad parameters, system error)."""
        if self.state not in (SpotRequestState.OPEN,):
            raise InvalidStateTransition(
                f"{self.request_id}: cannot fail a {self.state.value} request"
            )
        self.state = SpotRequestState.FAILED
        self.close_time = now
        self._set_status(status, now)

    # -- post-fulfillment outcomes ------------------------------------------
    def mark_for_termination(self, now: float) -> None:
        """Two-minute revocation warning before a price-triggered kill."""
        if self.state is not SpotRequestState.ACTIVE:
            raise InvalidStateTransition(
                f"{self.request_id}: cannot mark a {self.state.value} request"
            )
        self._set_status(errors.STATUS_MARKED_FOR_TERMINATION, now)

    def terminate_by_price(self, now: float) -> None:
        """The spot price rose above the bid; instance revoked."""
        if self.state is not SpotRequestState.ACTIVE:
            raise InvalidStateTransition(
                f"{self.request_id}: cannot revoke a {self.state.value} request"
            )
        self.state = SpotRequestState.CLOSED
        self.close_time = now
        self._set_status(errors.STATUS_TERMINATED_BY_PRICE, now)

    def terminate_by_user(self, now: float) -> None:
        """The user terminated the backing instance."""
        if self.state is not SpotRequestState.ACTIVE:
            raise InvalidStateTransition(
                f"{self.request_id}: cannot terminate a {self.state.value} request"
            )
        self.state = SpotRequestState.CLOSED
        self.close_time = now
        self._set_status(errors.STATUS_TERMINATED_BY_USER, now)

    def cancel(self, now: float) -> None:
        """Cancel the request (instance, if any, keeps running)."""
        if self.state is SpotRequestState.OPEN:
            self.state = SpotRequestState.CANCELLED
            self.close_time = now
            self._set_status(errors.STATUS_CANCELED_BEFORE_FULFILLMENT, now)
        elif self.state is SpotRequestState.ACTIVE:
            self.state = SpotRequestState.CANCELLED
            self.close_time = now
            self._set_status(errors.STATUS_REQUEST_CANCELED_INSTANCE_RUNNING, now)
        else:
            raise InvalidStateTransition(
                f"{self.request_id}: cannot cancel a {self.state.value} request"
            )

    # -- queries -------------------------------------------------------------
    @property
    def is_open(self) -> bool:
        return self.state is SpotRequestState.OPEN

    @property
    def is_active(self) -> bool:
        return self.state is SpotRequestState.ACTIVE

    @property
    def was_revoked(self) -> bool:
        return self.status == errors.STATUS_TERMINATED_BY_PRICE

    def time_to_revocation(self) -> float | None:
        """Seconds from fulfillment to price-triggered revocation."""
        if not self.was_revoked or self.fulfill_time is None:
            return None
        assert self.close_time is not None
        return self.close_time - self.fulfill_time

"""Per-market spot auction and price history.

A *market* is one (availability zone, instance type, product) triple.
Each market clears like the second-price-style auction the paper
describes: standing bids are sorted descending, supply comes from the
shared :class:`~repro.ec2.pool.CapacityPool`, and the published spot
price is the lowest winning bid (or the market's floor price when
supply exceeds demand).

Two EC2 realities the paper leans on are modelled explicitly:

* **Publication lag** — a new spot price takes 20-40 s to appear in the
  price history, so the *intrinsic* bid needed to win can exceed the
  published price (Figure 5.2; found by SpotLight's BidSpread probe).
* **Low-price withholding** — EC2 has no incentive to sell below its
  operating cost, so when the clearing price would fall below the
  floor, new spot requests are held with ``capacity-not-available``
  (the Figure 5.10/5.11 behaviour).

Price history is stored column-wise (two packed ``array('d')`` columns
of times and prices) rather than as one tuple per change: a three-month
paper-scale run records millions of price changes, and the struct-of-
arrays layout keeps them compact and lets queries bisect on the time
column directly.  Background bid stacks can likewise be supplied as
columns by the vectorized demand engine; ``Bid`` objects are only
materialized if someone asks for them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.timeseries import TimeSeries
from repro.ec2.catalog import MAX_BID_MULTIPLE

# Hard price floor as a fraction of the on-demand price.
DEFAULT_FLOOR_FRACTION = 0.03
# Below this fraction of the on-demand price EC2 would rather withhold
# capacity than sell it (it cannot cover its operating cost — the
# explanation the paper gives for Figure 5.10).
DEFAULT_WITHHOLD_FRACTION = 0.08
# A market is in "glut" when demand covers less than this share of
# supply; withholding only happens in a deep glut.
GLUT_DEMAND_RATIO = 0.5
# Seconds for a new spot price to propagate into the public history.
DEFAULT_PUBLICATION_LAG = 30.0
# Two-minute revocation warning (EC2 policy since January 2015).
REVOCATION_WARNING_SECONDS = 120.0


@dataclass(frozen=True)
class Bid:
    """A standing (virtual) demand bid: ``count`` instances at ``price``."""

    price: float
    count: int


@dataclass
class ClearingResult:
    """Outcome of one auction evaluation."""

    time: float
    clearing_price: float  # max(floor, lowest winning bid / marginal bid)
    fulfilled_instances: int
    demanded_instances: int
    supply_instances: int
    capacity_constrained: bool  # demand exceeded supply
    withheld: bool  # glut at an uneconomic price: capacity withheld


class SpotMarket:
    """One spot market: bid stack, clearing, price history, revocations."""

    def __init__(
        self,
        availability_zone: str,
        instance_type: str,
        product: str,
        on_demand_price: float,
        units: int,
        floor_fraction: float = DEFAULT_FLOOR_FRACTION,
        withhold_fraction: float = DEFAULT_WITHHOLD_FRACTION,
        publication_lag: float = DEFAULT_PUBLICATION_LAG,
    ) -> None:
        if on_demand_price <= 0:
            raise ValueError(f"on-demand price must be positive: {on_demand_price}")
        if units <= 0:
            raise ValueError(f"instance units must be positive: {units}")
        if withhold_fraction < floor_fraction:
            raise ValueError("withhold price cannot sit below the floor")
        self.availability_zone = availability_zone
        self.instance_type = instance_type
        self.product = product
        self.on_demand_price = on_demand_price
        self.units = units
        self.floor_price = round(on_demand_price * floor_fraction, 4)
        self.withhold_price = round(on_demand_price * withhold_fraction, 4)
        self.max_bid = on_demand_price * MAX_BID_MULTIPLE
        self.publication_lag = publication_lag

        self._bids: list[Bid] | None = []  # background demand, any order
        self._bid_prices: np.ndarray | None = None  # columnar alternative
        self._bid_counts: np.ndarray | None = None
        self._prices = TimeSeries()  # price-change events, columnar
        self._last_clearing: ClearingResult | None = None
        # Cleared background occupancy, in instances, from the last evaluation.
        self.background_instances = 0

    # -- identity ----------------------------------------------------------
    @property
    def market_key(self) -> tuple[str, str, str]:
        return (self.availability_zone, self.instance_type, self.product)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpotMarket({self.availability_zone}, {self.instance_type}, "
            f"{self.product}, price={self.current_price():.4f})"
        )

    # -- demand management ----------------------------------------------------
    def set_bids(self, bids: list[Bid]) -> None:
        """Replace the standing background bid stack."""
        for bid in bids:
            if bid.price < 0 or bid.count < 0:
                raise ValueError(f"malformed bid: {bid}")
        # Bids above the cap are clamped, mirroring EC2's bid-cap policy.
        self._bids = [
            Bid(min(b.price, self.max_bid), b.count) for b in bids if b.count > 0
        ]
        self._bid_prices = None
        self._bid_counts = None

    def set_bid_columns(self, prices: np.ndarray, counts: np.ndarray) -> None:
        """Replace the bid stack with pre-validated columns.

        The vectorized demand engine hands each market one row of its
        batch-built (price, count) matrix; prices are already rounded
        and clamped to the bid cap.  ``Bid`` objects are materialized
        lazily, only if something asks for them.
        """
        self._bid_prices = prices
        self._bid_counts = counts
        self._bids = None

    @property
    def bids(self) -> list[Bid]:
        """The standing bid stack (materialized on demand)."""
        if self._bids is None:
            prices = self._bid_prices
            counts = self._bid_counts
            self._bids = [
                Bid(float(p), int(c))
                for p, c in zip(prices, counts)  # type: ignore[arg-type]
                if c > 0
            ]
        return self._bids

    def demand_at(self, price: float) -> int:
        """Total instances demanded at or above ``price``."""
        if self._bids is None and self._bid_prices is not None:
            mask = self._bid_prices >= price
            return int(self._bid_counts[mask].sum())
        return sum(b.count for b in self.bids if b.price >= price)

    # -- auction -------------------------------------------------------------
    def clear(self, now: float, supply_instances: int) -> ClearingResult:
        """Run the uniform-price auction against ``supply_instances``.

        Returns the clearing result and records the new actual price.
        The caller (platform/demand process) is responsible for applying
        ``fulfilled_instances`` to the capacity pool.
        """
        if supply_instances < 0:
            raise ValueError(f"negative supply: {supply_instances}")
        stack = sorted(self.bids, key=lambda b: b.price, reverse=True)
        demanded = sum(b.count for b in stack)

        fulfilled = 0
        clearing = self.floor_price
        remaining = supply_instances
        marginal_bid: float | None = None
        for bid in stack:
            if remaining <= 0:
                marginal_bid = bid.price if marginal_bid is None else marginal_bid
                break
            take = min(bid.count, remaining)
            fulfilled += take
            remaining -= take
            if take < bid.count:
                # Price is set by the first bid that could not be fully
                # served — the marginal (lowest winning) level.
                marginal_bid = bid.price
        if demanded > supply_instances and marginal_bid is not None:
            clearing = marginal_bid
        elif demanded > supply_instances:
            # Supply was zero: price is the top standing bid.
            clearing = stack[0].price if stack else self.floor_price
        clearing = max(clearing, self.floor_price)
        clearing = min(clearing, self.max_bid)
        withheld = (
            demanded < supply_instances * GLUT_DEMAND_RATIO
            and clearing <= self.withhold_price
        )

        result = ClearingResult(
            time=now,
            clearing_price=round(clearing, 4),
            fulfilled_instances=fulfilled,
            demanded_instances=demanded,
            supply_instances=supply_instances,
            capacity_constrained=demanded > supply_instances,
            withheld=withheld,
        )
        self.record_clearing(result)
        return result

    def record_clearing(self, result: ClearingResult) -> None:
        """Record an externally computed auction outcome.

        The batch clearing path in :mod:`repro.ec2.demand` evaluates all
        of a pool's auctions in one set of array operations and then
        records each market's outcome here; :meth:`clear` goes through
        the same bookkeeping so both paths stay in lockstep.
        """
        self._record_price(result.time, result.clearing_price)
        self._last_clearing = result
        self.background_instances = result.fulfilled_instances

    def _record_price(self, now: float, price: float) -> None:
        series = self._prices
        if series.times and series.times[-1] > now:
            raise ValueError("price events must be recorded in time order")
        if series.times and series.values[-1] == price:
            return  # EC2 only records changes
        series.append(now, price)

    # -- price queries ------------------------------------------------------
    def current_price(self, now: float | None = None) -> float:
        """The *actual* market price in force (what a bid must beat)."""
        if not self._prices.times:
            return self.floor_price
        if now is None:
            return self._prices.values[-1]
        price = self._prices.value_at_or_before(now)
        return self.floor_price if price is None else price

    def published_price(self, now: float) -> float:
        """The price visible in the public history (lagged 20-40 s)."""
        return self.current_price(now - self.publication_lag)

    def price_history(
        self, start: float | None = None, end: float | None = None
    ) -> list[tuple[float, float]]:
        """Price-change events in ``[start, end]`` (as published)."""
        lo, hi = self._prices.bounds(start, end)
        return list(zip(self._prices.times[lo:hi], self._prices.values[lo:hi]))

    def price_arrays(
        self, start: float | None = None, end: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Columnar snapshot of the price history: ``(times, prices)``
        as numpy arrays (copies — safe to hold while the simulation
        continues)."""
        return self._prices.arrays(start, end)

    @property
    def last_clearing(self) -> ClearingResult | None:
        return self._last_clearing

    # -- probe-request evaluation ----------------------------------------------
    def evaluate_bid(
        self,
        bid_price: float,
        now: float,
        available_spot_units: int,
        required_price: float | None = None,
    ) -> str:
        """Classify a single-instance spot request against the market.

        ``available_spot_units`` is the spot capacity a winning bid can
        occupy (it may displace a marginal background winner, so this
        is the pool's spot *capacity* net of interactive instances, not
        merely its free units).  ``required_price`` lets the platform
        apply an urgency premium above the published price — the
        intrinsic-price effect of Figure 5.2.

        Returns one of the Figure 3.2 held statuses, or the empty
        string meaning the bid wins.
        """
        from repro.common import errors  # local import avoids a cycle

        price = required_price if required_price is not None else self.current_price(now)
        last = self._last_clearing
        if last is not None and last.withheld:
            # EC2 withholds capacity rather than selling under cost.
            return errors.STATUS_CAPACITY_NOT_AVAILABLE
        if available_spot_units < self.units:
            return errors.STATUS_CAPACITY_NOT_AVAILABLE
        if bid_price < price:
            return errors.STATUS_PRICE_TOO_LOW
        if bid_price == price and last is not None and last.capacity_constrained:
            # Ties at the clearing level when the market is constrained
            # cannot all be served.
            return errors.STATUS_CAPACITY_OVERSUBSCRIBED
        return ""

"""Shared capacity pool per (availability zone, family) — Figure 2.2.

The paper's central resource model: reserved, on-demand, and spot
servers in one market family are carved from the *same* pool of
physical machines.  The accounting rules it spells out:

* on-demand supply is bounded above by ``total - reserved_granted``
  (every granted reservation must be startable at any moment, so its
  capacity can never be sold on-demand — only lent to spot);
* spot supply is ``total - reserved_running - on_demand`` (spot may use
  idle machines *and* machines backing granted-but-not-running
  reservations);
* a new on-demand or reserved start may therefore require revoking spot
  instances to free capacity.

Spot occupancy is split into *background* units (the re-cleared
aggregate of virtual market demand, see :mod:`repro.ec2.demand`) and
*interactive* units (real tracked instances, e.g. SpotLight probes).
Preemption always takes background capacity first, so interactive
revocations are rare and explicit.

All quantities are in normalised *units* (an ``m3.large`` is 2 units,
an ``m3.2xlarge`` 8, ...), so mixed-size allocation is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import InsufficientInstanceCapacityError


@dataclass(frozen=True)
class Preemption:
    """How much spot capacity an allocation displaced."""

    background_units: int = 0
    interactive_units: int = 0

    @property
    def total_units(self) -> int:
        return self.background_units + self.interactive_units


@dataclass
class PoolSnapshot:
    """Point-in-time accounting of a pool, for logging/analysis."""

    time: float
    total_units: int
    reserved_granted_units: int
    reserved_running_units: int
    on_demand_units: int
    spot_units: int

    @property
    def idle_units(self) -> int:
        return (
            self.total_units
            - self.reserved_running_units
            - self.on_demand_units
            - self.spot_units
        )

    @property
    def utilization(self) -> float:
        used = self.reserved_running_units + self.on_demand_units + self.spot_units
        return used / self.total_units if self.total_units else 0.0


@dataclass
class CapacityPool:
    """Unit-level accounting for one (availability zone, family) pool.

    On-demand capacity is additionally partitioned into per-instance-type
    sub-bounds (set via :meth:`set_type_bound`): the paper's measurements
    show that one type in a family can be unavailable while its siblings
    stay available, so the platform evidently does not let a single type
    consume the family's entire on-demand headroom.  A request must fit
    both its type's sub-bound and the family-wide Figure 2.2 bound.
    """

    availability_zone: str
    family: str
    total_units: int
    reserved_granted_units: int = 0
    reserved_running_units: int = 0
    on_demand_units: int = 0
    background_spot_units: int = 0
    interactive_spot_units: int = 0
    snapshots: list[PoolSnapshot] = field(default_factory=list)
    od_type_bounds: dict[str, int] = field(default_factory=dict)
    od_units_by_type: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.total_units <= 0:
            raise ValueError(f"pool must have positive capacity: {self.total_units}")
        self._check_invariants()

    # -- per-type on-demand sub-bounds -----------------------------------
    def set_type_bound(self, instance_type: str, units: int) -> None:
        """Set (or update) the on-demand sub-bound for one type."""
        if units < 0:
            raise ValueError(f"type bound must be non-negative: {units}")
        self.od_type_bounds[instance_type] = units
        self.od_units_by_type.setdefault(instance_type, 0)

    def type_headroom(self, instance_type: str) -> int:
        """On-demand units still available to ``instance_type``.

        The minimum of the type's sub-bound headroom and the family-wide
        bound headroom; types with no configured sub-bound use the
        family bound alone.
        """
        family_headroom = self.on_demand_headroom
        bound = self.od_type_bounds.get(instance_type)
        if bound is None:
            return family_headroom
        used = self.od_units_by_type.get(instance_type, 0)
        return min(bound - used, family_headroom)

    # -- derived quantities ------------------------------------------------
    @property
    def spot_units(self) -> int:
        """All spot occupancy, background plus interactive."""
        return self.background_spot_units + self.interactive_spot_units

    @property
    def idle_units(self) -> int:
        """Physically unoccupied units."""
        return (
            self.total_units
            - self.reserved_running_units
            - self.on_demand_units
            - self.spot_units
        )

    @property
    def on_demand_headroom(self) -> int:
        """Units still sellable on-demand (upper bound from Figure 2.2)."""
        return self.total_units - self.reserved_granted_units - self.on_demand_units

    @property
    def spot_capacity(self) -> int:
        """Units the spot pool may occupy right now."""
        return self.total_units - self.reserved_running_units - self.on_demand_units

    @property
    def spot_free_units(self) -> int:
        """Spot capacity not already running spot instances."""
        return self.spot_capacity - self.spot_units

    def _check_invariants(self) -> None:
        counters = (
            self.reserved_granted_units,
            self.reserved_running_units,
            self.on_demand_units,
            self.background_spot_units,
            self.interactive_spot_units,
        )
        if min(counters) < 0:
            raise AssertionError(f"negative pool counter in {self!r}")
        if self.reserved_running_units > self.reserved_granted_units:
            raise AssertionError(
                f"{self.availability_zone}/{self.family}: more reserved running "
                f"({self.reserved_running_units}) than granted "
                f"({self.reserved_granted_units})"
            )
        occupied = (
            self.reserved_running_units + self.on_demand_units + self.spot_units
        )
        if occupied > self.total_units:
            raise AssertionError(
                f"{self.availability_zone}/{self.family}: oversubscribed "
                f"({occupied} > {self.total_units})"
            )
        if self.reserved_granted_units > self.total_units:
            raise AssertionError(
                f"{self.availability_zone}/{self.family}: granted reservations "
                f"exceed capacity"
            )

    def _preempt_spot(self, shortfall: int) -> Preemption:
        """Free ``shortfall`` units by displacing spot, background first."""
        from_background = min(shortfall, self.background_spot_units)
        self.background_spot_units -= from_background
        from_interactive = min(
            shortfall - from_background, self.interactive_spot_units
        )
        self.interactive_spot_units -= from_interactive
        return Preemption(from_background, from_interactive)

    # -- reserved ------------------------------------------------------------
    def grant_reserved(self, units: int) -> bool:
        """Grant a reservation (capacity promise); False if impossible.

        A reservation can only be backed by capacity not already sold
        on-demand (spot occupancy is fine — spot is preemptible), so the
        grant is refused when it would push granted reservations past
        ``total - on_demand`` and break the Figure 2.2 on-demand bound.
        """
        if units <= 0:
            raise ValueError(f"units must be positive: {units}")
        if self.reserved_granted_units + units + self.on_demand_units > self.total_units:
            return False
        self.reserved_granted_units += units
        self._check_invariants()
        return True

    def release_reservation(self, units: int) -> None:
        """A reservation's term ended; its capacity returns to the pool."""
        if units > self.reserved_granted_units - self.reserved_running_units:
            raise ValueError("cannot release more reservation than is not running")
        self.reserved_granted_units -= units
        self._check_invariants()

    def start_reserved(self, units: int) -> Preemption:
        """Start granted reservations; guaranteed, may preempt spot.

        The preemption's ``interactive_units`` tells the caller how much
        tracked spot capacity it must revoke (the pool books are already
        updated; the caller only marks victims, it must not also call
        :meth:`release_spot` for them).
        """
        if units <= 0:
            raise ValueError(f"units must be positive: {units}")
        if self.reserved_running_units + units > self.reserved_granted_units:
            raise ValueError("cannot start more reserved than granted")
        shortfall = max(0, units - self.idle_units)
        self.reserved_running_units += units
        preemption = self._preempt_spot(shortfall) if shortfall else Preemption()
        self._check_invariants()
        return preemption

    def stop_reserved(self, units: int) -> None:
        if units > self.reserved_running_units:
            raise ValueError("cannot stop more reserved than running")
        self.reserved_running_units -= units
        self._check_invariants()

    # -- on-demand -----------------------------------------------------------
    def can_allocate_on_demand(self, units: int, instance_type: str | None = None) -> bool:
        """Whether an on-demand request for ``units`` is satisfiable."""
        if instance_type is not None:
            return units <= self.type_headroom(instance_type)
        return units <= self.on_demand_headroom

    def allocate_on_demand(
        self, units: int, instance_type: str | None = None
    ) -> Preemption:
        """Allocate on-demand capacity, preempting spot if necessary.

        Raises :class:`InsufficientInstanceCapacityError` when the type's
        sub-bound or the Figure 2.2 family bound is exceeded — the error
        code SpotLight's probes are hunting for.  As with
        :meth:`start_reserved`, any ``interactive_units`` in the result
        have already been removed from the books; the caller only
        revokes the victim instances.
        """
        if units <= 0:
            raise ValueError(f"units must be positive: {units}")
        if not self.can_allocate_on_demand(units, instance_type):
            headroom = (
                self.type_headroom(instance_type)
                if instance_type is not None
                else self.on_demand_headroom
            )
            raise InsufficientInstanceCapacityError(
                f"{self.availability_zone}/{self.family}"
                f"/{instance_type or '*'}: requested {units} units, "
                f"headroom {headroom}"
            )
        shortfall = max(0, units - self.idle_units)
        self.on_demand_units += units
        if instance_type is not None:
            self.od_units_by_type[instance_type] = (
                self.od_units_by_type.get(instance_type, 0) + units
            )
        preemption = self._preempt_spot(shortfall) if shortfall else Preemption()
        self._check_invariants()
        return preemption

    def release_on_demand(self, units: int, instance_type: str | None = None) -> None:
        if units > self.on_demand_units:
            raise ValueError("cannot release more on-demand than allocated")
        if instance_type is not None:
            used = self.od_units_by_type.get(instance_type, 0)
            if units > used:
                raise ValueError(
                    f"cannot release {units} units of {instance_type}; only "
                    f"{used} allocated"
                )
            self.od_units_by_type[instance_type] = used - units
        self.on_demand_units -= units
        self._check_invariants()

    # -- spot ------------------------------------------------------------------
    def can_allocate_spot(self, units: int) -> bool:
        return units <= self.spot_free_units

    def allocate_spot(self, units: int) -> bool:
        """Allocate interactive spot capacity; False when the pool is full."""
        if units <= 0:
            raise ValueError(f"units must be positive: {units}")
        if not self.can_allocate_spot(units):
            return False
        self.interactive_spot_units += units
        self._check_invariants()
        return True

    def release_spot(self, units: int) -> None:
        """Release interactive spot capacity (user/probe termination)."""
        if units > self.interactive_spot_units:
            raise ValueError("cannot release more interactive spot than allocated")
        self.interactive_spot_units -= units
        self._check_invariants()

    def set_background_spot(self, units: int) -> None:
        """Re-clear background (virtual) spot occupancy to ``units``.

        Demand processes re-run the market auctions each tick and call
        this with the newly cleared aggregate; it must fit in the spot
        capacity left over by interactive instances.
        """
        if units < 0:
            raise ValueError(f"units must be non-negative: {units}")
        if units > self.spot_capacity - self.interactive_spot_units:
            raise ValueError(
                f"background spot {units} exceeds free spot capacity "
                f"{self.spot_capacity - self.interactive_spot_units}"
            )
        self.background_spot_units = units
        self._check_invariants()

    # -- bookkeeping -------------------------------------------------------------
    def snapshot(self, now: float) -> PoolSnapshot:
        snap = PoolSnapshot(
            time=now,
            total_units=self.total_units,
            reserved_granted_units=self.reserved_granted_units,
            reserved_running_units=self.reserved_running_units,
            on_demand_units=self.on_demand_units,
            spot_units=self.spot_units,
        )
        self.snapshots.append(snap)
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CapacityPool({self.availability_zone}/{self.family}, "
            f"total={self.total_units}, res_granted={self.reserved_granted_units}, "
            f"res_running={self.reserved_running_units}, od={self.on_demand_units}, "
            f"spot={self.spot_units}, idle={self.idle_units})"
        )

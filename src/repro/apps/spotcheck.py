"""SpotCheck — a derivative IaaS cloud on the spot market (Figure 6.1).

SpotCheck (Sharma et al., EuroSys'15) resells nested VMs hosted on spot
servers with an availability SLA.  It bids the on-demand price; when
the spot price rises above it (revocation), it live-migrates the nested
VM to an on-demand server inside EC2's two-minute warning, so the only
downtime is a bounded migration pause — *if* the on-demand fallback is
actually available.

The paper's point: revocations happen exactly when on-demand servers
are least available, so naive SpotCheck delivers ~72-92% availability
instead of four nines.  With SpotLight, SpotCheck picks a fallback
market with uncorrelated availability and recovers ~100%.

This simulation replays a market's price series and measured on-demand
unavailability periods from a :class:`~repro.core.query.SpotLightQuery`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.frontend import QueryFrontend
from repro.core.market_id import MarketID
from repro.core.query import SpotLightQuery
from repro.core.records import ProbeKind

#: Bounded migration pause per fail-over (seconds).  SpotCheck's design
#: achieves ~99.99989% availability, i.e. sub-second pauses; we charge a
#: conservative full second.
MIGRATION_PAUSE_SECONDS = 1.0


@dataclass
class SpotCheckConfig:
    """One SpotCheck deployment to evaluate."""

    market: MarketID
    bid_multiple: float = 1.0  # bid = multiple x on-demand price
    migration_pause: float = MIGRATION_PAUSE_SECONDS
    fallback_poll_interval: float = 300.0  # retry cadence while waiting


@dataclass
class SpotCheckResult:
    """Availability accounting for one run."""

    market: MarketID
    horizon: float
    revocations: int
    failed_failovers: int  # revocations with no on-demand available
    downtime: float

    @property
    def availability(self) -> float:
        if self.horizon <= 0:
            return 1.0
        return max(0.0, 1.0 - self.downtime / self.horizon)


class SpotCheckSimulator:
    """Replay SpotCheck against SpotLight-measured market data.

    Consumes the serving frontend (a bare query engine is wrapped in a
    private frontend, so per-revocation unavailability lookups are
    served from the TTL cache)."""

    def __init__(self, query: QueryFrontend | SpotLightQuery) -> None:
        self.query = (
            query if isinstance(query, QueryFrontend) else QueryFrontend(query)
        )

    # -- revocation extraction ------------------------------------------------
    def revocation_times(
        self, config: SpotCheckConfig, start: float, end: float
    ) -> list[float]:
        """Times the spot price crossed above the bid (revocations)."""
        od = self.query.on_demand_price(config.market)
        bid = od * config.bid_multiple
        crossings: list[float] = []
        above = False
        for when, multiple in self.query.spike_multiples(config.market, start, end):
            price = multiple * od
            if price > bid and not above:
                crossings.append(when)
                above = True
            elif price <= bid:
                above = False
        return crossings

    def _fallback_downtime(
        self,
        fallback: MarketID,
        when: float,
        config: SpotCheckConfig,
        end: float,
    ) -> tuple[float, bool]:
        """Downtime incurred failing over at ``when`` to ``fallback``.

        If the fallback's on-demand pool is unavailable, SpotCheck
        waits (VM paused) until the measured unavailability period ends.
        Returns (downtime_seconds, failover_failed).
        """
        for period in self.query.unavailability_periods(
            fallback, ProbeKind.ON_DEMAND
        ):
            if period.start <= when < period.end:
                wait = min(period.end, end) - when
                return config.migration_pause + wait, True
        return config.migration_pause, False

    # -- policies -------------------------------------------------------------------
    def run_naive(
        self, config: SpotCheckConfig, start: float, end: float
    ) -> SpotCheckResult:
        """The published SpotCheck policy: fall back to the *same*
        market's on-demand servers (assumed always available)."""
        return self._run(config, start, end, chooser=lambda when: config.market)

    def run_with_spotlight(
        self,
        config: SpotCheckConfig,
        start: float,
        end: float,
        candidates: list[MarketID],
    ) -> SpotCheckResult:
        """SpotLight-informed policy: at each revocation, fall back to
        the candidate market (different family/zone) with the least
        measured unavailability that is available *right now*."""
        if not candidates:
            raise ValueError("need at least one fallback candidate")
        ranked = [
            market
            for market, _total in self.query.least_unavailable_markets(candidates)
        ]

        def chooser(when: float) -> MarketID:
            for market in ranked:
                if not self.query.is_unavailable_at(market, when):
                    return market
            return ranked[0]

        return self._run(config, start, end, chooser)

    def _run(self, config, start: float, end: float, chooser) -> SpotCheckResult:
        revocations = self.revocation_times(config, start, end)
        downtime = 0.0
        failed = 0
        for when in revocations:
            fallback = chooser(when)
            dt, failed_failover = self._fallback_downtime(
                fallback, when, config, end
            )
            downtime += dt
            if failed_failover:
                failed += 1
        return SpotCheckResult(
            market=config.market,
            horizon=end - start,
            revocations=len(revocations),
            failed_failovers=failed,
            downtime=min(downtime, end - start),
        )

"""Chapter 6 case studies: SpotCheck and SpotOn.

Both derivative cloud systems run workloads on spot servers and fail
over to on-demand servers on revocation — implicitly assuming on-demand
servers are always available.  SpotLight's data shows they are least
available exactly when spot servers are revoked; these simulations
quantify the damage and the repair (informed fallback selection).
"""

from repro.apps.spotcheck import SpotCheckConfig, SpotCheckSimulator
from repro.apps.spoton import FaultTolerance, JobConfig, SpotOnSimulator

__all__ = [
    "SpotCheckSimulator",
    "SpotCheckConfig",
    "SpotOnSimulator",
    "JobConfig",
    "FaultTolerance",
]

"""SpotOn — a batch computing service for the spot market (Figure 6.2).

SpotOn (Subramanya et al., SoCC'15) runs batch jobs on spot servers
with a fault-tolerance mechanism — periodic checkpointing or
replication — chosen, together with the market, by minimising the
expected cost of Equation 6.1:

        [(1 - Pk) * T + Pk * E(Zk)] * spot_price
    -------------------------------------------------
    (1 - Pk) * T + Pk * (E(Zk) - TL) - (E(Zk)/tau) * Tc

where ``T`` is the job's remaining running time, ``Tc`` the checkpoint
cost, ``tau`` the checkpoint interval, ``Pk`` the probability the job
is revoked before finishing, ``E(Zk)`` the expected time to revocation,
and ``TL`` the expected work lost at a revocation.

On a revocation, SpotOn restarts the job from its last checkpoint on
the corresponding on-demand server — implicitly assuming it is
available.  The paper shows running time inflates 15-72% because it
often is not; SpotLight repairs this by picking an uncorrelated
on-demand fallback.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.rng import RngStream
from repro.core.frontend import QueryFrontend
from repro.core.market_id import MarketID
from repro.core.query import SpotLightQuery
from repro.core.records import ProbeKind


class FaultTolerance(str, enum.Enum):
    CHECKPOINT = "checkpoint"
    REPLICATION = "replication"


@dataclass
class JobConfig:
    """The representative job of Figure 6.2 (defaults from the paper)."""

    running_time: float = 3600.0  # one hour of work
    checkpoint_time: float = 360.0  # 8 GB footprint ~ six minutes
    checkpoint_interval: float = 900.0  # tau
    bid_multiple: float = 1.0  # bid = on-demand price
    restart_overhead: float = 120.0  # reschedule + restore latency

    def __post_init__(self) -> None:
        if self.running_time <= 0:
            raise ValueError(f"running time must be positive: {self.running_time}")
        if self.checkpoint_interval <= 0:
            raise ValueError(f"tau must be positive: {self.checkpoint_interval}")


@dataclass
class JobOutcome:
    """One simulated job execution."""

    start: float
    completion_time: float  # wall-clock seconds to finish
    revoked: bool
    waited_for_on_demand: float  # seconds stalled on unavailable fallback

    @property
    def finished(self) -> bool:
        return self.completion_time < float("inf")


class SpotOnSimulator:
    """Replay SpotOn jobs against SpotLight-measured market data.

    Consumes the serving frontend; a bare query engine is accepted for
    convenience and wrapped in a private frontend, so the app's repeated
    MTTR/mean-price lookups hit the TTL cache instead of recomputing per
    trial.
    """

    def __init__(
        self, query: QueryFrontend | SpotLightQuery, seed: int = 20151005
    ) -> None:
        self.query = (
            query if isinstance(query, QueryFrontend) else QueryFrontend(query)
        )
        self.rng = RngStream(seed, "spoton")

    # -- Equation 6.1 ------------------------------------------------------------
    def expected_cost(
        self,
        market: MarketID,
        job: JobConfig,
        start: float = 0.0,
        end: float | None = None,
    ) -> float:
        """Expected cost per unit of useful work on ``market`` when
        checkpointing, per Equation 6.1."""
        od = self.query.on_demand_price(market)
        bid = od * job.bid_multiple
        spot_price = self.query.mean_price(market, start, end)
        mttr = self.query.mean_time_to_revocation(market, bid, start, end)
        if mttr <= 0:
            return float("inf")
        T = job.running_time
        # P(revoked before completion) with exponential revocations.
        import math

        p_revoked = 1.0 - math.exp(-T / mttr)
        expected_z = min(mttr, T)  # expected time to revocation, capped
        work_lost = min(job.checkpoint_interval, expected_z)
        numerator = ((1.0 - p_revoked) * T + p_revoked * expected_z) * spot_price
        denominator = (
            (1.0 - p_revoked) * T
            + p_revoked * (expected_z - work_lost)
            - (expected_z / job.checkpoint_interval) * job.checkpoint_time
        )
        if denominator <= 0:
            return float("inf")
        return numerator / denominator / 3600.0  # $ per useful hour

    def choose_market(
        self,
        candidates: list[MarketID],
        job: JobConfig,
        start: float = 0.0,
        end: float | None = None,
    ) -> MarketID:
        """SpotOn's brute-force market selection: lowest expected cost."""
        if not candidates:
            raise ValueError("need at least one candidate market")
        return min(
            candidates, key=lambda m: self.expected_cost(m, job, start, end)
        )

    # -- revocation lookup ----------------------------------------------------------
    def _next_revocation(
        self, market: MarketID, bid: float, after: float
    ) -> float | None:
        od = self.query.on_demand_price(market)
        for when, multiple in self.query.spike_multiples(market, after):
            if when <= after:
                continue
            if multiple * od > bid:
                return when
        return None

    def _on_demand_wait(self, market: MarketID, when: float) -> float:
        """Seconds until the market's on-demand pool is available."""
        for period in self.query.unavailability_periods(market, ProbeKind.ON_DEMAND):
            if period.start <= when < period.end:
                return period.end - when
        return 0.0

    # -- job simulation ----------------------------------------------------------------
    def simulate_job(
        self,
        market: MarketID,
        job: JobConfig,
        start: float,
        fallback: MarketID | None = None,
        assume_on_demand_available: bool = False,
    ) -> JobOutcome:
        """Run one checkpointed job starting at ``start``.

        The job runs on the spot market until it finishes or is revoked
        (spot price crosses the bid); on revocation it restarts from the
        last checkpoint on the fallback's on-demand servers (default:
        the same market, SpotOn's published behaviour).  If the fallback
        is unavailable, the job stalls until it recovers — unless
        ``assume_on_demand_available`` replays the paper's (incorrect)
        baseline assumption.
        """
        od = self.query.on_demand_price(market)
        bid = od * job.bid_multiple
        fallback = fallback or market

        # Checkpoint overhead stretches effective execution time.
        overhead_factor = 1.0 + job.checkpoint_time / job.checkpoint_interval
        effective = job.running_time * overhead_factor

        revocation = self._next_revocation(market, bid, start)
        if revocation is None or revocation - start >= effective:
            # Finished on the spot server without interruption.
            return JobOutcome(start, effective, revoked=False, waited_for_on_demand=0.0)

        # Revoked: lose work since the last checkpoint, restart on the
        # fallback's on-demand server and run to completion there.
        ran = revocation - start
        useful = ran / overhead_factor
        kept = (useful // job.checkpoint_interval) * job.checkpoint_interval
        remaining = job.running_time - kept

        wait = 0.0
        if not assume_on_demand_available:
            wait = self._on_demand_wait(fallback, revocation)
        completion = ran + job.restart_overhead + wait + remaining
        return JobOutcome(
            start, completion, revoked=True, waited_for_on_demand=wait
        )

    def average_running_time(
        self,
        market: MarketID,
        job: JobConfig,
        trials: int = 100,
        horizon: tuple[float, float] = (0.0, 7 * 86400.0),
        fallback: MarketID | None = None,
        assume_on_demand_available: bool = False,
    ) -> float:
        """Figure 6.2's metric: mean completion time (hours) over
        ``trials`` jobs started at random times."""
        total = 0.0
        lo, hi = horizon
        span = hi - lo - job.running_time * 3
        if span <= 0:
            raise ValueError("horizon too short for the job length")
        for _ in range(trials):
            start = lo + self.rng.uniform(0.0, span)
            outcome = self.simulate_job(
                market, job, start, fallback, assume_on_demand_available
            )
            total += outcome.completion_time
        return total / trials / 3600.0

    def simulate_replicated_job(
        self,
        markets: list[MarketID],
        job: JobConfig,
        start: float,
        fallback: MarketID | None = None,
        assume_on_demand_available: bool = False,
    ) -> JobOutcome:
        """SpotOn's replication mechanism: run copies of the job on
        several spot markets at once; the job finishes when the first
        surviving replica does.  Only if *every* replica is revoked
        before completion does SpotOn restart the job on an on-demand
        server (from scratch — replication carries no checkpoints).
        """
        if not markets:
            raise ValueError("replication needs at least one market")
        # Replicas skip checkpointing, so they run at full speed.
        finish_times: list[float] = []
        revocation_times: list[float] = []
        for market in markets:
            od = self.query.on_demand_price(market)
            bid = od * job.bid_multiple
            revocation = self._next_revocation(market, bid, start)
            if revocation is None or revocation - start >= job.running_time:
                finish_times.append(job.running_time)
            else:
                revocation_times.append(revocation - start)
        if finish_times:
            return JobOutcome(
                start, min(finish_times), revoked=False, waited_for_on_demand=0.0
            )
        # All replicas revoked: restart from scratch on on-demand.
        last_loss = max(revocation_times)
        target = fallback or markets[0]
        wait = 0.0
        if not assume_on_demand_available:
            wait = self._on_demand_wait(target, start + last_loss)
        completion = last_loss + job.restart_overhead + wait + job.running_time
        return JobOutcome(start, completion, revoked=True, waited_for_on_demand=wait)

    def choose_mechanism(
        self,
        market: MarketID,
        job: JobConfig,
        replicas: int = 2,
        start: float = 0.0,
        end: float | None = None,
    ) -> FaultTolerance:
        """Pick checkpointing vs replication by expected cost.

        Replication pays for ``replicas`` copies but loses no work;
        checkpointing pays the overhead of Equation 6.1.  SpotOn brute
        forces both and takes the cheaper (per useful hour).
        """
        checkpoint_cost = self.expected_cost(market, job, start, end)
        spot_price = self.query.mean_price(market, start, end)
        od = self.query.on_demand_price(market)
        mttr = self.query.mean_time_to_revocation(
            market, od * job.bid_multiple, start, end
        )
        if mttr <= 0:
            return FaultTolerance.CHECKPOINT
        import math

        p_all_revoked = (1.0 - math.exp(-job.running_time / mttr)) ** replicas
        expected_hours = job.running_time / 3600.0 * (1.0 + p_all_revoked)
        replication_cost = (
            replicas * spot_price * expected_hours / (job.running_time / 3600.0)
        )
        if replication_cost < checkpoint_cost:
            return FaultTolerance.REPLICATION
        return FaultTolerance.CHECKPOINT

    def choose_fallback_with_spotlight(
        self, market: MarketID, candidates: list[MarketID]
    ) -> MarketID:
        """Pick the fallback with the least measured unavailability."""
        if not candidates:
            return market
        ranked = self.query.least_unavailable_markets(candidates)
        return ranked[0][0]

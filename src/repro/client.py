"""The blocking client SDK for a served SpotLight.

:class:`SpotLightClient` speaks the wire protocol of
:class:`~repro.server.SpotLightServer` over a persistent keep-alive
socket (a stale socket is transparently reopened once).  The transport
is a hand-rolled HTTP/1.1 round trip over a raw ``socket`` —
``TCP_NODELAY``, a preassembled request head per ``(method, path)``,
and a buffered response parser — because ``http.client`` costs more
per request than a cached answer does (it re-formats every header and
allocates a fresh response object per call; see PERFORMANCE.md).

The client mirrors the :class:`~repro.core.frontend.QueryFrontend`
typed surface — each helper builds the corresponding schema request,
POSTs it to ``/query``, and returns the ``result`` payload — so moving
an application from in-process serving to the network tier is a
one-line change::

    with SpotLightClient("127.0.0.1", 8080) as client:
        for entry in client.top_stable_markets(n=10):
            print(entry["market"], entry["mean_time_to_revocation"])

Beyond single queries: :meth:`SpotLightClient.batch_query` ships N
queries in one ``/batch`` round trip, :meth:`SpotLightClient.poll`
repeats a query with ``If-None-Match`` so an unchanged answer costs a
header exchange (HTTP 304) instead of a re-sent body, and
:meth:`SpotLightClient.watch` subscribes to a follower server's
``/watch`` change feed — a generator of replication events that
reconnects with jittered backoff and resumes from its ``since_seq``
cursor so no delivered-then-dropped window loses events.

Error model: schema and engine failures raise :class:`QueryError`
(carrying the server's error code), admission-control rejections raise
:class:`ThrottledError` (carrying the server's ``Retry-After`` hint),
and transport failures surface as :class:`TransportError`.
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Any

from repro.core.market_id import MarketID
from repro.core.records import ProbeKind

DEFAULT_TIMEOUT = 30.0


class ClientError(Exception):
    """Base class for everything this SDK raises."""


class TransportError(ClientError):
    """The server could not be reached or the connection broke."""


class DeadlineError(ClientError):
    """:meth:`SpotLightClient.retrying_query` ran out of its overall
    per-call time budget before any attempt succeeded."""


class QueryError(ClientError):
    """The server answered, but with an error response."""

    def __init__(self, code: str, message: str, status: int) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.status = status


class ThrottledError(QueryError):
    """Admission control rejected the request (HTTP 429)."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__("throttled", message, 429)
        self.retry_after = retry_after


def _market_param(market: MarketID | str) -> str:
    return str(market)


def _kind_param(kind: ProbeKind | str) -> str:
    return kind.value if isinstance(kind, ProbeKind) else str(kind)


class _WireFormatError(Exception):
    """The peer answered with bytes that do not frame an HTTP response
    (usually a stale keep-alive socket handing us a truncated read)."""


class SpotLightClient:
    """A blocking SpotLight client with connection reuse."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = DEFAULT_TIMEOUT,
        direct_routing: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.direct_routing = direct_routing
        self._sock: socket.socket | None = None
        self._rfile: Any = None
        # Preassembled request heads, ending "Content-Length: " for
        # bodied requests — per-call work is appending digits, optional
        # extra header lines, the blank line, and the body.
        self._post_head: dict[str, bytes] = {}
        self._get_head: dict[str, bytes] = {}
        # poll() state: request key -> (etag, last full response).
        self._poll_cache: dict[str, tuple[str, dict]] = {}
        self.polls_not_modified = 0
        # Shard-aware routing state (see query_response): the map from
        # GET /shards, one nested client per shard, and whether the
        # server turned out not to serve /shards at all.
        self._shard_map: Any = None
        self._shard_addresses: list[tuple[str, int]] | None = None
        self._shard_clients: dict[int, "SpotLightClient"] = {}
        self._direct_disabled = False
        self.direct_queries = 0
        self.direct_fallbacks = 0

    # -- transport ----------------------------------------------------------
    def _connect(self) -> None:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        # Query bodies are one small write; never wait on Nagle.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._rfile = sock.makefile("rb")

    def close(self) -> None:
        for shard_client in self._shard_clients.values():
            shard_client.close()
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "SpotLightClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _head_for(self, method: str, path: str) -> bytes:
        heads = self._post_head if method == "POST" else self._get_head
        head = heads.get(path)
        if head is None:
            lines = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
            )
            if method == "POST":
                lines += "Content-Type: application/json\r\nContent-Length: "
            else:
                lines += "Content-Length: 0\r\n"
            head = heads[path] = lines.encode("latin-1")
        return head

    def _send(
        self, method: str, path: str, body: bytes | None, extra: bytes
    ) -> None:
        head = self._head_for(method, path)
        if method == "POST":
            data = (
                head + str(len(body or b"")).encode() + b"\r\n" + extra
                + b"\r\n" + (body or b"")
            )
        else:
            data = head + extra + b"\r\n"
        self._sock.sendall(data)  # type: ignore[union-attr]

    def _read_response(self) -> tuple[int, dict[str, str], bytes]:
        rfile = self._rfile
        status_line = rfile.readline()
        if not status_line:
            raise _WireFormatError("connection closed before status line")
        try:
            status = int(status_line.split(None, 2)[1])
        except (IndexError, ValueError):
            raise _WireFormatError(
                f"malformed status line: {status_line!r}"
            ) from None
        headers: dict[str, str] = {}
        while True:
            line = rfile.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise _WireFormatError("connection closed mid-headers")
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        payload = b""
        length = int(headers.get("content-length", "0"))
        if length:
            payload = rfile.read(length)
            if len(payload) != length:
                raise _WireFormatError("connection closed mid-body")
        if headers.get("connection", "").lower() == "close":
            self.close()
        return status, headers, payload

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        extra: bytes = b"",
    ) -> tuple[int, dict[str, str], dict]:
        """One round trip; retries exactly once on a stale keep-alive
        socket (the server may have timed our idle connection out)."""
        last_error: Exception | None = None
        for attempt in range(2):
            try:
                if self._sock is None:
                    self._connect()
                self._send(method, path, body, extra)
                status, headers, payload = self._read_response()
                try:
                    decoded = json.loads(payload) if payload else {}
                except json.JSONDecodeError as exc:
                    raise TransportError(
                        f"non-JSON response from {self.host}:{self.port}: {exc}"
                    ) from None
                return status, headers, decoded
            except (
                _WireFormatError, ConnectionError, socket.timeout, OSError,
            ) as exc:
                last_error = exc
                self.close()
                if attempt == 0 and not isinstance(exc, socket.timeout):
                    continue
                break
        raise TransportError(
            f"request to {self.host}:{self.port} failed: {last_error}"
        ) from last_error

    # -- protocol -----------------------------------------------------------
    def query_response(
        self, name: str, params: dict[str, Any] | None = None
    ) -> dict:
        """POST one schema request and return the full response dict
        (including ``cached`` and ``served_at``); raises on errors.

        With ``direct_routing`` enabled and a sharded deployment behind
        ``host:port``, point queries (a ``market`` param) skip the
        router hop and go straight to the owning shard; anything that
        cannot be safely routed — catalog-wide queries, a topology
        change (shard-map epoch mismatch), a dead shard — falls back
        through the router.
        """
        params = params or {}
        if self.direct_routing and not self._direct_disabled:
            response = self._direct_query_response(name, params)
            if response is not None:
                return response
        body = json.dumps({"query": name, "params": params}).encode()
        status, headers, response = self._request("POST", "/query", body)
        if status == 429:
            error = response.get("error", {})
            retry_after = float(
                headers.get("retry-after", error.get("retry_after", 1.0))
            )
            raise ThrottledError(
                error.get("message", "throttled"), retry_after
            )
        if not response.get("ok"):
            error = response.get("error", {})
            raise QueryError(
                error.get("code", "unknown"),
                error.get("message", f"HTTP {status}"),
                status,
            )
        return response

    def query(self, name: str, params: dict[str, Any] | None = None) -> Any:
        """POST one schema request and return its ``result`` payload."""
        return self.query_response(name, params)["result"]

    # -- shard-aware direct routing ------------------------------------------
    def shard_map(self, refresh: bool = False) -> Any:
        """The server's shard map (``GET /shards``), or None when the
        server is unsharded.  ``refresh=True`` drops the cached map
        (and per-shard connections) and refetches."""
        if refresh:
            self._invalidate_shards()
            self._direct_disabled = False
        if self._shard_map is None and not self._direct_disabled:
            self._fetch_shard_map()
        return self._shard_map

    def _fetch_shard_map(self) -> Any:
        from repro.core.shard import ShardMap

        try:
            status, _, response = self._request("GET", "/shards")
        except TransportError:
            return None
        if status != 200 or not response.get("ok"):
            # An unsharded server: stop probing /shards on every query.
            self._direct_disabled = True
            return None
        try:
            shard_map = ShardMap.from_dict(response)
            addresses = [
                (str(host), int(port)) for host, port in response["addresses"]
            ]
            if len(addresses) != shard_map.shards:
                raise ValueError("address count does not match shard count")
        except (KeyError, TypeError, ValueError):
            self._direct_disabled = True
            return None
        self._shard_map = shard_map
        self._shard_addresses = addresses
        return shard_map

    def _invalidate_shards(self) -> None:
        self._shard_map = None
        self._shard_addresses = None
        while self._shard_clients:
            _, shard_client = self._shard_clients.popitem()
            shard_client.close()

    def _direct_query_response(
        self, name: str, params: dict[str, Any]
    ) -> dict | None:
        """Try answering a point query straight from the owning shard.

        Returns None whenever the router should handle the request
        instead: no market param, no shard map, an epoch mismatch
        (topology changed under us — refetch and fall back), or a
        transport failure (the router retries/degrades; we do not).
        """
        market = params.get("market")
        if not isinstance(market, (str, MarketID)):
            return None
        shard_map = self._shard_map
        if shard_map is None:
            shard_map = self._fetch_shard_map()
            if shard_map is None:
                return None
        shard = shard_map.owner(market)
        shard_client = self._shard_clients.get(shard)
        if shard_client is None:
            host, port = self._shard_addresses[shard]
            shard_client = SpotLightClient(host, port, timeout=self.timeout)
            self._shard_clients[shard] = shard_client
        body = json.dumps({"query": name, "params": params}).encode()
        try:
            status, headers, response = shard_client._request(
                "POST", "/query", body
            )
        except TransportError:
            # Dead or moved shard: let the router (which retries and
            # degrades) answer, and refetch the topology next time.
            self._invalidate_shards()
            self.direct_fallbacks += 1
            return None
        epoch = headers.get("x-shard-epoch")
        try:
            epoch_value = None if epoch is None else int(epoch)
        except ValueError:
            epoch_value = None
        if epoch_value != shard_map.epoch:
            # Topology changed (or this is not a shard worker at all):
            # the answer may come from a server that no longer owns the
            # market.  Refetch the map and fall back through the router.
            self._invalidate_shards()
            self.direct_fallbacks += 1
            return None
        self.direct_queries += 1
        if status == 429:
            error = response.get("error", {})
            retry_after = float(
                headers.get("retry-after", error.get("retry_after", 1.0))
            )
            raise ThrottledError(error.get("message", "throttled"), retry_after)
        if not response.get("ok"):
            error = response.get("error", {})
            raise QueryError(
                error.get("code", "unknown"),
                error.get("message", f"HTTP {status}"),
                status,
            )
        return response

    def batch_response(self, requests: list[dict]) -> list[dict]:
        """POST N schema requests to ``/batch`` in one round trip.

        ``requests`` is a list of ``{"query": ..., "params": {...}}``
        dicts; returns the per-query response dicts in request order.
        Each element is exactly what the equivalent single
        :meth:`query_response` call would have returned — including
        per-query error responses, which do NOT raise here (one bad
        sub-query should not cost the caller the other N-1 answers).
        """
        body = json.dumps({"queries": requests}).encode()
        status, headers, response = self._request("POST", "/batch", body)
        if status == 429:
            error = response.get("error", {})
            retry_after = float(
                headers.get("retry-after", error.get("retry_after", 1.0))
            )
            raise ThrottledError(error.get("message", "throttled"), retry_after)
        if status != 200 or not response.get("ok"):
            error = response.get("error", {})
            raise QueryError(
                error.get("code", "unknown"),
                error.get("message", f"HTTP {status}"),
                status,
            )
        return response["results"]

    def batch_query(
        self, requests: list[dict | tuple[str, dict | None]]
    ) -> list[Any]:
        """Like :meth:`batch_response` but returns the ``result``
        payloads, raising :class:`QueryError` on the first failed
        sub-query.  Accepts request dicts or ``(name, params)`` pairs.
        """
        normalized = [
            request if isinstance(request, dict)
            else {"query": request[0], "params": request[1] or {}}
            for request in requests
        ]
        results = []
        for sub in self.batch_response(normalized):
            if not sub.get("ok"):
                error = sub.get("error", {})
                raise QueryError(
                    error.get("code", "unknown"),
                    error.get("message", "batch sub-query failed"),
                    400,
                )
            results.append(sub["result"])
        return results

    def poll(self, name: str, params: dict[str, Any] | None = None) -> Any:
        """Like :meth:`query`, but conditional: remembers the ETag of
        the last answer per ``(name, params)`` and sends
        ``If-None-Match``, so an unchanged answer is a bodyless 304
        (counted in :attr:`polls_not_modified`) and the cached result
        is returned.  The cheap way to watch a query."""
        params = params or {}
        key = json.dumps({"query": name, "params": params}, sort_keys=True)
        body = json.dumps({"query": name, "params": params}).encode()
        cached = self._poll_cache.get(key)
        extra = b""
        if cached is not None:
            extra = b"If-None-Match: " + cached[0].encode("latin-1") + b"\r\n"
        status, headers, response = self._request("POST", "/query", body, extra)
        if status == 304 and cached is not None:
            self.polls_not_modified += 1
            return cached[1]["result"]
        if status == 429:
            error = response.get("error", {})
            retry_after = float(
                headers.get("retry-after", error.get("retry_after", 1.0))
            )
            raise ThrottledError(error.get("message", "throttled"), retry_after)
        if not response.get("ok"):
            error = response.get("error", {})
            raise QueryError(
                error.get("code", "unknown"),
                error.get("message", f"HTTP {status}"),
                status,
            )
        etag = headers.get("etag")
        if etag:
            self._poll_cache[key] = (etag, response)
        return response["result"]

    def retrying_query(
        self,
        name: str,
        params: dict[str, Any] | None = None,
        max_attempts: int = 5,
        *,
        deadline: float | None = None,
        retry_transport: bool = True,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        rng: random.Random | None = None,
    ) -> Any:
        """Like :meth:`query`, but rides out transient failures.

        429s sleep out the server's retry-after hint.  Transport
        failures — connection refused/reset while a pool worker is
        being respawned — retry with full-jitter exponential backoff:
        ``uniform(0, min(backoff_cap, backoff * 2**attempt))``, seeded
        via ``rng`` for reproducible chaos tests.  ``deadline`` bounds
        the *total* wall-clock budget across every attempt and sleep;
        blowing it raises :class:`DeadlineError` chaining the last
        underlying failure, so a caller with an SLA never waits out the
        full retry schedule.
        """
        jitter = rng if rng is not None else random
        started = time.monotonic()

        def _remaining() -> float | None:
            if deadline is None:
                return None
            return deadline - (time.monotonic() - started)

        last_error: ClientError | None = None
        for attempt in range(max_attempts):
            left = _remaining()
            if left is not None and left <= 0:
                raise DeadlineError(
                    f"deadline of {deadline:.2f}s exhausted after "
                    f"{attempt} attempt(s): {last_error}"
                ) from last_error
            try:
                return self.query(name, params)
            except ThrottledError as exc:
                last_error = exc
                if attempt == max_attempts - 1:
                    raise
                # Honor the server's Retry-After hint — but never past
                # the deadline budget: a hint that cannot fit inside
                # what is left raises DeadlineError below instead of
                # oversleeping the caller's SLA.
                delay = max(exc.retry_after, 0.005)
            except TransportError as exc:
                if not retry_transport:
                    raise
                last_error = exc
                if attempt == max_attempts - 1:
                    raise
                delay = max(
                    0.001,
                    jitter.uniform(
                        0.0, min(backoff_cap, backoff * (2.0 ** attempt))
                    ),
                )
            left = _remaining()
            if left is not None and delay >= left:
                raise DeadlineError(
                    f"deadline of {deadline:.2f}s exhausted after "
                    f"{attempt + 1} attempt(s): {last_error}"
                ) from last_error
            time.sleep(delay)
        raise AssertionError("unreachable")

    def healthz(self) -> dict:
        status, _, response = self._request("GET", "/healthz")
        if status != 200:
            raise TransportError(f"healthz answered HTTP {status}")
        return response

    def stats(self) -> dict:
        status, _, response = self._request("GET", "/stats")
        if status != 200:
            raise TransportError(f"stats answered HTTP {status}")
        return response

    def cluster_stats(self) -> dict:
        """Fleet-wide counters for a multi-worker server.

        A ``serve --workers N`` deployment answers ``/stats`` from
        whichever worker the connection landed on; that worker's
        response carries a ``cluster`` aggregate summed across the
        whole pool.  Against a single-process server this falls back
        to the server's own totals (with ``workers: 1``).
        """
        stats = self.stats()
        cluster = stats.get("cluster")
        if isinstance(cluster, dict):
            return cluster
        from repro.server import CLUSTER_COUNTER_FIELDS

        endpoints = stats.get("endpoints", {})
        frontend = stats.get("frontend", {})
        values = {
            "workers": 1,
            "requests": sum(
                e.get("requests", 0) for e in endpoints.values()
            ),
            "queries": endpoints.get("/query", {}).get("requests", 0),
            "errors": sum(e.get("errors", 0) for e in endpoints.values()),
            "coalesced": stats.get("coalesced", 0),
            "throttled": stats.get("throttled", 0),
            "slow_shed": stats.get("slow_shed", 0),
            "cache_hits": frontend.get("hits", 0),
            "cache_misses": frontend.get("misses", 0),
            "connections": stats.get("connections_accepted", 0),
            "batch_queries": stats.get("batch_queries", 0),
            "not_modified": stats.get("not_modified", 0),
            "wire_generation": frontend.get("generation", 0),
            "replica_lag": stats.get("replica", {}).get("lag", 0),
        }
        # values[field], not .get: keep this fallback loudly in sync
        # with the schema the stats board publishes.
        return {
            "workers": 1,
            **{field: values[field] for field in CLUSTER_COUNTER_FIELDS},
        }

    # -- /watch: the change feed ---------------------------------------------
    def watch(
        self,
        since_seq: int | None = None,
        *,
        heartbeats: bool = False,
        reconnect: bool = True,
        max_attempts: int | None = None,
        heartbeat_interval: float = 5.0,
        backoff: float = 0.2,
        backoff_cap: float = 5.0,
        rng: random.Random | None = None,
    ):
        """Subscribe to a follower server's ``/watch`` change feed.

        A generator of event dicts (spikes, revocations, availability
        transitions), each carrying a dense ``seq``.  The stream rides
        out failure: when the connection drops or the server restarts,
        the client reconnects with full-jitter exponential backoff and
        resumes from the last delivered ``seq``, so across any number
        of reconnects each event is yielded at most once and none in a
        delivered window is skipped.  A cursor that fell off the
        server's bounded ring yields an explicit ``{"gap": ...}`` event
        rather than silently losing history.

        ``since_seq=None`` starts at the live tail; pass ``0`` to
        replay everything the server still retains.  ``heartbeats=True``
        also yields the periodic heartbeat frames (liveness probes).
        ``max_attempts`` bounds *consecutive* failed connection cycles
        (None: reconnect forever); with ``reconnect=False`` the
        generator ends when the stream does.  Server-level rejections
        (e.g. 404 from a server that follows no recorder) raise
        :class:`QueryError` immediately — reconnecting cannot fix them.
        """
        jitter = rng if rng is not None else random
        cursor = since_seq
        failures = 0
        while True:
            got_any = False
            try:
                for event in self._watch_once(cursor, heartbeat_interval):
                    if event.get("watch"):
                        # Hello frame: adopt the server's echo of our
                        # cursor (it also resolves the live-tail case).
                        cursor = int(event.get("since_seq", cursor or 0))
                        failures = 0
                        got_any = True
                        continue
                    if event.get("heartbeat"):
                        failures = 0
                        if heartbeats:
                            yield event
                        continue
                    if "seq" in event:
                        cursor = int(event["seq"])
                    failures = 0
                    got_any = True
                    yield event
                ended_clean = True
            except QueryError:
                raise
            except (_WireFormatError, OSError, json.JSONDecodeError):
                ended_clean = False
            if not reconnect:
                return
            failures = 0 if got_any else failures + 1
            if max_attempts is not None and failures >= max_attempts:
                raise TransportError(
                    f"watch stream to {self.host}:{self.port} failed "
                    f"{failures} consecutive time(s)"
                )
            if ended_clean and got_any:
                delay = max(0.001, jitter.uniform(0.0, backoff))
            else:
                delay = max(
                    0.001,
                    jitter.uniform(
                        0.0,
                        min(backoff_cap, backoff * (2.0 ** max(failures, 1))),
                    ),
                )
            time.sleep(delay)

    def _watch_once(self, cursor: int | None, heartbeat_interval: float):
        """One ``/watch`` connection on a dedicated socket (never the
        keep-alive query socket — a stream would wedge it); yields the
        decoded frames until the server ends the stream."""
        query = f"heartbeat={heartbeat_interval:g}"
        if cursor is not None:
            query += f"&since_seq={int(cursor)}"
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # Heartbeats bound how long a healthy stream stays silent;
            # a read blocking well past that means the server is gone.
            sock.settimeout(max(self.timeout, heartbeat_interval * 3 + 5.0))
            rfile = sock.makefile("rb")
            sock.sendall(
                (
                    f"GET /watch?{query} HTTP/1.1\r\n"
                    f"Host: {self.host}:{self.port}\r\n"
                    f"Content-Length: 0\r\nConnection: close\r\n\r\n"
                ).encode("latin-1")
            )
            status_line = rfile.readline()
            if not status_line:
                raise _WireFormatError("connection closed before status line")
            try:
                status = int(status_line.split(None, 2)[1])
            except (IndexError, ValueError):
                raise _WireFormatError(
                    f"malformed status line: {status_line!r}"
                ) from None
            headers: dict[str, str] = {}
            while True:
                line = rfile.readline()
                if line in (b"\r\n", b"\n"):
                    break
                if not line:
                    raise _WireFormatError("connection closed mid-headers")
                name, sep, value = line.decode("latin-1").partition(":")
                if sep:
                    headers[name.strip().lower()] = value.strip()
            if status != 200:
                length = int(headers.get("content-length", "0"))
                payload = rfile.read(length) if length else b""
                try:
                    error = json.loads(payload).get("error", {})
                except (json.JSONDecodeError, AttributeError):
                    error = {}
                raise QueryError(
                    error.get("code", "unknown"),
                    error.get("message", f"HTTP {status}"),
                    status,
                )
            if headers.get("transfer-encoding", "").lower() != "chunked":
                raise _WireFormatError("watch response is not chunked")
            while True:
                size_line = rfile.readline()
                if not size_line:
                    raise _WireFormatError("connection closed mid-stream")
                try:
                    size = int(size_line.strip().split(b";")[0], 16)
                except ValueError:
                    raise _WireFormatError(
                        f"malformed chunk size: {size_line!r}"
                    ) from None
                if size == 0:
                    return  # clean end of stream
                data = rfile.read(size + 2)  # chunk + trailing CRLF
                if len(data) != size + 2:
                    raise _WireFormatError("connection closed mid-chunk")
                for line in data[:-2].splitlines():
                    if line.strip():
                        yield json.loads(line)
        finally:
            try:
                sock.close()
            except OSError:
                pass

    # -- typed helpers (mirror QueryFrontend) --------------------------------
    def top_stable_markets(
        self,
        n: int = 10,
        bid_multiple: float = 1.0,
        start: float = 0.0,
        end: float | None = None,
        region: str | None = None,
    ) -> list[dict]:
        return self.query(
            "top-stable-markets",
            {"n": n, "bid_multiple": bid_multiple, "start": start, "end": end,
             "region": region},
        )

    def availability(
        self,
        market: MarketID | str,
        kind: ProbeKind | str = ProbeKind.ON_DEMAND,
        start: float = 0.0,
        end: float | None = None,
    ) -> float:
        return self.query(
            "availability",
            {"market": _market_param(market), "kind": _kind_param(kind),
             "start": start, "end": end},
        )

    def availability_at_bid(
        self,
        market: MarketID | str,
        bid_price: float,
        start: float = 0.0,
        end: float | None = None,
    ) -> float:
        return self.query(
            "availability-at-bid",
            {"market": _market_param(market), "bid_price": bid_price,
             "start": start, "end": end},
        )

    def mean_time_to_revocation(
        self,
        market: MarketID | str,
        bid_price: float,
        start: float = 0.0,
        end: float | None = None,
    ) -> float:
        return self.query(
            "mean-time-to-revocation",
            {"market": _market_param(market), "bid_price": bid_price,
             "start": start, "end": end},
        )

    def mean_price(
        self,
        market: MarketID | str,
        start: float = 0.0,
        end: float | None = None,
    ) -> float:
        return self.query(
            "mean-price",
            {"market": _market_param(market), "start": start, "end": end},
        )

    def on_demand_price(self, market: MarketID | str) -> float:
        return self.query("on-demand-price", {"market": _market_param(market)})

    def unavailability_periods(
        self,
        market: MarketID | str | None = None,
        kind: ProbeKind | str = ProbeKind.ON_DEMAND,
        horizon: float | None = None,
    ) -> list[dict]:
        return self.query(
            "unavailability-periods",
            {"market": None if market is None else _market_param(market),
             "kind": _kind_param(kind), "horizon": horizon},
        )

    def least_unavailable_markets(
        self,
        candidates: list[MarketID | str],
        kind: ProbeKind | str = ProbeKind.ON_DEMAND,
        horizon: float | None = None,
    ) -> list[dict]:
        return self.query(
            "least-unavailable-markets",
            {"candidates": [_market_param(m) for m in candidates],
             "kind": _kind_param(kind), "horizon": horizon},
        )

    def rejection_rate(
        self,
        market: MarketID | str | None = None,
        kind: ProbeKind | str | None = None,
    ) -> float:
        return self.query(
            "rejection-rate",
            {"market": None if market is None else _market_param(market),
             "kind": None if kind is None else _kind_param(kind)},
        )

"""The blocking client SDK for a served SpotLight.

:class:`SpotLightClient` speaks the wire protocol of
:class:`~repro.server.SpotLightServer` over a persistent
``http.client`` connection (keep-alive; a stale socket is transparently
reopened once).  It mirrors the :class:`~repro.core.frontend.QueryFrontend`
typed surface — each helper builds the corresponding schema request,
POSTs it to ``/query``, and returns the ``result`` payload — so moving
an application from in-process serving to the network tier is a
one-line change::

    with SpotLightClient("127.0.0.1", 8080) as client:
        for entry in client.top_stable_markets(n=10):
            print(entry["market"], entry["mean_time_to_revocation"])

Error model: schema and engine failures raise :class:`QueryError`
(carrying the server's error code), admission-control rejections raise
:class:`ThrottledError` (carrying the server's ``Retry-After`` hint),
and transport failures surface as :class:`TransportError`.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Any

from repro.core.market_id import MarketID
from repro.core.records import ProbeKind

DEFAULT_TIMEOUT = 30.0


class ClientError(Exception):
    """Base class for everything this SDK raises."""


class TransportError(ClientError):
    """The server could not be reached or the connection broke."""


class DeadlineError(ClientError):
    """:meth:`SpotLightClient.retrying_query` ran out of its overall
    per-call time budget before any attempt succeeded."""


class QueryError(ClientError):
    """The server answered, but with an error response."""

    def __init__(self, code: str, message: str, status: int) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.status = status


class ThrottledError(QueryError):
    """Admission control rejected the request (HTTP 429)."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__("throttled", message, 429)
        self.retry_after = retry_after


def _market_param(market: MarketID | str) -> str:
    return str(market)


def _kind_param(kind: ProbeKind | str) -> str:
    return kind.value if isinstance(kind, ProbeKind) else str(kind)


class SpotLightClient:
    """A blocking SpotLight client with connection reuse."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # -- transport ----------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "SpotLightClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _request(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, dict[str, str], dict]:
        """One round trip; retries exactly once on a stale keep-alive
        socket (the server may have timed our idle connection out)."""
        last_error: Exception | None = None
        for attempt in range(2):
            conn = self._connection()
            try:
                conn.request(
                    method, path, body=body,
                    headers={"Content-Type": "application/json"} if body else {},
                )
                response = conn.getresponse()
                payload = response.read()
                headers = {k.lower(): v for k, v in response.getheaders()}
                try:
                    decoded = json.loads(payload) if payload else {}
                except json.JSONDecodeError as exc:
                    raise TransportError(
                        f"non-JSON response from {self.host}:{self.port}: {exc}"
                    ) from None
                return response.status, headers, decoded
            except (
                http.client.HTTPException, ConnectionError, socket.timeout,
                OSError,
            ) as exc:
                last_error = exc
                self.close()
                if attempt == 0 and not isinstance(exc, socket.timeout):
                    continue
                break
        raise TransportError(
            f"request to {self.host}:{self.port} failed: {last_error}"
        ) from last_error

    # -- protocol -----------------------------------------------------------
    def query_response(
        self, name: str, params: dict[str, Any] | None = None
    ) -> dict:
        """POST one schema request and return the full response dict
        (including ``cached`` and ``served_at``); raises on errors."""
        body = json.dumps({"query": name, "params": params or {}}).encode()
        status, headers, response = self._request("POST", "/query", body)
        if status == 429:
            error = response.get("error", {})
            retry_after = float(
                headers.get("retry-after", error.get("retry_after", 1.0))
            )
            raise ThrottledError(
                error.get("message", "throttled"), retry_after
            )
        if not response.get("ok"):
            error = response.get("error", {})
            raise QueryError(
                error.get("code", "unknown"),
                error.get("message", f"HTTP {status}"),
                status,
            )
        return response

    def query(self, name: str, params: dict[str, Any] | None = None) -> Any:
        """POST one schema request and return its ``result`` payload."""
        return self.query_response(name, params)["result"]

    def retrying_query(
        self,
        name: str,
        params: dict[str, Any] | None = None,
        max_attempts: int = 5,
        *,
        deadline: float | None = None,
        retry_transport: bool = True,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        rng: random.Random | None = None,
    ) -> Any:
        """Like :meth:`query`, but rides out transient failures.

        429s sleep out the server's retry-after hint.  Transport
        failures — connection refused/reset while a pool worker is
        being respawned — retry with full-jitter exponential backoff:
        ``uniform(0, min(backoff_cap, backoff * 2**attempt))``, seeded
        via ``rng`` for reproducible chaos tests.  ``deadline`` bounds
        the *total* wall-clock budget across every attempt and sleep;
        blowing it raises :class:`DeadlineError` chaining the last
        underlying failure, so a caller with an SLA never waits out the
        full retry schedule.
        """
        jitter = rng if rng is not None else random
        started = time.monotonic()

        def _remaining() -> float | None:
            if deadline is None:
                return None
            return deadline - (time.monotonic() - started)

        last_error: ClientError | None = None
        for attempt in range(max_attempts):
            left = _remaining()
            if left is not None and left <= 0:
                raise DeadlineError(
                    f"deadline of {deadline:.2f}s exhausted after "
                    f"{attempt} attempt(s): {last_error}"
                ) from last_error
            try:
                return self.query(name, params)
            except ThrottledError as exc:
                last_error = exc
                if attempt == max_attempts - 1:
                    raise
                delay = max(exc.retry_after, 0.005)
            except TransportError as exc:
                if not retry_transport:
                    raise
                last_error = exc
                if attempt == max_attempts - 1:
                    raise
                delay = max(
                    0.001,
                    jitter.uniform(
                        0.0, min(backoff_cap, backoff * (2.0 ** attempt))
                    ),
                )
            left = _remaining()
            if left is not None and delay >= left:
                raise DeadlineError(
                    f"deadline of {deadline:.2f}s exhausted after "
                    f"{attempt + 1} attempt(s): {last_error}"
                ) from last_error
            time.sleep(delay)
        raise AssertionError("unreachable")

    def healthz(self) -> dict:
        status, _, response = self._request("GET", "/healthz")
        if status != 200:
            raise TransportError(f"healthz answered HTTP {status}")
        return response

    def stats(self) -> dict:
        status, _, response = self._request("GET", "/stats")
        if status != 200:
            raise TransportError(f"stats answered HTTP {status}")
        return response

    def cluster_stats(self) -> dict:
        """Fleet-wide counters for a multi-worker server.

        A ``serve --workers N`` deployment answers ``/stats`` from
        whichever worker the connection landed on; that worker's
        response carries a ``cluster`` aggregate summed across the
        whole pool.  Against a single-process server this falls back
        to the server's own totals (with ``workers: 1``).
        """
        stats = self.stats()
        cluster = stats.get("cluster")
        if isinstance(cluster, dict):
            return cluster
        from repro.server import CLUSTER_COUNTER_FIELDS

        endpoints = stats.get("endpoints", {})
        frontend = stats.get("frontend", {})
        values = {
            "workers": 1,
            "requests": sum(
                e.get("requests", 0) for e in endpoints.values()
            ),
            "queries": endpoints.get("/query", {}).get("requests", 0),
            "errors": sum(e.get("errors", 0) for e in endpoints.values()),
            "coalesced": stats.get("coalesced", 0),
            "throttled": stats.get("throttled", 0),
            "slow_shed": stats.get("slow_shed", 0),
            "cache_hits": frontend.get("hits", 0),
            "cache_misses": frontend.get("misses", 0),
            "connections": stats.get("connections_accepted", 0),
        }
        # values[field], not .get: keep this fallback loudly in sync
        # with the schema the stats board publishes.
        return {
            "workers": 1,
            **{field: values[field] for field in CLUSTER_COUNTER_FIELDS},
        }

    # -- typed helpers (mirror QueryFrontend) --------------------------------
    def top_stable_markets(
        self,
        n: int = 10,
        bid_multiple: float = 1.0,
        start: float = 0.0,
        end: float | None = None,
        region: str | None = None,
    ) -> list[dict]:
        return self.query(
            "top-stable-markets",
            {"n": n, "bid_multiple": bid_multiple, "start": start, "end": end,
             "region": region},
        )

    def availability(
        self,
        market: MarketID | str,
        kind: ProbeKind | str = ProbeKind.ON_DEMAND,
        start: float = 0.0,
        end: float | None = None,
    ) -> float:
        return self.query(
            "availability",
            {"market": _market_param(market), "kind": _kind_param(kind),
             "start": start, "end": end},
        )

    def availability_at_bid(
        self,
        market: MarketID | str,
        bid_price: float,
        start: float = 0.0,
        end: float | None = None,
    ) -> float:
        return self.query(
            "availability-at-bid",
            {"market": _market_param(market), "bid_price": bid_price,
             "start": start, "end": end},
        )

    def mean_time_to_revocation(
        self,
        market: MarketID | str,
        bid_price: float,
        start: float = 0.0,
        end: float | None = None,
    ) -> float:
        return self.query(
            "mean-time-to-revocation",
            {"market": _market_param(market), "bid_price": bid_price,
             "start": start, "end": end},
        )

    def mean_price(
        self,
        market: MarketID | str,
        start: float = 0.0,
        end: float | None = None,
    ) -> float:
        return self.query(
            "mean-price",
            {"market": _market_param(market), "start": start, "end": end},
        )

    def on_demand_price(self, market: MarketID | str) -> float:
        return self.query("on-demand-price", {"market": _market_param(market)})

    def unavailability_periods(
        self,
        market: MarketID | str | None = None,
        kind: ProbeKind | str = ProbeKind.ON_DEMAND,
        horizon: float | None = None,
    ) -> list[dict]:
        return self.query(
            "unavailability-periods",
            {"market": None if market is None else _market_param(market),
             "kind": _kind_param(kind), "horizon": horizon},
        )

    def least_unavailable_markets(
        self,
        candidates: list[MarketID | str],
        kind: ProbeKind | str = ProbeKind.ON_DEMAND,
        horizon: float | None = None,
    ) -> list[dict]:
        return self.query(
            "least-unavailable-markets",
            {"candidates": [_market_param(m) for m in candidates],
             "kind": _kind_param(kind), "horizon": horizon},
        )

    def rejection_rate(
        self,
        market: MarketID | str | None = None,
        kind: ProbeKind | str | None = None,
    ) -> float:
        return self.query(
            "rejection-rate",
            {"market": None if market is None else _market_param(market),
             "kind": None if kind is None else _kind_param(kind)},
        )

"""EC2-style error codes and exceptions.

The simulator raises the same error *codes* the real EC2 API returns, so
SpotLight's probing logic is written against realistic failure modes.
``InsufficientInstanceCapacity`` is the one the paper is built around: it
is EC2's signal that the demand for a server type currently exceeds the
available supply.
"""

from __future__ import annotations

# Error code strings as returned by the EC2 API.
INSUFFICIENT_INSTANCE_CAPACITY = "InsufficientInstanceCapacity"
REQUEST_LIMIT_EXCEEDED = "RequestLimitExceeded"
INSTANCE_LIMIT_EXCEEDED = "InstanceLimitExceeded"
SPOT_REQUEST_LIMIT_EXCEEDED = "MaxSpotInstanceCountExceeded"
BAD_PARAMETERS = "InvalidParameterValue"
SPOT_BID_TOO_HIGH = "SpotMaxPriceTooHigh"

# Spot request status codes (Figure 3.2 of the paper).
STATUS_PENDING_EVALUATION = "pending-evaluation"
STATUS_PENDING_FULFILLMENT = "pending-fulfillment"
STATUS_FULFILLED = "fulfilled"
STATUS_CAPACITY_NOT_AVAILABLE = "capacity-not-available"
STATUS_CAPACITY_OVERSUBSCRIBED = "capacity-oversubscribed"
STATUS_PRICE_TOO_LOW = "price-too-low"
STATUS_BAD_PARAMETERS = "bad-parameters"
STATUS_SYSTEM_ERROR = "system-error"
STATUS_CANCELED_BEFORE_FULFILLMENT = "canceled-before-fulfillment"
STATUS_REQUEST_CANCELED_INSTANCE_RUNNING = "request-canceled-and-instance-running"
STATUS_MARKED_FOR_TERMINATION = "marked-for-termination"
STATUS_TERMINATED_BY_PRICE = "instance-terminated-by-price"
STATUS_TERMINATED_BY_USER = "instance-terminated-by-user"


class EC2Error(Exception):
    """Base class for simulated EC2 API errors."""

    code = "InternalError"

    def __init__(self, message: str = "") -> None:
        super().__init__(message or self.code)
        self.message = message or self.code


class InsufficientInstanceCapacityError(EC2Error):
    """Raised when a pool cannot satisfy an on-demand request."""

    code = INSUFFICIENT_INSTANCE_CAPACITY


class RequestLimitExceededError(EC2Error):
    """Raised when a caller exceeds the per-region API rate limit."""

    code = REQUEST_LIMIT_EXCEEDED


class ServiceLimitExceededError(EC2Error):
    """Raised when a caller exceeds a per-region instance/request limit."""

    code = INSTANCE_LIMIT_EXCEEDED


class BadParametersError(EC2Error):
    """Raised for malformed requests (unknown market, negative bid, ...)."""

    code = BAD_PARAMETERS


class SpotBidTooHighError(EC2Error):
    """Raised when a spot bid exceeds the 10x on-demand price cap."""

    code = SPOT_BID_TOO_HIGH


class ProbeUnsupportedError(EC2Error):
    """Raised when a provider has no probe surface (e.g. trace replay)."""

    code = "ProbeUnsupported"


class InvalidStateTransition(Exception):
    """Raised when a lifecycle state machine is driven illegally."""

"""Deterministic discrete-event scheduler.

A tiny, allocation-light event queue.  Events fire in (time, sequence)
order, so two events scheduled for the same instant run in the order they
were scheduled — this keeps every simulation run deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.clock import SimClock


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by (time, seq)."""

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Priority queue of :class:`Event` bound to a :class:`SimClock`."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._heap: list[Event] = []
        self._counter = itertools.count()

    @property
    def clock(self) -> SimClock:
        return self._clock

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def schedule_at(
        self, when: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` to run at absolute time ``when``."""
        if when < self._clock.now:
            raise ValueError(
                f"cannot schedule in the past: now={self._clock.now}, when={when}"
            )
        event = Event(when, next(self._counter), callback, label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(
        self, delay: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self._clock.now + delay, callback, label)

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> Event | None:
        """Run the next event, advancing the clock to its time."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._clock.advance_to(event.time)
            event.callback()
            return event
        return None

    def run_until(self, when: float) -> int:
        """Run all events scheduled up to and including ``when``.

        Returns the number of events executed.  The clock finishes exactly
        at ``when`` even if the last event fired earlier.
        """
        executed = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > when:
                break
            self.step()
            executed += 1
        if when > self._clock.now:
            self._clock.advance_to(when)
        return executed

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Drain the queue completely (bounded by ``max_events``)."""
        executed = 0
        while executed < max_events:
            if self.step() is None:
                return executed
            executed += 1
        raise RuntimeError(f"event queue did not drain after {max_events} events")

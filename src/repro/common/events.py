"""Deterministic discrete-event scheduler.

A tiny, allocation-light event queue.  Events fire in (time, sequence)
order, so two events scheduled for the same instant run in the order they
were scheduled — this keeps every simulation run deterministic.

Cancellation is lazy (a cancelled event stays in the heap until popped)
but cheap: the queue keeps a live-event counter so ``len()`` is O(1),
and it compacts the heap whenever cancelled entries outnumber live
ones, so a workload that cancels heavily never pays an O(n) scan per
operation.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.clock import SimClock

# Don't bother compacting tiny heaps; below this size a sweep costs
# less than the bookkeeping.
_COMPACT_MIN_SIZE = 64


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by (time, seq)."""

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    _queue: "EventQueue | None" = field(compare=False, default=None, repr=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._on_cancel()


class EventQueue:
    """Priority queue of :class:`Event` bound to a :class:`SimClock`."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0  # non-cancelled events currently in the heap

    @property
    def clock(self) -> SimClock:
        return self._clock

    def __len__(self) -> int:
        return self._live

    def _on_cancel(self) -> None:
        self._live -= 1
        # Compact when dead entries dominate, keeping pops amortised
        # O(log n) in the number of *live* events.
        if len(self._heap) >= _COMPACT_MIN_SIZE and self._live * 2 < len(self._heap):
            self._heap = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)

    def schedule_at(
        self, when: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` to run at absolute time ``when``."""
        if when < self._clock.now:
            raise ValueError(
                f"cannot schedule in the past: now={self._clock.now}, when={when}"
            )
        event = Event(when, next(self._counter), callback, label, _queue=self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def schedule_in(
        self, delay: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self._clock.now + delay, callback, label)

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)._queue = None
        return self._heap[0].time if self._heap else None

    def step(self) -> Event | None:
        """Run the next event, advancing the clock to its time."""
        while self._heap:
            event = heapq.heappop(self._heap)
            event._queue = None  # cancel() after this point is a no-op
            if event.cancelled:
                continue
            self._live -= 1
            self._clock.advance_to(event.time)
            event.callback()
            return event
        return None

    def run_until(self, when: float) -> int:
        """Run all events scheduled up to and including ``when``.

        Returns the number of events executed.  The clock finishes exactly
        at ``when`` even if the last event fired earlier.
        """
        executed = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > when:
                break
            self.step()
            executed += 1
        if when > self._clock.now:
            self._clock.advance_to(when)
        return executed

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Drain the queue completely (bounded by ``max_events``)."""
        executed = 0
        while executed < max_events:
            if self.step() is None:
                return executed
            executed += 1
        raise RuntimeError(f"event queue did not drain after {max_events} events")

"""Named, seed-split random streams.

Every stochastic component (each demand process, each trace generator)
gets its own independent stream derived from a root seed and a string
name.  Adding a new consumer never perturbs existing ones, so results
stay comparable across code changes.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngStream:
    """A named random stream; thin convenience wrapper over numpy."""

    def __init__(self, root_seed: int, name: str) -> None:
        self.name = name
        self.seed = _derive_seed(root_seed, name)
        self._rng = np.random.default_rng(self.seed)
        self._root_seed = root_seed

    def child(self, name: str) -> "RngStream":
        """Derive a sub-stream; independent of this stream's consumption."""
        return RngStream(self.seed, f"{self.name}/{name}")

    # -- distribution helpers -------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._rng.uniform(low, high))

    def random(self) -> float:
        return float(self._rng.random())

    def exponential(self, mean: float) -> float:
        return float(self._rng.exponential(mean))

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        return float(self._rng.normal(loc, scale))

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0) -> float:
        return float(self._rng.lognormal(mean, sigma))

    def pareto(self, shape: float) -> float:
        return float(self._rng.pareto(shape))

    def poisson(self, lam: float) -> int:
        return int(self._rng.poisson(lam))

    def integers(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return int(self._rng.integers(low, high))

    def choice(self, seq):
        """Uniformly choose one element of a non-empty sequence."""
        if len(seq) == 0:
            raise ValueError("cannot choose from an empty sequence")
        return seq[int(self._rng.integers(0, len(seq)))]

    def bernoulli(self, p: float) -> bool:
        return bool(self._rng.random() < p)

    # -- batch (vectorized) draws ---------------------------------------------
    # Shape may be an int or a tuple; these consume the same underlying
    # bit stream as the scalar helpers, just in blocks, which is what
    # the vectorized simulation core draws from.
    def uniforms(self, shape, low: float = 0.0, high: float = 1.0) -> np.ndarray:
        return self._rng.uniform(low, high, size=shape)

    def normals(self, shape, loc: float = 0.0, scale: float = 1.0) -> np.ndarray:
        return self._rng.normal(loc, scale, size=shape)

    def lognormals(self, shape, mean: float = 0.0, sigma: float = 1.0) -> np.ndarray:
        return self._rng.lognormal(mean, sigma, size=shape)

    def exponentials(self, shape, mean: float) -> np.ndarray:
        return self._rng.exponential(mean, size=shape)

    @property
    def numpy(self) -> np.random.Generator:
        """Direct access to the underlying numpy generator."""
        return self._rng

"""Deterministic resource-id generation.

EC2 identifies instances as ``i-0123abcd...`` and spot requests as
``sir-abcd1234``.  The simulator mints ids from a counter so runs are
reproducible and ids are unique within a simulation.
"""

from __future__ import annotations

import itertools


class IdGenerator:
    """Mints EC2-style identifiers from a deterministic counter."""

    def __init__(self) -> None:
        self._counters: dict[str, itertools.count] = {}

    def _next(self, prefix: str) -> int:
        counter = self._counters.setdefault(prefix, itertools.count(1))
        return next(counter)

    def instance_id(self) -> str:
        """A fresh ``i-`` instance id."""
        return f"i-{self._next('i'):017x}"

    def spot_request_id(self) -> str:
        """A fresh ``sir-`` spot instance request id."""
        return f"sir-{self._next('sir'):08x}"

    def reservation_id(self) -> str:
        """A fresh ``r-`` reservation id."""
        return f"r-{self._next('r'):017x}"

"""Simulated clock.

All components share a single :class:`SimClock`.  Time is a float number
of seconds since the start of the simulation.  Only the event loop (or a
test) advances the clock; everyone else reads it.
"""

from __future__ import annotations

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


class SimClock:
    """Monotonically non-decreasing simulated time source."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before zero: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when`` (never backward)."""
        if when < self._now:
            raise ValueError(
                f"clock cannot move backward: now={self._now}, requested={when}"
            )
        self._now = float(when)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds."""
        if delta < 0:
            raise ValueError(f"cannot advance by negative delta: {delta}")
        self._now += float(delta)

    def hours(self) -> float:
        """Current time expressed in hours."""
        return self._now / SECONDS_PER_HOUR

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.1f}s)"

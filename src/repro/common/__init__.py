"""Shared simulation kernel: clock, event queue, errors, ids, RNG streams.

These utilities underpin both the EC2 simulator substrate (``repro.ec2``)
and the SpotLight service (``repro.core``).  Everything here is
deterministic: time is simulated, and randomness comes from named,
seed-split streams so experiments reproduce bit-for-bit.
"""

from repro.common.clock import SimClock
from repro.common.errors import (
    BadParametersError,
    EC2Error,
    InsufficientInstanceCapacityError,
    InvalidStateTransition,
    RequestLimitExceededError,
    ServiceLimitExceededError,
)
from repro.common.events import Event, EventQueue
from repro.common.ids import IdGenerator
from repro.common.rng import RngStream

__all__ = [
    "SimClock",
    "Event",
    "EventQueue",
    "IdGenerator",
    "RngStream",
    "EC2Error",
    "InsufficientInstanceCapacityError",
    "RequestLimitExceededError",
    "ServiceLimitExceededError",
    "BadParametersError",
    "InvalidStateTransition",
]

"""Packed columnar time series.

One pair of ``array('d')`` columns — times (ascending) and values —
instead of one object per sample.  Both the spot markets' price
histories and the probe database's price series are stored this way: a
paper-scale run records millions of samples, and the struct-of-arrays
layout keeps them compact, bisects on the time column directly, and
hands analysis code zero-copy numpy views.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right

import numpy as np


class TimeSeries:
    """Two packed float columns: ascending times and matching values.

    Callers enforce time ordering (so they can raise domain-specific
    errors); :meth:`append` itself is unchecked.
    """

    __slots__ = ("times", "values")

    def __init__(self) -> None:
        self.times = array("d")
        self.values = array("d")

    def __len__(self) -> int:
        return len(self.times)

    def append(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def bounds(self, start: float | None, end: float | None) -> tuple[int, int]:
        """Index range of samples with ``start <= time <= end``."""
        lo = 0 if start is None else bisect_left(self.times, start)
        hi = len(self.times) if end is None else bisect_right(self.times, end)
        return lo, hi

    def arrays(
        self, start: float | None = None, end: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(times, values)`` as numpy snapshot copies.

        Copies, not views: ``np.frombuffer`` over the live columns would
        pin their buffers and make the next :meth:`append` raise
        ``BufferError`` while a caller still holds the result.  The
        transient view below is dropped as soon as the copy is made.
        """
        lo, hi = self.bounds(start, end)
        times = np.frombuffer(self.times, dtype=np.float64)[lo:hi].copy()
        values = np.frombuffer(self.values, dtype=np.float64)[lo:hi].copy()
        return times, values

    def value_at_or_before(self, when: float) -> float | None:
        """Step-function lookup: the last value at or before ``when``."""
        idx = bisect_right(self.times, when) - 1
        return self.values[idx] if idx >= 0 else None

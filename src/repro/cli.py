"""Command-line interface.

The subcommands mirror the ways the paper's prototype was used, plus
the layered-service workflows:

* ``study`` — deploy SpotLight on a simulated fleet, monitor for N
  days, and print the availability report (optionally exporting the
  probe log to CSV and/or saving a datastore snapshot);
* ``trace`` — generate a synthetic spot-price trace CSV from a named
  profile;
* ``figures`` — run a monitoring deployment and print the Chapter 5
  figure series;
* ``replay`` — run a (passive) SpotLight over a recorded price CSV —
  no simulator — and print the top-N stable markets;
* ``query`` — reload a datastore snapshot in a fresh process and serve
  one frontend request against it, printing the JSON response (with
  ``--stats``, the frontend's cache counters ride along;
  ``--batch-file`` serves a whole file of requests in one batch pass);
* ``serve`` — put a datastore snapshot on the wire: an asyncio HTTP
  server answering ``POST /query`` (plus ``/healthz`` and ``/stats``)
  until SIGINT/SIGTERM, shutting down gracefully.  ``--workers N``
  pre-forks N ``SO_REUSEPORT`` worker processes over the snapshot so
  throughput scales across cores; a parent-side supervisor re-spawns
  workers that die (``--max-respawns``/``--respawn-backoff`` tune the
  budget, ``--no-supervise`` disables it).  ``--chaos-plan plan.json``
  runs a seeded fault schedule (worker kills, slow-loris, socket
  resets — see RELIABILITY.md) against the pool while it serves.
  ``--follow`` turns the server into a live *replica*: a tailer thread
  follows the snapshot directory's WAL as a ``record`` process appends
  to it, applying committed increments without a restart and serving a
  resumable ``GET /watch`` change feed;
* ``record`` — run a live monitoring study that *streams* into a
  snapshot directory: increments are appended to the WAL and committed
  (fsync + watermark) every ``--commit-interval`` of simulated time,
  so concurrent ``serve --follow`` replicas stay within a bounded lag
  of the recorder.  ``--resume`` continues into a directory that
  already holds observations; ``kill -9`` mid-run loses at most the
  uncommitted tail, which the next run trims and re-records;
* ``watch`` — subscribe to a ``serve --follow`` replica's change feed
  and print one JSON event per line (spikes, revocations,
  availability transitions), reconnecting with a resume cursor.

Examples::

    python -m repro study --days 3 --regions us-east-1 sa-east-1 --seed 7
    python -m repro trace --profile c3.2xlarge-us-east-1d --days 14 -o trace.csv
    python -m repro figures --days 5 --seed 11
    python -m repro study --days 2 --snapshot ./spotlight-state
    python -m repro replay --prices prices.csv --top 10
    python -m repro query --snapshot ./spotlight-state \\
        --name top-stable-markets --params '{"n": 10}'
    python -m repro serve --snapshot ./spotlight-state --port 8080
    python -m repro serve --snapshot ./spotlight-state --port 8080 --workers 4
    python -m repro serve --snapshot ./spotlight-state --workers 2 \\
        --chaos-plan chaos.json
    python -m repro record --snapshot ./live-state --days 30 --pace 0.05
    python -m repro serve --snapshot ./live-state --follow --port 8080
    python -m repro watch --host 127.0.0.1 --port 8080 --since 0
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import signal
import sys
import time

from repro import (
    EC2Simulator,
    FleetConfig,
    SnapshotDatastore,
    SpotLight,
    SpotLightConfig,
    SpotLightQuery,
    TraceReplayProvider,
)
from repro.analysis import availability as av
from repro.analysis import duration as du
from repro.analysis import related as rel
from repro.analysis.context import AnalysisContext
from repro.analysis.spikes import bucket_label
from repro.core.frontend import QueryFrontend
from repro.core.records import ProbeKind
from repro.ec2.catalog import default_catalog, small_catalog
from repro.traces import SpotPriceTraceGenerator, profile, save_trace_csv

DEFAULT_REGIONS = ["us-east-1", "sa-east-1", "ap-southeast-2"]
DEFAULT_FAMILIES = ["c3", "m3"]


def _fresh_snapshot_store(path: str) -> SnapshotDatastore:
    """Open a snapshot directory for a *new* recording run.

    A monitoring run starts its clock at t=0, so it cannot append to a
    directory that already holds observations (their timestamps would
    collide); refuse loudly instead of crashing mid-run.
    """
    datastore = SnapshotDatastore(path)
    if len(datastore) or datastore.price_count():
        datastore.close()
        raise SystemExit(
            f"error: snapshot directory {path!r} already holds a recording "
            f"({datastore.price_count()} prices, {len(datastore)} probes); "
            f"use a fresh directory (or `query` to read this one)"
        )
    return datastore


def _deploy(args) -> tuple[EC2Simulator, SpotLight]:
    catalog = small_catalog(regions=args.regions, families=args.families)
    simulator = EC2Simulator(
        FleetConfig(catalog=catalog, seed=args.seed, tick_interval=300.0)
    )
    datastore = None
    if getattr(args, "snapshot", None):
        datastore = _fresh_snapshot_store(args.snapshot)
    spotlight = SpotLight(
        simulator,
        SpotLightConfig(
            threshold_multiple=args.threshold,
            sampling_probability=args.sampling,
            spot_probe_interval=4 * 3600.0,
        ),
        datastore=datastore,
    )
    spotlight.start()
    print(
        f"monitoring {len(spotlight.markets)} markets for {args.days} "
        f"simulated day(s)...",
        file=sys.stderr,
    )
    simulator.run_for(args.days * 86400.0)
    return simulator, spotlight


def cmd_study(args) -> int:
    simulator, spotlight = _deploy(args)
    stats = spotlight.stats()
    print(f"probes issued:      {stats['probes_logged']}")
    print(f"detections:         {stats['unavailability_detections']}")
    print(f"probing spend:      ${stats['budget_spent']:.2f}")

    periods = spotlight.query.unavailability_periods(kind=ProbeKind.ON_DEMAND)
    print(f"unavailability periods: {len(periods)}")
    by_region: dict[str, float] = {}
    for period in periods:
        by_region[period.market.region] = (
            by_region.get(period.market.region, 0.0) + period.duration
        )
    for region, total in sorted(by_region.items(), key=lambda kv: -kv[1]):
        print(f"  {region:<18} {total / 3600:8.1f} market-hours unavailable")

    if args.export:
        rows = spotlight.database.export_probes_csv(args.export)
        print(f"exported {rows} probe records to {args.export}")
    if args.report:
        from pathlib import Path

        from repro.analysis.report import render_study_report

        Path(args.report).write_text(render_study_report(spotlight))
        print(f"wrote study report to {args.report}")
    if args.snapshot:
        spotlight.save()
        print(f"saved datastore snapshot to {args.snapshot}")
    return 0


def _print_top_stable(frontend: QueryFrontend, n: int) -> None:
    response = frontend.handle(
        {"query": "top-stable-markets", "params": {"n": n, "bid_multiple": 1.0}}
    )
    print(f"top {n} most stable markets (bid = 1x on-demand):")
    for entry in response["result"]:
        print(
            f"  {entry['market']:<44} "
            f"mttr {entry['mean_time_to_revocation'] / 3600:8.1f} h  "
            f"avail {entry['availability_at_bid']:.1%}  "
            f"mean ${entry['mean_price']:.4f}/h"
        )


def cmd_replay(args) -> int:
    provider = TraceReplayProvider.from_prices_csv(args.prices)
    datastore = _fresh_snapshot_store(args.snapshot) if args.snapshot else None
    spotlight = SpotLight(provider, SpotLightConfig(), datastore=datastore)
    spotlight.start()
    print(
        f"replaying {len(spotlight.markets)} markets to "
        f"t={provider.end_time:.0f}s...",
        file=sys.stderr,
    )
    provider.replay_all()
    stats = spotlight.stats()
    print(f"price samples replayed: {spotlight.database.price_count()}")
    print(f"passive mode:           {stats['passive']}")
    _print_top_stable(spotlight.frontend, args.top)
    if args.snapshot:
        spotlight.save()
        print(f"saved datastore snapshot to {args.snapshot}")
    return 0


def _open_snapshot_frontend(
    path: str, vectorized: bool = True
) -> tuple[QueryFrontend, SnapshotDatastore]:
    # Prices are resolved against the full default catalog.  Snapshots
    # recorded by this CLI always price identically (study/replay use
    # subsets of the same 2015 price table); snapshots built in-library
    # against a *custom* catalog should be queried in-library instead.
    # The datastore rides along so `serve --follow` can hand it to a
    # replica tailer.
    datastore = SnapshotDatastore(path, append_log=False, must_exist=True)
    frontend = QueryFrontend(
        SpotLightQuery(datastore, default_catalog(), vectorized=vectorized)
    )
    return frontend, datastore


def cmd_query(args) -> int:
    try:
        frontend, _datastore = _open_snapshot_frontend(
            args.snapshot, vectorized=args.engine == "vectorized"
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.batch_file:
        return _run_batch_file(frontend, args.batch_file)
    try:
        params = json.loads(args.params)
    except json.JSONDecodeError as exc:
        print(f"--params is not valid JSON: {exc}", file=sys.stderr)
        return 2
    response = frontend.handle({"query": args.name, "params": params})
    if args.repeat > 1:
        for _ in range(args.repeat - 1):
            response = frontend.handle({"query": args.name, "params": params})
    if args.stats:
        response = {**response, "frontend_stats": frontend.stats()}
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response["ok"] else 1


def _run_batch_file(frontend: QueryFrontend, path: str) -> int:
    """``query --batch-file``: serve N schema requests in one pass.

    The file holds either a JSON array of requests or JSON Lines (one
    request object per line).  Output is one batch response — the same
    wire body ``POST /batch`` would return, duplicates answered from
    the byte cache.  Exits 0 only if every sub-query succeeded.
    """
    try:
        text = open(path, encoding="utf-8").read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        stripped = text.lstrip()
        if stripped.startswith("["):
            requests = json.loads(text)
        else:
            requests = [
                json.loads(line) for line in text.splitlines() if line.strip()
            ]
    except json.JSONDecodeError as exc:
        print(f"--batch-file is not valid JSON: {exc}", file=sys.stderr)
        return 2
    if not isinstance(requests, list) or not requests:
        print("--batch-file must hold a non-empty list of requests",
              file=sys.stderr)
        return 2
    body = frontend.handle_wire_batch(requests)
    decoded = json.loads(body)
    print(json.dumps(decoded, indent=2, sort_keys=True))
    return 0 if all(sub.get("ok") for sub in decoded["results"]) else 1


def _serve_pool(args) -> int:
    """``serve --workers N``: pre-forked SO_REUSEPORT worker processes
    over the snapshot, one event loop per core, supervised by default
    (dead workers re-spawn with capped exponential backoff)."""
    from repro.server_pool import WorkerPool

    chaos_plan = None
    if getattr(args, "chaos_plan", None):
        from repro.chaos import ChaosPlan

        try:
            chaos_plan = ChaosPlan.load(args.chaos_plan)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    pool = WorkerPool(
        args.snapshot,
        workers=args.workers,
        host=args.host,
        port=args.port,
        rate_per_second=args.rate,
        burst=args.burst,
        supervise=not args.no_supervise,
        max_respawns=args.max_respawns,
        respawn_backoff=args.respawn_backoff,
        follow=args.follow,
        max_lag=args.max_lag,
        poll_interval=args.poll_interval,
    )
    harness = None

    def _interrupt(signum, frame):
        raise KeyboardInterrupt

    # Install both handlers explicitly and *before* the workers spawn:
    # a non-interactive shell starts background jobs with SIGINT
    # ignored (Python then skips its KeyboardInterrupt handler), and a
    # signal racing the pool startup must still reach cleanup code —
    # never leave orphaned workers holding the port.
    previous = {
        signum: signal.signal(signum, _interrupt)
        for signum in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        started = False
        try:
            pool.start()
            started = True
            host, port = pool.address
            print(
                f"serving on http://{host}:{port} with "
                f"{args.workers} workers",
                flush=True,
            )
            if chaos_plan is not None:
                from repro.chaos import ChaosHarness

                harness = ChaosHarness(chaos_plan, pool=pool).start()
            # Supervised: blocks until a worker slot exhausts its
            # respawn budget.  Unsupervised: any worker death ends the
            # run so the rest shut down too.
            pool.wait()
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            pool.terminate()
            return 2
        except KeyboardInterrupt:
            if not started:
                pool.terminate()
                print("interrupted during startup; workers stopped",
                      file=sys.stderr)
                return 1
            # Started and interrupted: fall through to the graceful stop.
        try:
            if harness is not None:
                harness.stop()
            pool.stop()
        except KeyboardInterrupt:
            # A second signal mid-drain: stop waiting politely.
            pool.terminate()
            print("error: interrupted during drain; workers killed",
                  file=sys.stderr)
            return 1
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    totals = pool.aggregate()
    print(
        f"shutdown complete: {totals['queries']} queries served across "
        f"{totals['workers']} workers, {totals['coalesced']} coalesced, "
        f"{totals['throttled']} throttled",
        flush=True,
    )
    if pool.respawns:
        print(f"supervisor respawned {pool.respawns} worker(s)", flush=True)
    if pool.failed:
        print("error: a worker exhausted its respawn budget",
              file=sys.stderr)
        return 1
    return 0


def _serve_shards(args) -> int:
    """``serve --shards N``: a :class:`~repro.server_pool.ShardCluster`
    of catalog-filtered shard workers plus a scatter-gather
    :class:`~repro.router.SpotLightRouter` in this process."""
    from repro.router import SpotLightRouter
    from repro.server_pool import ShardCluster

    if args.follow:
        print("error: --follow is not supported with --shards",
              file=sys.stderr)
        return 2
    chaos_plan = None
    if getattr(args, "chaos_plan", None):
        from repro.chaos import ChaosPlan

        try:
            chaos_plan = ChaosPlan.load(args.chaos_plan)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    cluster = ShardCluster(
        args.snapshot,
        shards=args.shards,
        host=args.host,
        supervise=not args.no_supervise,
        max_respawns=args.max_respawns,
        respawn_backoff=args.respawn_backoff,
    )

    def _interrupt(signum, frame):
        raise KeyboardInterrupt

    # Same discipline as _serve_pool: interrupts must reach cleanup
    # code even while the shards are still spawning.
    previous = {
        signum: signal.signal(signum, _interrupt)
        for signum in (signal.SIGINT, signal.SIGTERM)
    }
    harness = None
    router_stats: dict = {}

    async def _run_router() -> None:
        nonlocal router_stats
        shutdown = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signum, shutdown.set)
        router = SpotLightRouter(
            cluster.shard_addresses,
            host=args.host,
            port=args.port,
            rate_per_second=args.rate,
            burst=args.burst,
        )
        await router.start()
        host, port = router.address
        print(
            f"serving on http://{host}:{port} "
            f"(router over {args.shards} shards)",
            flush=True,
        )

        async def _watch_cluster() -> None:
            # Mirror pool.wait(): a cluster that permanently fails (a
            # slot exhausted its respawn budget) ends the run.
            while not shutdown.is_set():
                if cluster.failed:
                    print(
                        "error: a shard exhausted its respawn budget; "
                        "shutting down",
                        file=sys.stderr,
                    )
                    shutdown.set()
                    return
                await asyncio.sleep(0.5)

        watcher = asyncio.ensure_future(_watch_cluster())
        await shutdown.wait()
        watcher.cancel()
        await asyncio.gather(watcher, return_exceptions=True)
        await router.stop()
        router_stats = router.stats()

    try:
        started = False
        try:
            cluster.start()
            started = True
            if chaos_plan is not None:
                from repro.chaos import ChaosHarness

                harness = ChaosHarness(chaos_plan, pool=cluster).start()
            asyncio.run(_run_router())
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            cluster.terminate()
            return 2
        except KeyboardInterrupt:
            if not started:
                cluster.terminate()
                print("interrupted during startup; shards stopped",
                      file=sys.stderr)
                return 1
        # Drain under the plain interrupt handlers again (the router's
        # loop-scoped handlers died with its event loop).
        for signum in (signal.SIGINT, signal.SIGTERM):
            signal.signal(signum, _interrupt)
        try:
            if harness is not None:
                harness.stop()
            cluster.stop()
        except KeyboardInterrupt:
            cluster.terminate()
            print("error: interrupted during drain; shards killed",
                  file=sys.stderr)
            return 1
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    totals = cluster.aggregate()
    shard_stats = router_stats.get("shards", {})
    endpoints = router_stats.get("endpoints", {})
    queries = endpoints.get("/query", {}).get("requests", 0)
    print(
        f"shutdown complete: {queries} queries through the router "
        f"({shard_stats.get('forwarded_queries', 0)} forwarded, "
        f"{shard_stats.get('scatter_queries', 0)} scattered, "
        f"{totals['queries']} shard-side), "
        f"{totals['coalesced']} coalesced",
        flush=True,
    )
    if cluster.respawns:
        print(f"supervisor respawned {cluster.respawns} shard(s)",
              flush=True)
    if cluster.failed:
        print("error: a shard exhausted its respawn budget",
              file=sys.stderr)
        return 1
    return 0


def cmd_serve(args) -> int:
    from repro.server import serve

    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 2
    shards = getattr(args, "shards", 1)
    if shards < 1:
        print(f"error: --shards must be >= 1, got {shards}",
              file=sys.stderr)
        return 2
    if shards > 1:
        if args.workers > 1:
            print("error: --shards and --workers are mutually exclusive",
                  file=sys.stderr)
            return 2
        return _serve_shards(args)
    # A chaos plan always runs against a supervised pool (kill-worker
    # needs worker processes to kill), even at --workers 1.
    if args.workers > 1 or args.chaos_plan:
        return _serve_pool(args)
    try:
        frontend, datastore = _open_snapshot_frontend(args.snapshot)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    frontend.prime()  # build the read index before the first request

    replica = None
    serve_kwargs: dict = {}
    if args.follow:
        from repro.replication import ReplicaTailer

        replica = ReplicaTailer(
            datastore,
            frontend,
            catalog=default_catalog(),
            max_lag=args.max_lag,
            poll_interval=args.poll_interval,
        )
        # The server serializes replicated inserts and engine reads on
        # the tailer's lock; /watch and /healthz see the tailer itself.
        serve_kwargs = {"replica": replica, "frontend_lock": replica.lock}

    async def _run() -> None:
        shutdown = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signum, shutdown.set)

        def announce(server) -> None:
            host, port = server.address
            mode = " (following the recorder's WAL)" if replica else ""
            print(f"serving on http://{host}:{port}{mode}", flush=True)
            if replica is not None:
                replica.start()

        server = await serve(
            frontend,
            host=args.host,
            port=args.port,
            rate_per_second=args.rate,
            burst=args.burst,
            shutdown=shutdown,
            on_start=announce,
            **serve_kwargs,
        )
        if replica is not None:
            replica.stop()
        stats = server.stats()
        queries = stats["endpoints"]["/query"]["requests"]
        print(
            f"shutdown complete: {queries} queries served, "
            f"{stats['coalesced']} coalesced, {stats['throttled']} throttled",
            flush=True,
        )
        if replica is not None:
            health = replica.health()
            print(
                f"replica: applied_seq {health['applied_seq']} / committed "
                f"{health['committed_seq']} (lag {health['lag']})",
                flush=True,
            )

    asyncio.run(_run())
    return 0


def cmd_record(args) -> int:
    """``record``: a live study streaming into a replicated snapshot.

    Unlike ``study`` (which saves once at the end), every
    ``--commit-interval`` of simulated time the recorder fsyncs the WAL
    and publishes the watermark, so a concurrent ``serve --follow``
    replica applies the increments live.  ``--save-interval`` rolls the
    WAL generation over with a full snapshot; ``--pace`` sleeps between
    commits so wall-clock observers (replicas, chaos harnesses) get a
    window to act in.
    """
    from repro.replication import (
        Recorder,
        TimeShiftedDatastore,
        latest_record_time,
    )

    datastore = SnapshotDatastore(args.snapshot)
    resuming = bool(len(datastore) or datastore.price_count())
    if resuming and not args.resume:
        datastore.close()
        print(
            f"error: snapshot directory {args.snapshot!r} already holds a "
            f"recording; pass --resume to append to it",
            file=sys.stderr,
        )
        return 2
    recorder = Recorder(datastore)
    recorder.bootstrap()

    sink = datastore
    if resuming:
        # The fresh simulator's clock restarts at zero; shift appended
        # record times past everything already recorded (plus one tick)
        # so per-market time order survives the resume.
        offset = latest_record_time(datastore) + 300.0
        sink = TimeShiftedDatastore(datastore, offset)
        print(f"resuming: shifting new records by +{offset:.0f}s",
              file=sys.stderr)

    catalog = small_catalog(regions=args.regions, families=args.families)
    simulator = EC2Simulator(
        FleetConfig(catalog=catalog, seed=args.seed, tick_interval=300.0)
    )
    spotlight = SpotLight(
        simulator,
        SpotLightConfig(
            threshold_multiple=args.threshold,
            sampling_probability=args.sampling,
            spot_probe_interval=4 * 3600.0,
        ),
        datastore=sink,
    )
    spotlight.start()

    total = args.days * 86400.0
    step = max(float(args.commit_interval), 1.0)
    print(
        f"recording {len(spotlight.markets)} markets for {args.days} "
        f"simulated day(s) into {args.snapshot} "
        f"(commit every {step:.0f}s of simulated time)...",
        file=sys.stderr,
    )
    elapsed = 0.0
    since_save = 0.0
    try:
        while elapsed < total:
            chunk = min(step, total - elapsed)
            simulator.run_for(chunk)
            elapsed += chunk
            since_save += chunk
            if args.save_interval and since_save >= args.save_interval:
                recorder.save()
                since_save = 0.0
            else:
                recorder.commit()
            if args.pace:
                time.sleep(args.pace)
    except KeyboardInterrupt:
        watermark = recorder.commit()
        print(
            f"interrupted at t={elapsed:.0f}s; committed seq "
            f"{watermark['seq']}",
            file=sys.stderr,
        )
        return 1
    watermark = recorder.save()
    print(
        f"recorded {len(datastore)} probes and {datastore.price_count()} "
        f"prices (committed seq {watermark['seq']}, "
        f"generation {watermark['generation']})"
    )
    return 0


def cmd_watch(args) -> int:
    """``watch``: print a replica's change feed, one JSON event/line."""
    from repro.client import QueryError, SpotLightClient, TransportError

    client = SpotLightClient(args.host, args.port, timeout=args.timeout)
    count = 0
    try:
        for event in client.watch(
            since_seq=args.since,
            heartbeats=True,
            heartbeat_interval=args.heartbeat,
            max_attempts=args.max_attempts,
        ):
            if event.get("heartbeat"):
                if args.idle_exit and count >= args.idle_exit:
                    break
                continue
            print(json.dumps(event, sort_keys=True), flush=True)
            count += 1
            if args.max_events and count >= args.max_events:
                break
    except (QueryError, TransportError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        pass
    finally:
        client.close()
    print(f"{count} event(s)", file=sys.stderr)
    return 0


def cmd_trace(args) -> int:
    config = profile(args.profile)
    events = SpotPriceTraceGenerator(config, seed=args.seed).generate(
        args.days * 86400.0
    )
    count = save_trace_csv(args.output, events, market=args.profile)
    above = sum(1 for _, p in events if p > config.on_demand_price)
    print(f"wrote {count} price events to {args.output} "
          f"({above} above the on-demand price)")
    return 0


def cmd_figures(args) -> int:
    simulator, spotlight = _deploy(args)
    context = AnalysisContext(spotlight.database, simulator.catalog)

    print("\n[Fig 5.4] P(on-demand unavailable) vs spike size (900 s window):")
    row = av.unavailability_vs_spike(context, windows=(900.0,))[900.0]
    for bucket in sorted(row):
        print(f"  {bucket_label(bucket):>5}: {row[bucket]:.2%}")

    print("\n[Fig 5.6] per-region P(unavailable) at >1x:")
    for region, values in sorted(av.unavailability_by_region(context).items()):
        print(f"  {region:<18} {values.get(1.0, 0.0):.2%}")

    attribution = rel.rejection_attribution(context)
    share = attribution["by_related_markets"].get(0.0, 0.0)
    print(f"\n[Fig 5.7] related-market share of rejections: {share:.0%}")

    summary = du.duration_summary(du.unavailability_durations(context))
    print(f"[Fig 5.9] {summary['count']} periods, "
          f"{summary['fraction_under_1h']:.0%} under 1 h, "
          f"max {summary['max_hours']:.1f} h")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SpotLight reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_deploy_args(p):
        p.add_argument("--days", type=float, default=2.0)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--regions", nargs="+", default=DEFAULT_REGIONS)
        p.add_argument("--families", nargs="+", default=DEFAULT_FAMILIES)
        p.add_argument("--threshold", type=float, default=1.0,
                       help="spike threshold T in multiples of on-demand")
        p.add_argument("--sampling", type=float, default=1.0,
                       help="sampling ratio p")

    study = sub.add_parser("study", help="run a monitoring study")
    add_deploy_args(study)
    study.add_argument("--export", help="write the probe log to this CSV path")
    study.add_argument("--report", help="write a markdown study report here")
    study.add_argument("--snapshot",
                       help="persist the datastore to this directory")
    study.set_defaults(func=cmd_study)

    replay = sub.add_parser(
        "replay", help="run SpotLight over a recorded price CSV (no simulator)"
    )
    replay.add_argument("--prices", required=True,
                        help="multi-market price CSV (export_prices_csv format)")
    replay.add_argument("--top", type=int, default=10,
                        help="print the N most stable markets")
    replay.add_argument("--snapshot",
                        help="persist the datastore to this directory")
    replay.set_defaults(func=cmd_replay)

    query = sub.add_parser(
        "query", help="serve one frontend request over a saved snapshot"
    )
    query.add_argument("--snapshot", required=True,
                       help="datastore snapshot directory to load")
    query.add_argument("--name", default="top-stable-markets",
                       help="query name (frontend schema)")
    query.add_argument("--params", default="{}",
                       help="query parameters as a JSON object")
    query.add_argument("--repeat", type=int, default=1,
                       help="serve the request N times (exercises the cache)")
    query.add_argument("--batch-file",
                       help="serve every request in this file (JSON array "
                            "or JSON Lines of schema requests) in one "
                            "batch; prints the /batch-format response")
    query.add_argument("--stats", action="store_true",
                       help="include the frontend's cache counters in the "
                            "printed response")
    query.add_argument("--engine", choices=["vectorized", "reference"],
                       default="vectorized",
                       help="query execution path (the scalar reference "
                            "path exists for debugging and equivalence "
                            "checks)")
    query.set_defaults(func=cmd_query)

    serve_cmd = sub.add_parser(
        "serve", help="serve a saved snapshot over HTTP (asyncio)"
    )
    serve_cmd.add_argument("--snapshot", required=True,
                           help="datastore snapshot directory to load")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8080,
                           help="listen port (0 picks a free one)")
    serve_cmd.add_argument("--rate", type=float, default=500.0,
                           help="per-client admitted queries per second")
    serve_cmd.add_argument("--burst", type=float, default=1000.0,
                           help="per-client admission burst size")
    serve_cmd.add_argument("--workers", type=int, default=1,
                           help="worker processes; >1 pre-forks "
                                "SO_REUSEPORT workers so throughput "
                                "scales across cores")
    serve_cmd.add_argument("--shards", type=int, default=1,
                           help="catalog shards; >1 spawns a worker per "
                                "shard (each loading only its slice of "
                                "the snapshot) behind a scatter-gather "
                                "router on --port")
    serve_cmd.add_argument("--chaos-plan",
                           help="JSON fault schedule to run against the "
                                "pool while serving (see RELIABILITY.md); "
                                "implies the pool path even at --workers 1")
    serve_cmd.add_argument("--no-supervise", action="store_true",
                           help="disable the supervisor (a dead worker "
                                "ends the run instead of respawning)")
    serve_cmd.add_argument("--max-respawns", type=int, default=8,
                           help="respawn budget per worker slot before "
                                "the pool is declared failed")
    serve_cmd.add_argument("--respawn-backoff", type=float, default=0.25,
                           help="base respawn delay, doubled per "
                                "consecutive death (capped at 5s)")
    serve_cmd.add_argument("--follow", action="store_true",
                           help="tail the snapshot directory's WAL and "
                                "apply increments committed by a live "
                                "`record` process; enables GET /watch "
                                "and the replica staleness gauge")
    serve_cmd.add_argument("--max-lag", type=int, default=512,
                           help="committed-but-unapplied rows before "
                                "/healthz reports degraded (with --follow)")
    serve_cmd.add_argument("--poll-interval", type=float, default=0.2,
                           help="replica watermark poll interval in "
                                "seconds (with --follow)")
    serve_cmd.set_defaults(func=cmd_serve)

    record = sub.add_parser(
        "record",
        help="run a live study streaming into a replicated snapshot",
    )
    add_deploy_args(record)
    record.add_argument("--snapshot", required=True,
                        help="snapshot directory to record into")
    record.add_argument("--resume", action="store_true",
                        help="append to a directory that already holds "
                             "observations (record times are shifted "
                             "past the existing ones)")
    record.add_argument("--commit-interval", type=float, default=1800.0,
                        help="simulated seconds between WAL commits "
                             "(fsync + watermark publish)")
    record.add_argument("--save-interval", type=float, default=0.0,
                        help="simulated seconds between full snapshots "
                             "(WAL generation rollovers); 0 saves only "
                             "at the end")
    record.add_argument("--pace", type=float, default=0.0,
                        help="wall-clock sleep after each commit, so "
                             "live followers can observe the run")
    record.set_defaults(func=cmd_record)

    watch = sub.add_parser(
        "watch", help="stream a follower replica's change feed as JSON lines"
    )
    watch.add_argument("--host", default="127.0.0.1")
    watch.add_argument("--port", type=int, default=8080)
    watch.add_argument("--since", type=int, default=None,
                       help="resume cursor: replay retained events after "
                            "this sequence number (0 = from the oldest "
                            "retained; default = new events only)")
    watch.add_argument("--heartbeat", type=float, default=1.0,
                       help="server heartbeat interval in seconds")
    watch.add_argument("--timeout", type=float, default=10.0,
                       help="socket timeout in seconds")
    watch.add_argument("--max-events", type=int, default=0,
                       help="exit after printing N events (0 = no limit)")
    watch.add_argument("--idle-exit", type=int, default=0,
                       help="exit on the first heartbeat that arrives "
                            "after at least N events (0 = keep waiting)")
    watch.add_argument("--max-attempts", type=int, default=None,
                       help="give up after N consecutive failed "
                            "reconnects (default: retry forever)")
    watch.set_defaults(func=cmd_watch)

    trace = sub.add_parser("trace", help="generate a synthetic price trace")
    trace.add_argument("--profile", default="c3.2xlarge-us-east-1d")
    trace.add_argument("--days", type=float, default=14.0)
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("-o", "--output", default="trace.csv")
    trace.set_defaults(func=cmd_trace)

    figures = sub.add_parser("figures", help="print the Chapter 5 series")
    add_deploy_args(figures)
    figures.set_defaults(func=cmd_figures)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Serve SpotLight over HTTP and query it with the client SDK.

Runs a short monitoring deployment, puts the resulting frontend on the
wire with :class:`~repro.server.BackgroundServer`, and asks the same
questions as ``examples/quickstart.py`` — but through
:class:`~repro.client.SpotLightClient`, the way SpotOn, SpotCheck, or a
derivative cloud would consume a deployed SpotLight:

    python examples/serving.py
"""

from repro import (
    BackgroundServer,
    EC2Simulator,
    FleetConfig,
    SpotLight,
    SpotLightClient,
    SpotLightConfig,
)
from repro.ec2.catalog import small_catalog


def main(
    days: float = 1.0,
    regions: list[str] | None = None,
    families: list[str] | None = None,
    seed: int = 42,
) -> dict:
    catalog = small_catalog(
        regions=regions or ["us-east-1", "sa-east-1"],
        families=families or ["c3", "m3"],
    )
    simulator = EC2Simulator(FleetConfig(catalog=catalog, seed=seed))
    spotlight = SpotLight(simulator, SpotLightConfig(spot_probe_interval=4 * 3600))
    spotlight.start()
    print(f"monitoring {len(spotlight.markets)} markets "
          f"for {days} simulated day(s)...")
    simulator.run_for(days * 86400)

    # Put the frontend on the wire (an ephemeral port on localhost)
    # and talk to it exactly as a remote application would.
    with BackgroundServer(spotlight.frontend) as server:
        host, port = server.address
        print(f"\nSpotLight serving on http://{host}:{port}")
        with SpotLightClient(host, port) as client:
            health = client.healthz()
            print(f"healthz: {health['status']}")

            print("\ntop 5 most stable spot markets (bid = 1x on-demand):")
            for entry in client.top_stable_markets(n=5, bid_multiple=1.0):
                print(
                    f"  {entry['market']:<44} "
                    f"mttr {entry['mean_time_to_revocation'] / 3600:8.1f} h  "
                    f"avail {entry['availability_at_bid']:.1%}"
                )

            market = client.top_stable_markets(n=1)[0]["market"]
            print(f"\nmean price of {market}: "
                  f"${client.mean_price(market):.4f}/h "
                  f"(on-demand ${client.on_demand_price(market):.4f}/h)")
            print(f"platform rejection rate: {client.rejection_rate():.1%}")

            stats = client.stats()
        query_stats = stats["endpoints"]["/query"]
        print(
            f"\nserver stats: {query_stats['requests']} queries over "
            f"{stats['connections_accepted']} connection(s), "
            f"p99 {query_stats['latency']['p99_seconds'] * 1e3:.1f} ms, "
            f"{stats['frontend']['misses']} cache misses"
        )
    print("server shut down cleanly")
    return stats


if __name__ == "__main__":
    main()

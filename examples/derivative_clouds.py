#!/usr/bin/env python
"""The Chapter 6 case studies: repairing SpotCheck and SpotOn.

Both systems fail over from spot to on-demand servers and implicitly
assume the on-demand servers are available — which is least true
exactly when spot servers are revoked.  This example quantifies the
damage and the repair on a g2/d2 fleet like the paper's.

    python examples/derivative_clouds.py
"""

from repro import EC2Simulator, FleetConfig, SpotLight, SpotLightConfig
from repro.apps.spotcheck import SpotCheckConfig, SpotCheckSimulator
from repro.apps.spoton import JobConfig, SpotOnSimulator
from repro.core.market_id import MarketID
from repro.ec2.catalog import small_catalog


def main() -> None:
    catalog = small_catalog(
        regions=["us-east-1", "us-west-2", "ap-southeast-2"],
        families=["d2", "g2", "m3"],
    )
    simulator = EC2Simulator(FleetConfig(catalog=catalog, seed=23))
    spotlight = SpotLight(simulator, SpotLightConfig(spot_probe_interval=4 * 3600))
    spotlight.start()
    print("gathering a simulated week of availability data...")
    simulator.run_for(7 * 86400)

    markets = [
        MarketID("us-east-1e", "d2.2xlarge", "Linux/UNIX"),
        MarketID("ap-southeast-2a", "g2.8xlarge", "Linux/UNIX"),
    ]
    fallbacks = [
        MarketID("us-west-2a", "m3.2xlarge", "Linux/UNIX"),
        MarketID("us-west-2b", "m3.xlarge", "Linux/UNIX"),
    ]

    print("\nSpotCheck availability (interactive VMs):")
    spotcheck = SpotCheckSimulator(spotlight.query)
    for market in markets:
        config = SpotCheckConfig(market=market)
        naive = spotcheck.run_naive(config, 0.0, simulator.now)
        informed = spotcheck.run_with_spotlight(
            config, 0.0, simulator.now, candidates=fallbacks
        )
        print(
            f"  {str(market):<44} naive {naive.availability:.2%} "
            f"({naive.revocations} revocations, "
            f"{naive.failed_failovers} failed fail-overs) "
            f"-> SpotLight {informed.availability:.3%}"
        )

    print("\nSpotOn mean running time (1 h batch job, 100 trials):")
    job = JobConfig()
    for market in markets:
        naive = SpotOnSimulator(spotlight.query, seed=1).average_running_time(
            market, job, trials=100, horizon=(0.0, simulator.now)
        )
        fallback = SpotOnSimulator(spotlight.query).choose_fallback_with_spotlight(
            market, fallbacks
        )
        informed = SpotOnSimulator(spotlight.query, seed=1).average_running_time(
            market, job, trials=100, horizon=(0.0, simulator.now),
            fallback=fallback,
        )
        print(
            f"  {str(market):<44} naive {naive:.2f} h "
            f"-> SpotLight {informed:.2f} h"
        )


if __name__ == "__main__":
    main()

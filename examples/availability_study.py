#!/usr/bin/env python
"""The Chapter 5 availability study in miniature.

Deploys SpotLight over five regions for a simulated week and prints the
key observations: the spike-size/unavailability correlation (Fig 5.4),
the per-region picture (Fig 5.6), related-market attribution (Fig 5.7),
and the duration CDF (Fig 5.9).

    python examples/availability_study.py
"""

from repro import EC2Simulator, FleetConfig, SpotLight, SpotLightConfig
from repro.analysis import availability as av
from repro.analysis import duration as du
from repro.analysis import related as rel
from repro.analysis.context import AnalysisContext
from repro.analysis.spikes import bucket_label
from repro.ec2.catalog import small_catalog


def main() -> None:
    catalog = small_catalog(
        regions=[
            "us-east-1", "us-west-1", "sa-east-1",
            "ap-southeast-1", "ap-southeast-2",
        ],
        families=["c3", "m3"],
    )
    simulator = EC2Simulator(FleetConfig(catalog=catalog, seed=7))
    spotlight = SpotLight(simulator, SpotLightConfig(spot_probe_interval=4 * 3600))
    spotlight.start()
    print(f"monitoring {len(spotlight.markets)} markets for a simulated week...")
    simulator.run_for(7 * 86400)

    context = AnalysisContext(spotlight.database, simulator.catalog)

    print("\n[Fig 5.4] P(on-demand unavailable) vs spike size (window 900 s):")
    row = av.unavailability_vs_spike(context, windows=(900.0,))[900.0]
    for bucket in sorted(row):
        print(f"  {bucket_label(bucket):>5}: {row[bucket]:.2%}")

    print("\n[Fig 5.6] per-region P(unavailable) at the 1x trigger:")
    by_region = av.unavailability_by_region(context, window=900.0)
    for region in sorted(by_region, key=lambda r: -by_region[r].get(1.0, 0)):
        print(f"  {region:<16} {by_region[region].get(1.0, 0.0):.2%}")

    attribution = rel.rejection_attribution(context)
    share = attribution["by_related_markets"].get(0.0, 0.0)
    ratio = rel.related_detections_per_trigger(context)
    print(f"\n[Fig 5.7] {share:.0%} of rejections found by related-market "
          f"probing ({ratio:.1f} related rejections per trigger)")

    summary = du.duration_summary(du.unavailability_durations(context))
    print(f"\n[Fig 5.9] {summary['count']} unavailability periods: "
          f"{summary['fraction_under_1h']:.0%} under an hour, "
          f"longest {summary['max_hours']:.1f} h")


if __name__ == "__main__":
    main()

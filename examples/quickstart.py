#!/usr/bin/env python
"""Quickstart: deploy SpotLight on a simulated EC2 and query it.

Runs a two-day monitoring deployment over three regions, then uses the
query API to answer the questions the paper motivates: how often are
on-demand servers actually unavailable, for how long, and which spot
markets are the most stable to bid in?

    python examples/quickstart.py
"""

from repro import EC2Simulator, FleetConfig, SpotLight, SpotLightConfig
from repro.core.records import ProbeKind
from repro.ec2.catalog import small_catalog


def main() -> None:
    # A fleet of three regions (one well provisioned, two not) and two
    # instance families; 126 markets in total.
    catalog = small_catalog(
        regions=["us-east-1", "sa-east-1", "ap-southeast-2"],
        families=["c3", "m3"],
    )
    simulator = EC2Simulator(FleetConfig(catalog=catalog, seed=42))

    # SpotLight with the paper's defaults: trigger threshold T = 1x the
    # on-demand price, sample every spike, re-probe every 5 minutes.
    spotlight = SpotLight(simulator, SpotLightConfig(spot_probe_interval=4 * 3600))
    spotlight.start()

    print("monitoring", len(spotlight.markets), "markets for 2 simulated days...")
    simulator.run_for(2 * 86400)

    stats = spotlight.stats()
    print(f"probes issued:        {stats['probes_logged']}")
    print(f"detections:           {stats['unavailability_detections']}")
    print(f"probing spend:        ${stats['budget_spent']:.2f}")

    print("\non-demand unavailability periods (first 10):")
    periods = spotlight.query.unavailability_periods(kind=ProbeKind.ON_DEMAND)
    for period in periods[:10]:
        print(
            f"  {str(period.market):<44} "
            f"{period.duration / 60:6.1f} min  ({period.probe_count} probes)"
        )
    print(f"  ... {len(periods)} periods in total")

    print("\ntop 5 most stable spot markets (bid = 1x on-demand):")
    for entry in spotlight.query.top_stable_markets(n=5, bid_multiple=1.0):
        print(
            f"  {str(entry.market):<44} "
            f"mttr {entry.mean_time_to_revocation / 3600:6.1f} h  "
            f"avail {entry.availability_at_bid:.1%}  "
            f"mean ${entry.mean_price:.4f}/h"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: deploy SpotLight on a simulated EC2 and query it.

Runs a two-day monitoring deployment over three regions, then uses the
serving frontend to answer the questions the paper motivates: how often
are on-demand servers actually unavailable, for how long, and which
spot markets are the most stable to bid in?

    python examples/quickstart.py
"""

from repro import EC2Simulator, FleetConfig, SpotLight, SpotLightConfig
from repro.core.records import ProbeKind
from repro.ec2.catalog import small_catalog


def main(
    days: float = 2.0,
    regions: list[str] | None = None,
    families: list[str] | None = None,
    seed: int = 42,
) -> SpotLight:
    # A fleet of three regions (one well provisioned, two not) and two
    # instance families; 126 markets in total.
    catalog = small_catalog(
        regions=regions or ["us-east-1", "sa-east-1", "ap-southeast-2"],
        families=families or ["c3", "m3"],
    )
    simulator = EC2Simulator(FleetConfig(catalog=catalog, seed=seed))

    # SpotLight with the paper's defaults: trigger threshold T = 1x the
    # on-demand price, sample every spike, re-probe every 5 minutes.
    spotlight = SpotLight(simulator, SpotLightConfig(spot_probe_interval=4 * 3600))
    spotlight.start()

    print(f"monitoring {len(spotlight.markets)} markets "
          f"for {days} simulated day(s)...")
    simulator.run_for(days * 86400)

    stats = spotlight.stats()
    print(f"probes issued:        {stats['probes_logged']}")
    print(f"detections:           {stats['unavailability_detections']}")
    print(f"probing spend:        ${stats['budget_spent']:.2f}")

    # Applications talk to the TTL-cached serving frontend, either via
    # the typed methods or the dict request/response schema.
    frontend = spotlight.frontend

    print("\non-demand unavailability periods (first 10):")
    periods = frontend.unavailability_periods(kind=ProbeKind.ON_DEMAND)
    for period in periods[:10]:
        print(
            f"  {str(period.market):<44} "
            f"{period.duration / 60:6.1f} min  ({period.probe_count} probes)"
        )
    print(f"  ... {len(periods)} periods in total")

    print("\ntop 5 most stable spot markets (bid = 1x on-demand):")
    response = frontend.handle(
        {"query": "top-stable-markets", "params": {"n": 5, "bid_multiple": 1.0}}
    )
    for entry in response["result"]:
        print(
            f"  {entry['market']:<44} "
            f"mttr {entry['mean_time_to_revocation'] / 3600:6.1f} h  "
            f"avail {entry['availability_at_bid']:.1%}  "
            f"mean ${entry['mean_price']:.4f}/h"
        )
    return spotlight


if __name__ == "__main__":
    main()

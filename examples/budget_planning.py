#!/usr/bin/env python
"""Probing under a budget (Section 3.4).

Each fulfilled probe costs an hour of server time, so SpotLight fits
its spike threshold T and sampling ratio p to a monthly budget using
historical spike data.  This example derives both from a synthetic
price history and then runs a budget-capped deployment.

    python examples/budget_planning.py
"""

from repro import EC2Simulator, FleetConfig, SpotLight, SpotLightConfig
from repro.core.budget import BudgetController
from repro.ec2.catalog import small_catalog
from repro.traces import SpotPriceTraceGenerator, profile


def main() -> None:
    # 1. Derive T and p from a month of historical prices.
    config = profile("c3.2xlarge-us-east-1d")
    history = SpotPriceTraceGenerator(config, seed=5).generate(30 * 86400)
    multiples = [price / config.on_demand_price for _, price in history]
    probe_cost = config.on_demand_price  # one hour of on-demand time

    for budget in (100.0, 10.0, 1.0):
        threshold = BudgetController.derive_threshold(multiples, probe_cost, budget)
        p = BudgetController.derive_sampling_probability(
            multiples, threshold, probe_cost, budget
        )
        print(
            f"monthly budget ${budget:>6.0f}/market: "
            f"threshold T={threshold:.1f}x, sampling p={p:.2f}"
        )

    interval = BudgetController.spot_probe_interval(
        average_spot_price=sum(p for _, p in history) / len(history),
        budget=10.0,
        window=30 * 86400,
    )
    print(f"periodic spot probes affordable every {interval / 3600:.1f} h")

    # 2. Run a deployment under a hard budget and watch it stop probing.
    catalog = small_catalog(regions=["sa-east-1"], families=["c3"])
    simulator = EC2Simulator(FleetConfig(catalog=catalog, seed=13))
    spotlight = SpotLight(
        simulator,
        SpotLightConfig(budget=5.0, budget_window=30 * 86400),
    )
    spotlight.start()
    simulator.run_for(3 * 86400)
    window = spotlight.budget.windows[-1]
    print(
        f"\nbudget-capped run: spent ${window.spent:.2f} of $5.00, "
        f"{window.probes_charged} probes charged, "
        f"{window.probes_suppressed} suppressed"
    )


if __name__ == "__main__":
    main()

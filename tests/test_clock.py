"""Unit tests for the simulated clock."""

import pytest

from repro.common.clock import SECONDS_PER_HOUR, SimClock


def test_starts_at_zero_by_default():
    assert SimClock().now == 0.0


def test_starts_at_given_time():
    assert SimClock(100.0).now == 100.0


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        SimClock(-1.0)


def test_advance_to_moves_forward():
    clock = SimClock()
    clock.advance_to(50.0)
    assert clock.now == 50.0


def test_advance_to_same_time_is_allowed():
    clock = SimClock(10.0)
    clock.advance_to(10.0)
    assert clock.now == 10.0


def test_advance_to_backward_rejected():
    clock = SimClock(10.0)
    with pytest.raises(ValueError):
        clock.advance_to(5.0)


def test_advance_by_accumulates():
    clock = SimClock()
    clock.advance_by(10.0)
    clock.advance_by(5.0)
    assert clock.now == 15.0


def test_advance_by_negative_rejected():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance_by(-0.1)


def test_hours_conversion():
    clock = SimClock(2 * SECONDS_PER_HOUR)
    assert clock.hours() == 2.0

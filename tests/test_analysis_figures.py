"""Analysis-module tests over the shared monitored run.

These check the *structure and direction* of every Chapter 5 analysis
on real simulated data; the benchmark harness checks the shapes at
paper scale.
"""

import pytest

from repro.analysis import availability as av
from repro.analysis import cross as cr
from repro.analysis import duration as du
from repro.analysis import related as rel
from repro.analysis import spot as spa
from repro.analysis.context import AnalysisContext


@pytest.fixture(scope="module")
def context(monitored_run):
    sim, spotlight = monitored_run
    return AnalysisContext(spotlight.database, sim.catalog)


class TestFig54:
    def test_larger_windows_never_decrease_probability(self, context):
        result = av.unavailability_vs_spike(context, windows=(900.0, 3600.0))
        for threshold, p_small in result[900.0].items():
            # Same clustering rule, longer window -> at least as many hits
            # per event; allow small slack from re-clustering.  The >10X
            # bucket is skipped: prices are capped at 10x on-demand, so
            # it only holds a handful of cap-edge rounding artifacts.
            if threshold >= 10.0:
                continue
            assert result[3600.0][threshold] >= p_small - 0.02

    def test_probabilities_are_probabilities(self, context):
        result = av.unavailability_vs_spike(context, windows=(900.0,))
        assert all(0.0 <= v <= 1.0 for v in result[900.0].values())

    def test_correlation_rises_with_spike_size(self, context):
        row = av.unavailability_vs_spike(context, windows=(3600.0,))[3600.0]
        assert row[5.0] > row[0.0]


class TestFig55:
    def test_shares_sum_to_one_per_bucket(self, context):
        result = av.rejected_probes_by_region(context)
        if not result:
            pytest.skip("no rejected spike probes in this run")
        buckets = next(iter(result.values())).keys()
        for bucket in buckets:
            total = sum(result[r][bucket] for r in result)
            assert total == pytest.approx(1.0) or total == 0.0


class TestFig56:
    def test_under_provisioned_regions_dominate(self, context):
        result = av.unavailability_by_region(context, window=900.0)
        if "sa-east-1" not in result or "us-east-1" not in result:
            pytest.skip("run lacks data for one region")
        at_1x = lambda region: result[region].get(1.0, 0.0)
        assert at_1x("sa-east-1") > at_1x("us-east-1")

    def test_us_east_is_below_one_percent_at_low_spikes(self, context):
        result = av.unavailability_by_region(context, window=900.0)
        assert result["us-east-1"].get(0.0, 0.0) < 0.01


class TestFig57:
    def test_related_probing_finds_most_rejections(self, context):
        attribution = rel.rejection_attribution(context)
        share = attribution["by_related_markets"].get(0.0)
        if share is None:
            pytest.skip("no rejections in this run")
        # The paper reports ~70%; we accept a band around it.
        assert 0.4 <= share <= 0.95

    def test_shares_complement(self, context):
        attribution = rel.rejection_attribution(context)
        for threshold, related in attribution["by_related_markets"].items():
            spike = attribution["by_price_spikes"][threshold]
            assert related + spike == pytest.approx(1.0)

    def test_multiple_related_detections_per_trigger(self, context):
        ratio = rel.related_detections_per_trigger(context)
        assert ratio > 1.0  # the paper: "on average ... two servers"


class TestFig58:
    def test_probability_grows_with_window(self, context):
        result = rel.cross_zone_unavailability(context, windows=(300.0, 3600.0))
        p_short = result[300.0].get(0.0, 0.0)
        p_long = result[3600.0].get(0.0, 0.0)
        assert p_long >= p_short


class TestFig59:
    def test_most_periods_shorter_than_an_hour(self, context):
        durations = du.unavailability_durations(context)
        if len(durations) < 20:
            pytest.skip("too few unavailability periods")
        summary = du.duration_summary(durations)
        assert summary["fraction_under_1h"] > 0.6

    def test_cdf_is_monotone(self, context):
        durations = du.unavailability_durations(context)
        cdf = du.duration_cdf(durations)
        values = list(cdf.values())
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    def test_empty_durations_degenerate_cdf(self):
        assert all(v == 1.0 for v in du.duration_cdf([]).values())


class TestFig510:
    def test_unavailability_falls_as_price_rises(self, context):
        result = spa.spot_unavailability_by_price(context)
        if "all" not in result or len(result["all"]) < 2:
            pytest.skip("not enough periodic spot probes")
        levels = sorted(result["all"])
        # Cumulative buckets: probability at the lowest level is the
        # highest (all insufficiency concentrates at low prices).
        assert result["all"][levels[0]] >= result["all"][levels[-1]] - 0.01


class TestFig511:
    def test_insufficiency_concentrates_below_on_demand(self, context):
        fraction = spa.fraction_below_on_demand(context)
        if fraction == 0.0:
            pytest.skip("no capacity-not-available events sampled")
        assert fraction > 0.9  # the paper: ~98%


class TestFig512:
    def test_pairs_present_and_bounded(self, context):
        result = cr.cross_unavailability(context, windows=(300.0, 3600.0))
        assert set(result) == {"od-od", "spot-spot", "od-spot", "spot-od"}
        for pair in result.values():
            for p in pair.values():
                assert 0.0 <= p <= 1.0

    def test_probability_grows_with_window(self, context):
        result = cr.cross_unavailability(context, windows=(300.0, 3600.0))
        for pair, row in result.items():
            assert row[3600.0] >= row[300.0] - 0.02

    def test_cross_contract_weaker_than_same_contract(self, context):
        result = cr.cross_unavailability(context, windows=(3600.0,))
        od_od = result["od-od"][3600.0]
        spot_od = result["spot-od"][3600.0]
        if od_od == 0.0:
            pytest.skip("no od detections")
        assert spot_od <= od_od

"""Shared fixtures.

Expensive fixtures (simulator runs) are session-scoped with fixed
seeds, so the suite stays fast and deterministic.
"""

from __future__ import annotations

import pytest

from repro import EC2Simulator, FleetConfig, SpotLight, SpotLightConfig
from repro.ec2.catalog import small_catalog


@pytest.fixture()
def tiny_sim() -> EC2Simulator:
    """A one-region, one-family simulator for fast unit tests."""
    catalog = small_catalog(regions=["us-east-1"], families=["m3"])
    return EC2Simulator(FleetConfig(catalog=catalog, seed=3, tick_interval=300.0))


@pytest.fixture()
def hot_sim() -> EC2Simulator:
    """A simulator of the under-provisioned sa-east-1 region."""
    catalog = small_catalog(regions=["sa-east-1"], families=["c3"])
    return EC2Simulator(FleetConfig(catalog=catalog, seed=5, tick_interval=300.0))


@pytest.fixture(scope="session")
def monitored_run():
    """A 3-day SpotLight monitoring run over a mixed fleet.

    Session-scoped: analysis, query, and app tests all share it.
    Returns (simulator, spotlight).
    """
    catalog = small_catalog(
        regions=["us-east-1", "sa-east-1", "ap-southeast-2"], families=["c3", "m3"]
    )
    sim = EC2Simulator(FleetConfig(catalog=catalog, seed=11, tick_interval=300.0))
    spotlight = SpotLight(sim, SpotLightConfig(spot_probe_interval=4 * 3600.0))
    spotlight.start()
    sim.run_for(3 * 86400.0)
    return sim, spotlight

"""Tests for the demand model internals."""

import pytest

from repro.common.clock import SimClock
from repro.common.events import EventQueue
from repro.common.rng import RngStream
from repro.ec2.catalog import small_catalog
from repro.ec2.demand import (
    REGION_REGIMES,
    PoolDemandProcess,
    Surge,
    regime_for,
)
from repro.ec2.market import SpotMarket
from repro.ec2.pool import CapacityPool


def make_process(region="sa-east-1", total=2000):
    catalog = small_catalog(regions=[region], families=["c3"])
    clock = SimClock()
    queue = EventQueue(clock)
    pool = CapacityPool("az", "c3", total_units=total)
    markets = []
    for itype in catalog.types_in_family("c3"):
        markets.append(
            SpotMarket(
                "az", itype.name, "Linux/UNIX",
                on_demand_price=itype.base_price, units=itype.units,
            )
        )
    process = PoolDemandProcess(
        pool, regime_for(region), markets, RngStream(5, "t"), queue
    )
    return process, pool, queue


class TestSurge:
    def test_envelope(self):
        surge = Surge(start=0.0, ramp=100.0, hold=200.0, decay=100.0, magnitude=0.5)
        assert surge.level_at(-1.0) == 0.0
        assert surge.level_at(50.0) == pytest.approx(0.25)  # mid-ramp
        assert surge.level_at(200.0) == pytest.approx(0.5)  # hold
        assert surge.level_at(350.0) == pytest.approx(0.25)  # mid-decay
        assert surge.level_at(401.0) == 0.0
        assert surge.end == 400.0


class TestRegimes:
    def test_all_nine_regions_have_regimes(self):
        assert len(REGION_REGIMES) == 9

    def test_provisioning_ordering(self):
        """The paper's ordering: us-east-1 well provisioned, sa-east-1
        and the ap-southeast regions under-provisioned."""
        util = {name: r.od_base_utilization for name, r in REGION_REGIMES.items()}
        assert util["us-east-1"] < util["ap-southeast-1"]
        assert util["us-east-1"] < util["ap-southeast-2"]
        assert max(util, key=util.get) == "sa-east-1"

    def test_unknown_region_gets_default(self):
        regime = regime_for("xx-moon-1")
        assert regime.name == "xx-moon-1"


class TestPoolDemandProcess:
    def test_type_states_cover_family(self):
        process, pool, _ = make_process()
        assert set(process.type_states) == {
            "c3.large", "c3.xlarge", "c3.2xlarge", "c3.4xlarge", "c3.8xlarge"
        }

    def test_type_bounds_registered_on_pool(self):
        process, pool, _ = make_process()
        for itype, state in process.type_states.items():
            assert pool.od_type_bounds[itype] == state.bound_units
            assert state.bound_units >= state.units

    def test_reserved_initialised(self):
        process, pool, _ = make_process()
        assert pool.reserved_granted_units > 0
        assert 0 < pool.reserved_running_units <= pool.reserved_granted_units

    def test_market_shares_sum_to_one(self):
        process, _, _ = make_process()
        total = sum(s.share_weight for s in process.market_states)
        assert total == pytest.approx(1.0)

    def test_tick_fills_markets_and_pool(self):
        process, pool, queue = make_process()
        process.start()
        queue.run_until(3600.0)
        assert pool.background_spot_units > 0
        for state in process.market_states:
            assert state.market.price_history()

    def test_injected_type_surge_raises_target(self):
        process, pool, queue = make_process()
        state = process.type_states["c3.2xlarge"]
        baseline = state.base_utilization
        process.add_type_surge("c3.2xlarge", magnitude=0.9)
        queue.clock.advance_to(1200.0)  # into the surge hold
        target = process.type_target_fraction(state, queue.clock.now)
        assert target > baseline

    def test_family_surge_scaled_by_susceptibility(self):
        process, _, _ = make_process()
        process.add_family_surge(0.5)
        magnitudes = {
            itype: sum(s.magnitude for s in state.surges)
            for itype, state in process.type_states.items()
        }
        assert any(m > 0 for m in magnitudes.values())
        # Susceptibilities differ, so magnitudes are not all equal.
        values = [m for m in magnitudes.values() if m > 0]
        assert len(set(round(v, 6) for v in values)) > 1

    def test_saturation_produces_overflow_and_headroom_exhaustion(self):
        process, pool, queue = make_process()
        process.start()
        itype = "c3.2xlarge"
        process.add_type_surge(itype, magnitude=1.2)
        state = process.type_states[itype]
        max_overflow = 0.0
        min_headroom = pool.type_headroom(itype)
        # Walk tick by tick: the surge's hold duration is random, so
        # sample the whole envelope rather than one instant.
        for t in range(300, 3900, 300):
            queue.run_until(float(t))
            max_overflow = max(max_overflow, state.overflow)
            min_headroom = min(min_headroom, pool.type_headroom(itype))
        assert max_overflow > 0
        assert min_headroom < state.units

    def test_empty_market_list_rejected(self):
        clock = SimClock()
        queue = EventQueue(clock)
        pool = CapacityPool("az", "c3", total_units=100)
        with pytest.raises(ValueError):
            PoolDemandProcess(pool, regime_for("us-east-1"), [], RngStream(1, "x"), queue)

"""Unit tests for id generation."""

from repro.common.ids import IdGenerator


def test_instance_ids_unique_and_prefixed():
    gen = IdGenerator()
    ids = [gen.instance_id() for _ in range(100)]
    assert len(set(ids)) == 100
    assert all(i.startswith("i-") for i in ids)


def test_spot_request_ids_prefixed():
    gen = IdGenerator()
    assert gen.spot_request_id().startswith("sir-")


def test_reservation_ids_prefixed():
    gen = IdGenerator()
    assert gen.reservation_id().startswith("r-")


def test_counters_are_per_prefix():
    gen = IdGenerator()
    first_instance = gen.instance_id()
    first_sir = gen.spot_request_id()
    assert first_instance.endswith("1")
    assert first_sir.endswith("1")


def test_two_generators_are_independent():
    a, b = IdGenerator(), IdGenerator()
    assert a.instance_id() == b.instance_id()

"""Property-based tests on the query API and trace generator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import ProbeDatabase
from repro.core.market_id import MarketID
from repro.core.query import SpotLightQuery
from repro.core.records import PriceRecord
from repro.ec2.catalog import default_catalog
from repro.traces import SpotPriceTraceGenerator, TraceConfig

MARKET = MarketID("us-east-1a", "m3.large", "Linux/UNIX")

price_series = st.lists(
    st.floats(min_value=0.001, max_value=2.0, allow_nan=False),
    min_size=2,
    max_size=50,
)


def _build_query(prices):
    db = ProbeDatabase()
    for index, price in enumerate(prices):
        db.insert_price(PriceRecord(index * 300.0, MARKET, price))
    return SpotLightQuery(db, default_catalog())


@given(prices=price_series)
@settings(max_examples=100, deadline=None)
def test_availability_at_bid_is_monotone_in_bid(prices):
    """A higher bid can only increase spot availability."""
    query = _build_query(prices)
    low = query.availability_at_bid(MARKET, 0.05)
    mid = query.availability_at_bid(MARKET, 0.5)
    high = query.availability_at_bid(MARKET, 10.0)
    assert 0.0 <= low <= mid <= high <= 1.0
    assert high == 1.0  # a bid above every price is always available


@given(prices=price_series)
@settings(max_examples=100, deadline=None)
def test_mean_price_within_series_bounds(prices):
    query = _build_query(prices)
    mean = query.mean_price(MARKET)
    assert min(prices) - 1e-9 <= mean <= max(prices) + 1e-9


@given(prices=price_series, bid=st.floats(min_value=0.001, max_value=3.0))
@settings(max_examples=100, deadline=None)
def test_mttr_bounded_by_observation_span(prices, bid):
    query = _build_query(prices)
    span = (len(prices) - 1) * 300.0
    mttr = query.mean_time_to_revocation(MARKET, bid)
    assert 0.0 <= mttr <= span + 1e-9


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=25, deadline=None)
def test_trace_generator_respects_bounds_for_any_seed(seed):
    config = TraceConfig(on_demand_price=1.0)
    events = SpotPriceTraceGenerator(config, seed=seed).generate(86400.0)
    assert events
    floor = config.on_demand_price * config.floor_fraction
    cap = config.on_demand_price * config.cap_multiple
    times = [t for t, _ in events]
    assert times == sorted(times)
    for _, price in events:
        assert floor - 1e-9 <= price <= cap + 1e-9

"""Tests for the boto3-like client facade."""

import pytest

from repro.ec2.api import EC2Client
from repro.ec2.catalog import small_catalog
from repro.ec2.platform import EC2Simulator, FleetConfig


@pytest.fixture()
def client():
    catalog = small_catalog(regions=["us-east-1"], families=["m3"])
    sim = EC2Simulator(FleetConfig(catalog=catalog, seed=3, tick_interval=300.0))
    sim.run_for(600.0)
    return EC2Client(sim, "us-east-1"), sim


PLACEMENT = {"AvailabilityZone": "us-east-1a"}


def test_unknown_region_rejected():
    catalog = small_catalog(regions=["us-east-1"], families=["m3"])
    sim = EC2Simulator(FleetConfig(catalog=catalog, seed=3))
    with pytest.raises(KeyError):
        EC2Client(sim, "mars-north-1")


def test_run_instances_response_shape(client):
    ec2, sim = client
    response = ec2.run_instances(
        InstanceType="m3.large",
        Placement=PLACEMENT,
        ProductDescription="Linux/UNIX",
    )
    inst = response["Instances"][0]
    assert inst["InstanceId"].startswith("i-")
    assert inst["State"]["Name"] == "pending"
    assert inst["Placement"]["AvailabilityZone"] == "us-east-1a"


def test_zone_outside_region_rejected(client):
    ec2, sim = client
    with pytest.raises((ValueError, KeyError)):
        ec2.run_instances(
            InstanceType="m3.large",
            Placement={"AvailabilityZone": "us-west-1a"},
            ProductDescription="Linux/UNIX",
        )


def test_terminate_and_describe(client):
    ec2, sim = client
    iid = ec2.run_instances(
        InstanceType="m3.large", Placement=PLACEMENT,
        ProductDescription="Linux/UNIX",
    )["Instances"][0]["InstanceId"]
    response = ec2.terminate_instances(InstanceIds=[iid])
    assert response["TerminatingInstances"][0]["CurrentState"]["Name"] == (
        "shutting-down"
    )
    described = ec2.describe_instances(InstanceIds=[iid])
    assert described["Reservations"][0]["Instances"][0]["InstanceId"] == iid


def test_spot_request_lifecycle_via_client(client):
    ec2, sim = client
    response = ec2.request_spot_instances(
        SpotPrice="1.0",  # well above spot, below the 10x cap ($1.33)
        InstanceType="m3.large",
        Placement=PLACEMENT,
        ProductDescription="Linux/UNIX",
    )
    entry = response["SpotInstanceRequests"][0]
    rid = entry["SpotInstanceRequestId"]
    assert rid.startswith("sir-")
    assert entry["State"] == "active"  # high bid fulfils immediately
    described = ec2.describe_spot_instance_requests([rid])
    assert "InstanceId" in described["SpotInstanceRequests"][0]
    ec2.terminate_spot_instance(rid)
    described = ec2.describe_spot_instance_requests([rid])
    assert described["SpotInstanceRequests"][0]["Status"]["Code"] == (
        "instance-terminated-by-user"
    )


def test_cancel_spot_request_via_client(client):
    ec2, sim = client
    rid = ec2.request_spot_instances(
        SpotPrice="0.0001",
        InstanceType="m3.large",
        Placement=PLACEMENT,
        ProductDescription="Linux/UNIX",
    )["SpotInstanceRequests"][0]["SpotInstanceRequestId"]
    response = ec2.cancel_spot_instance_requests([rid])
    assert response["CancelledSpotInstanceRequests"][0]["State"] == "cancelled"


def test_describe_spot_price_history_shape(client):
    ec2, sim = client
    sim.run_for(3600.0)
    response = ec2.describe_spot_price_history(
        InstanceTypes=["m3.large"],
        AvailabilityZone="us-east-1a",
        ProductDescriptions=["Linux/UNIX"],
    )
    history = response["SpotPriceHistory"]
    assert history
    entry = history[0]
    assert entry["InstanceType"] == "m3.large"
    assert float(entry["SpotPrice"]) > 0
    times = [e["Timestamp"] for e in history]
    assert times == sorted(times)

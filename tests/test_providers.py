"""Tests for the provider layer: the protocol adapters and trace replay."""

import pytest

from repro import (
    EC2Simulator,
    FleetConfig,
    MarketID,
    ProbeUnsupportedError,
    SimulatorProvider,
    SpotLight,
    SpotLightConfig,
    TraceReplayProvider,
)
from repro.ec2.catalog import small_catalog

M1 = MarketID("us-east-1a", "m3.large", "Linux/UNIX")
M2 = MarketID("us-east-1b", "m3.large", "Linux/UNIX")

EVENTS = {
    M1: [(0.0, 0.02), (1000.0, 0.5), (2000.0, 0.02), (3000.0, 0.02)],
    M2: [(0.0, 0.01), (3000.0, 0.01)],
}


@pytest.fixture()
def replay() -> TraceReplayProvider:
    return TraceReplayProvider(EVENTS)


class TestSimulatorProvider:
    def test_wraps_and_delegates(self):
        catalog = small_catalog(regions=["us-east-1"], families=["m3"])
        sim = EC2Simulator(FleetConfig(catalog=catalog, seed=3))
        provider = SimulatorProvider(sim)
        assert provider.supports_probes
        assert provider.catalog is sim.catalog
        assert provider.now == sim.now
        assert set(provider.limits) == set(sim.limits)
        ids = list(provider.market_ids())
        assert len(ids) == len(sim.markets)
        assert all(isinstance(m, MarketID) for m in ids)

    def test_price_feed_speaks_market_ids(self):
        catalog = small_catalog(regions=["us-east-1"], families=["m3"])
        sim = EC2Simulator(FleetConfig(catalog=catalog, seed=3, tick_interval=300.0))
        provider = SimulatorProvider(sim)
        seen: list[tuple[MarketID, float, float]] = []
        provider.subscribe_prices(lambda m, t, p: seen.append((m, t, p)))
        sim.run_for(600.0)
        assert seen
        assert all(isinstance(m, MarketID) for m, _, _ in seen)

    def test_spotlight_accepts_explicit_provider(self):
        catalog = small_catalog(regions=["us-east-1"], families=["m3"])
        sim = EC2Simulator(FleetConfig(catalog=catalog, seed=3, tick_interval=300.0))
        spotlight = SpotLight(SimulatorProvider(sim))
        assert not spotlight.passive
        assert spotlight.simulator is sim
        sim.run_for(600.0)
        market = next(iter(spotlight.markets))
        assert spotlight.database.prices(market)


class TestTraceReplay:
    def test_observers_see_events_in_time_order(self, replay):
        seen: list[tuple[MarketID, float, float]] = []
        replay.subscribe_prices(lambda m, t, p: seen.append((m, t, p)))
        replay.replay_all()
        assert len(seen) == sum(len(v) for v in EVENTS.values())
        times = [t for _, t, _ in seen]
        assert times == sorted(times)
        assert replay.now == replay.end_time == 3000.0

    def test_partial_replay_and_current_price(self, replay):
        replay.run_until(1500.0)
        assert replay.current_spot_price(*M1.api_args) == 0.5
        replay.run_until(2500.0)
        assert replay.current_spot_price(*M1.api_args) == 0.02

    def test_current_price_before_any_event(self):
        provider = TraceReplayProvider({M1: [(10.0, 0.5)]})
        with pytest.raises(KeyError):
            provider.current_spot_price(*M1.api_args)

    def test_probe_surface_is_unsupported(self, replay):
        assert not replay.supports_probes
        with pytest.raises(ProbeUnsupportedError):
            replay.run_instances(*M1.api_args)
        with pytest.raises(ProbeUnsupportedError):
            replay.request_spot_instances(*M1.api_args, bid_price=1.0)

    def test_region_limits_cover_trace_regions(self, replay):
        assert set(replay.limits) == {"us-east-1"}
        assert replay.limits["us-east-1"].available_api_tokens > 0

    def test_unordered_events_rejected(self):
        with pytest.raises(ValueError):
            TraceReplayProvider({M1: [(10.0, 0.5), (5.0, 0.2)]})

    def test_unknown_market_rejected(self):
        bogus = MarketID("us-east-1a", "nope.large", "Linux/UNIX")
        with pytest.raises(KeyError):
            TraceReplayProvider({bogus: [(0.0, 0.5)]})


class TestSpotLightOnReplay:
    def test_end_to_end_passive_service(self, replay):
        spotlight = SpotLight(replay)
        spotlight.start()
        replay.replay_all()

        assert spotlight.passive
        # Prices recorded, but no probes were (or could be) issued.
        assert spotlight.database.price_count() == sum(
            len(v) for v in EVENTS.values()
        )
        assert len(spotlight.database) == 0
        # The flagship query runs over replayed data: M2 is flat and
        # cheap, M1 spikes at t=1000 — M2 ranks first.
        ranking = spotlight.frontend.top_stable_markets(n=2, bid_multiple=1.0)
        assert ranking[0].market == M2

    def test_manual_probes_raise_on_passive_service(self, replay):
        spotlight = SpotLight(replay)
        with pytest.raises(ProbeUnsupportedError):
            spotlight.probe_on_demand(M1)
        with pytest.raises(ProbeUnsupportedError):
            spotlight.probe_spot(M1)
        with pytest.raises(ProbeUnsupportedError):
            spotlight.bid_spread(M1)
        with pytest.raises(ProbeUnsupportedError):
            spotlight.watch_revocation(M1)

    def test_scope_filter_applies_to_replay(self, replay):
        spotlight = SpotLight(replay, SpotLightConfig(regions=["sa-east-1"]))
        spotlight.start()
        replay.replay_all()
        assert spotlight.markets == {}
        assert spotlight.database.price_count() == 0

    def test_replay_round_trips_a_simulator_recording(self, tmp_path):
        # Record prices in a short simulated run ...
        catalog = small_catalog(regions=["us-east-1"], families=["m3"])
        sim = EC2Simulator(FleetConfig(catalog=catalog, seed=3, tick_interval=300.0))
        recorder = SpotLight(sim, SpotLightConfig(sampling_probability=0.0))
        sim.run_for(4 * 3600.0)
        path = tmp_path / "prices.csv"
        recorder.database.export_prices_csv(path)

        # ... then replay the recording with no simulator at all.
        provider = TraceReplayProvider.from_prices_csv(path, catalog=catalog)
        spotlight = SpotLight(provider)
        spotlight.start()
        provider.replay_all()

        assert spotlight.database.price_count() == recorder.database.price_count()
        market = next(iter(recorder.markets))
        orig_times, orig_prices = recorder.database.price_arrays(market)
        replay_times, replay_prices = spotlight.database.price_arrays(market)
        assert orig_times.tolist() == replay_times.tolist()
        assert orig_prices.tolist() == replay_prices.tolist()
        # The flagship query answers identically over the replayed data.
        original = recorder.query.top_stable_markets(n=5)
        replayed = spotlight.query.top_stable_markets(n=5)
        assert original == replayed

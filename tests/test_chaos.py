"""Chaos tests: seeded fault injection driven end-to-end.

The unit half pins down the :mod:`repro.chaos` building blocks (fault
points, plans, file-tail corruption).  The integration half is the
point of the module: a chaos plan kills a pool worker under live client
load and the service recovers with zero failed calls, slow-loris
connections are shed while real requests keep flowing, and abortive
socket resets leave the server standing.
"""

from __future__ import annotations

import json
import random
import socket
import time

import pytest

from repro.chaos import (
    ChaosHarness,
    ChaosPlan,
    FaultError,
    FaultEvent,
    FaultInjector,
    garble_tail,
    truncate_tail,
)
from repro.client import SpotLightClient
from repro.core.datastore import SnapshotDatastore
from repro.core.frontend import QueryFrontend
from repro.core.market_id import MarketID
from repro.core.query import SpotLightQuery
from repro.core.records import (
    OUTCOME_FULFILLED,
    PriceRecord,
    ProbeKind,
    ProbeRecord,
    ProbeTrigger,
)
from repro.ec2.catalog import default_catalog
from repro.server import BackgroundServer
from repro.server_pool import WorkerPool

MARKET = MarketID("us-east-1a", "m3.medium", "Linux/UNIX")


# -- fault points ------------------------------------------------------------
class TestFaultInjector:
    def test_unarmed_injector_is_a_no_op(self):
        faults = FaultInjector()
        faults.fire("datastore.save.commit")  # nothing armed, nothing raised
        assert faults.checked == {}  # the fast path doesn't even count

    def test_exact_point_fires(self):
        faults = FaultInjector().arm("datastore.save.commit")
        with pytest.raises(FaultError, match="datastore.save.commit"):
            faults.fire("datastore.save.commit")
        assert faults.fired == {"datastore.save.commit": 1}

    def test_prefix_rule_covers_dotted_children(self):
        faults = FaultInjector().arm("datastore.wal")
        with pytest.raises(FaultError):
            faults.fire("datastore.wal.fsync")
        faults.fire("datastore.save.commit")  # a sibling subsystem: untouched

    def test_times_bounds_the_budget(self):
        faults = FaultInjector().arm("io", times=2)
        for _ in range(2):
            with pytest.raises(FaultError):
                faults.fire("io")
        faults.fire("io")  # budget spent
        assert faults.fired["io"] == 2

    def test_probability_is_seeded_and_reproducible(self):
        def run(seed: int) -> list[bool]:
            faults = FaultInjector(seed=seed).arm("io", probability=0.5)
            outcomes = []
            for _ in range(32):
                try:
                    faults.fire("io")
                    outcomes.append(False)
                except FaultError:
                    outcomes.append(True)
            return outcomes

        assert run(7) == run(7)  # same seed, same failure schedule
        assert run(7) != run(8)
        assert any(run(7)) and not all(run(7))

    def test_custom_error_and_disarm(self):
        boom = PermissionError("no fsync for you")
        faults = FaultInjector().arm("io.fsync", error=boom)
        with pytest.raises(PermissionError):
            faults.fire("io.fsync")
        faults.disarm("io.fsync")
        faults.fire("io.fsync")

    def test_invalid_rules_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().arm("io", probability=1.5)
        with pytest.raises(ValueError):
            FaultInjector().arm("io", times=0)


# -- file-tail helpers -------------------------------------------------------
class TestTailCorruption:
    def test_truncate_tail_shears_exact_bytes(self, tmp_path):
        path = tmp_path / "wal.csv"
        path.write_bytes(b"a" * 100)
        assert truncate_tail(path, 30) == 70
        assert path.stat().st_size == 70
        assert truncate_tail(path, 1000) == 0  # never negative

    def test_garble_tail_is_seeded_and_newline_free(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        original = b"header\n" + b"1,2,3\n" * 5
        a.write_bytes(original)
        b.write_bytes(original)
        garble_tail(a, 10, seed=3)
        garble_tail(b, 10, seed=3)
        assert a.read_bytes() == b.read_bytes()  # same seed, same junk
        assert a.read_bytes() != original
        assert b"\n" not in a.read_bytes()[-10:]  # no fake row boundary


# -- plans -------------------------------------------------------------------
class TestChaosPlan:
    def test_events_sort_by_time(self):
        plan = ChaosPlan(
            [FaultEvent(5.0, "kill-worker"), FaultEvent(1.0, "reset-sockets")]
        )
        assert [e.action for e in plan.events] == [
            "reset-sockets", "kill-worker",
        ]

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos action"):
            ChaosPlan([FaultEvent(0.0, "set-on-fire")])

    def test_unknown_params_rejected(self):
        with pytest.raises(ValueError, match="does not take"):
            ChaosPlan([FaultEvent(0.0, "kill-worker", {"blast_radius": 3})])

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            ChaosPlan([FaultEvent(-1.0, "kill-worker")])

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "seed": 42,
            "events": [
                {"at": 2.0, "action": "kill-worker", "worker": 1},
                {"at": 4.0, "action": "slow-loris", "connections": 3},
            ],
        }))
        plan = ChaosPlan.load(path)
        assert plan.seed == 42
        assert plan.events[0].params == {"worker": 1}
        assert ChaosPlan.from_dict(plan.to_dict()).to_dict() == plan.to_dict()

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{ nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            ChaosPlan.load(path)


# -- integration fixtures ----------------------------------------------------
def _record_snapshot(path) -> None:
    store = SnapshotDatastore(path)
    for step in range(30):
        spike = 6.0 if step % 9 == 0 else 1.0
        store.insert_price(PriceRecord(300.0 * step, MARKET, 0.02 * spike))
    for t, outcome in [
        (0.0, OUTCOME_FULFILLED),
        (600.0, "InsufficientInstanceCapacity"),
        (1500.0, OUTCOME_FULFILLED),
    ]:
        store.insert_probe(ProbeRecord(
            time=t, market=MARKET, kind=ProbeKind.ON_DEMAND,
            trigger=ProbeTrigger.RECOVERY, outcome=outcome,
        ))
    store.save()
    store.close()


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    path = tmp_path_factory.mktemp("chaos") / "state"
    _record_snapshot(path)
    return path


@pytest.fixture()
def frontend(snapshot):
    return QueryFrontend(SpotLightQuery(
        SnapshotDatastore(snapshot, append_log=False, must_exist=True),
        default_catalog(),
    ))


# -- the acceptance scenario: kill -9 a worker under load --------------------
class TestWorkerKillUnderLoad:
    def test_pool_recovers_with_zero_failed_calls(self, snapshot):
        plan = ChaosPlan(
            [FaultEvent(0.3, "kill-worker", {"worker": 0})], seed=7
        )
        pool = WorkerPool(
            snapshot, workers=2, rate_per_second=1e6, burst=1e6,
            respawn_backoff=0.05, backoff_cap=0.2,
        )
        with pool:
            harness = ChaosHarness(plan, pool=pool).start()
            rng = random.Random(11)
            succeeded = 0
            seen_respawn_at: int | None = None
            deadline = time.monotonic() + 30.0
            with SpotLightClient(*pool.address) as client:
                while time.monotonic() < deadline:
                    # Every call must succeed: in-flight failures are
                    # absorbed by the client's jittered transport retry,
                    # anything beyond that raises and fails the test.
                    client.retrying_query(
                        "rejection-rate", {}, max_attempts=8,
                        deadline=10.0, rng=rng,
                    )
                    succeeded += 1
                    if seen_respawn_at is None and pool.respawns >= 1:
                        seen_respawn_at = succeeded
                    elif (
                        seen_respawn_at is not None
                        and succeeded >= seen_respawn_at + 25
                    ):
                        break
            results = harness.join(timeout=10.0)

        assert results == [
            {"at": 0.3, "action": "kill-worker", "worker": 0,
             "pid": results[0]["pid"], "signal": 9}
        ]
        assert seen_respawn_at is not None, "worker was never respawned"
        # Throughput recovered: a healthy batch of queries landed
        # *after* the respawn, all without a client-visible failure.
        assert succeeded >= seen_respawn_at + 25
        assert pool.respawns >= 1
        assert not pool.failed
        assert (0, -9) in pool.exit_history


def _raw_query(
    address: tuple[str, int], request: dict, extra: bytes = b""
) -> tuple[int, dict[str, str], bytes]:
    """One fresh-connection /query round trip at the byte level (the
    SDK hides status codes and ETags; these assertions need them)."""
    body = json.dumps(request).encode()
    with socket.create_connection(address, timeout=10.0) as sock:
        sock.sendall(
            b"POST /query HTTP/1.1\r\nConnection: close\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            + extra + b"\r\n" + body
        )
        rfile = sock.makefile("rb")
        status = int(rfile.readline().split()[1])
        headers: dict[str, str] = {}
        while True:
            line = rfile.readline()
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        payload = rfile.read(int(headers.get("content-length", "0")))
    return status, headers, payload


def _raw_query_retrying(
    address: tuple[str, int], request: dict, extra: bytes = b""
) -> tuple[int, dict[str, str], bytes]:
    """Ride out connections that land on a worker mid-kill."""
    last: Exception | None = None
    for _ in range(20):
        try:
            return _raw_query(address, request, extra)
        except (ConnectionError, OSError) as exc:
            last = exc
            time.sleep(0.1)
    raise AssertionError(f"query never succeeded: {last}")


class TestWireCacheAcrossRespawn:
    REQUEST = {"query": "rejection-rate", "params": {}}

    def test_etags_and_304s_stay_correct_across_worker_kill(self, snapshot):
        """Kill a worker holding a warm wire cache.  The respawned
        worker reloads the same snapshot at generation 0, so its
        content-hashed ETags must equal the pre-kill tags: held tags
        keep earning 304s, wrong tags never do, and every fresh 200
        carries the same tag the client started with — zero stale 304s.
        """
        plan = ChaosPlan(
            [FaultEvent(0.3, "kill-worker", {"worker": 0})], seed=7
        )
        pool = WorkerPool(
            snapshot, workers=2, rate_per_second=1e6, burst=1e6,
            respawn_backoff=0.05, backoff_cap=0.2,
        )
        with pool:
            # Warm both workers' wire caches and pin the baseline tag.
            status, headers, _ = _raw_query_retrying(pool.address, self.REQUEST)
            assert status == 200
            etag = headers["etag"]
            match = b"If-None-Match: " + etag.encode() + b"\r\n"
            status, headers, payload = _raw_query_retrying(
                pool.address, self.REQUEST, match
            )
            # Either worker may answer; both serve the same content, so
            # a conditional hit is a bodyless 304 with the same tag.
            assert status == 304
            assert payload == b""
            assert headers["etag"] == etag

            harness = ChaosHarness(plan, pool=pool).start()
            deadline = time.monotonic() + 30.0
            while pool.respawns < 1 and time.monotonic() < deadline:
                # Conditional polling straight through the kill window:
                # every answer must be a valid 304 (same tag) or a full
                # 200 (same content) — never an error, never a stale tag.
                status, headers, payload = _raw_query_retrying(
                    pool.address, self.REQUEST, match
                )
                assert status in (200, 304)
                assert headers["etag"] == etag
                if status == 200:
                    assert json.loads(payload)["ok"] is True
            results = harness.join(timeout=10.0)
            assert pool.respawns >= 1, "worker was never respawned"
            assert results[0]["action"] == "kill-worker"

            # Hammer fresh connections until both workers (including
            # the respawned slot) have answered: unconditional requests
            # re-derive the SAME tag, correct tags still 304, and a
            # wrong tag is never confirmed.
            for _ in range(20):
                status, headers, payload = _raw_query_retrying(
                    pool.address, self.REQUEST
                )
                assert status == 200
                assert headers["etag"] == etag  # fresh tag, same content
                assert json.loads(payload)["ok"] is True
                status, headers, _ = _raw_query_retrying(
                    pool.address, self.REQUEST, match
                )
                assert status == 304
                assert headers["etag"] == etag
                status, _, payload = _raw_query_retrying(
                    pool.address, self.REQUEST,
                    b'If-None-Match: "g0-feedfacedeadbeef0000"\r\n',
                )
                assert status == 200  # a wrong tag is never a 304
                assert json.loads(payload)["ok"] is True
        assert not pool.failed


# -- socket-level attacks ----------------------------------------------------
class TestSocketAttacks:
    def test_slow_loris_is_shed_while_real_clients_are_served(self, frontend):
        with BackgroundServer(
            frontend, request_timeout=5.0, read_deadline=0.8
        ) as server:
            plan = ChaosPlan([FaultEvent(
                0.0, "slow-loris",
                {"connections": 3, "interval": 0.1, "hold": 15.0},
            )], seed=7)
            harness = ChaosHarness(plan, address=server.address,
                                   log=lambda line: None).start()
            # Mid-attack, a well-behaved client still gets answers.
            time.sleep(0.3)
            with SpotLightClient(*server.address) as client:
                assert client.healthz()["ok"] is True
                assert client.query("rejection-rate", {}) >= 0.0
            results = harness.join(timeout=30.0)

        record = results[0]
        assert record["shed_by_server"] == 3  # nobody held us for 15s
        assert server.server.slow_shed >= 3
        assert server.server.stats()["slow_shed"] >= 3

    def test_reset_sockets_leave_the_server_standing(self, frontend):
        with BackgroundServer(frontend) as server:
            plan = ChaosPlan([FaultEvent(
                0.0, "reset-sockets", {"connections": 6},
            )])
            results = ChaosHarness(
                plan, address=server.address, log=lambda line: None
            ).run()
            assert results == [
                {"at": 0.0, "action": "reset-sockets", "connections": 6}
            ]
            with SpotLightClient(*server.address) as client:
                assert client.query("rejection-rate", {}) >= 0.0


# -- WAL attacks through the harness -----------------------------------------
class TestWalAttacks:
    def _store_with_wal(self, root) -> SnapshotDatastore:
        store = SnapshotDatastore(root)
        for t in (10.0, 20.0, 30.0, 40.0):
            store.insert_probe(ProbeRecord(
                time=t, market=MARKET, kind=ProbeKind.ON_DEMAND,
                trigger=ProbeTrigger.MANUAL, outcome=OUTCOME_FULFILLED,
            ))
        store.close()
        return store

    def test_truncate_wal_event_tears_the_tail_recoverably(self, tmp_path):
        root = tmp_path / "state"
        store = self._store_with_wal(root)
        plan = ChaosPlan([FaultEvent(
            0.0, "truncate-wal",
            {"root": str(root), "kind": "probes", "bytes": 7},
        )])
        results = ChaosHarness(
            plan, address=("127.0.0.1", 0), log=lambda line: None
        ).run()
        assert results[0]["path"].endswith("probes.wal.0.csv")

        reloaded = SnapshotDatastore(root)
        assert reloaded.probes() == store.probes()[:-1]
        assert reloaded.recovery_report["probes_wal"]["dropped"] == 1

    def test_garble_wal_event_is_seeded_by_the_plan(self, tmp_path):
        roots = []
        for name in ("a", "b"):
            root = tmp_path / name
            self._store_with_wal(root)
            plan = ChaosPlan([FaultEvent(
                0.0, "garble-wal",
                {"root": str(root), "kind": "probes", "bytes": 9},
            )], seed=13)
            ChaosHarness(
                plan, address=("127.0.0.1", 0), log=lambda line: None
            ).run()
            roots.append(root)
        # Same plan seed => byte-identical corruption: replayable chaos.
        assert (roots[0] / "probes.wal.0.csv").read_bytes() == \
            (roots[1] / "probes.wal.0.csv").read_bytes()
        reloaded = SnapshotDatastore(roots[0])
        assert reloaded.recovery_report["probes_wal"]["dropped"] == 1

    def test_missing_wal_reports_an_error_not_a_crash(self, tmp_path):
        plan = ChaosPlan([FaultEvent(
            0.0, "truncate-wal", {"root": str(tmp_path), "kind": "probes"},
        )])
        results = ChaosHarness(
            plan, address=("127.0.0.1", 0), log=lambda line: None
        ).run()
        assert "error" in results[0]


class TestHarnessScheduling:
    def test_stop_abandons_unfired_events(self, tmp_path):
        plan = ChaosPlan([FaultEvent(
            60.0, "truncate-wal", {"root": str(tmp_path)},
        )])
        harness = ChaosHarness(
            plan, address=("127.0.0.1", 0), log=lambda line: None
        ).start()
        harness.stop()
        assert harness.results == []

"""Unit tests for region-level admission control."""

import pytest

from repro.common.clock import SimClock
from repro.core.region_manager import RegionManager
from repro.ec2.limits import RegionLimits


def make(clock=None, **kw):
    clock = clock or SimClock()
    limits = RegionLimits("us-east-1", clock, **kw)
    return RegionManager("us-east-1", limits), limits, clock


def test_priority_probe_needs_one_token():
    manager, limits, clock = make(api_rate_per_second=1.0, api_burst=2.0)
    assert manager.can_issue_probe(priority=True)


def test_low_priority_deferred_near_api_limit():
    manager, limits, clock = make(api_rate_per_second=0.001, api_burst=6.0)
    assert manager.can_issue_probe(priority=False)  # 6 tokens >= reserve 5
    limits.charge_api_call()
    limits.charge_api_call()
    assert not manager.can_issue_probe(priority=False)  # 4 < reserve
    assert manager.probes_deferred == 1
    assert manager.deferred_reasons.get("api-rate") == 1


def test_low_priority_deferred_near_slot_limit():
    manager, limits, clock = make(max_on_demand_instances=3)
    limits.acquire_on_demand_slot()
    limits.acquire_on_demand_slot()
    assert not manager.can_issue_probe(priority=False)
    assert manager.can_issue_probe(priority=True)


def test_priority_deferred_only_at_hard_limit():
    manager, limits, clock = make(max_on_demand_instances=1)
    limits.acquire_on_demand_slot()
    assert not manager.can_issue_probe(priority=True)


def test_public_token_accessor_matches_bucket():
    manager, limits, clock = make(api_rate_per_second=1.0, api_burst=10.0)
    assert limits.available_api_tokens == 10.0
    limits.charge_api_call()
    assert limits.available_api_tokens == 9.0
    clock.advance_by(2.0)
    assert limits.available_api_tokens == pytest.approx(10.0)  # refilled, capped


def test_admission_and_deferral_accounting_by_priority():
    # 6 tokens, rate effectively frozen: fan-out defers below the
    # 5-token reserve while priority probes keep being admitted.
    manager, limits, clock = make(api_rate_per_second=0.001, api_burst=6.0)
    assert manager.can_issue_probe(priority=False)  # 6 >= reserve
    limits.charge_api_call()
    limits.charge_api_call()  # 4 tokens left
    assert manager.can_issue_probe(priority=True)  # priority needs just 1
    assert not manager.can_issue_probe(priority=False)
    assert manager.probes_admitted == 2
    assert manager.probes_deferred == 1
    assert manager.deferred_reasons == {"api-rate": 1}


def test_deferred_reason_buckets_are_separate():
    manager, limits, clock = make(
        api_rate_per_second=0.001, api_burst=6.0, max_on_demand_instances=3
    )
    # Slot pressure first: tokens plentiful, slots nearly gone.
    limits.acquire_on_demand_slot()
    limits.acquire_on_demand_slot()
    assert not manager.can_issue_probe(priority=False)
    # Then API pressure: drain below the token reserve.
    limits.release_on_demand_slot()
    limits.charge_api_call()
    limits.charge_api_call()
    assert not manager.can_issue_probe(priority=False)
    assert manager.deferred_reasons == {"slots": 1, "api-rate": 1}
    assert manager.probes_deferred == 2


def test_priority_probe_requires_a_free_slot():
    manager, limits, clock = make(max_on_demand_instances=2)
    limits.acquire_on_demand_slot()
    assert manager.can_issue_probe(priority=True)  # one slot left
    limits.acquire_on_demand_slot()
    assert not manager.can_issue_probe(priority=True)
    assert manager.deferred_reasons == {"slots": 1}


def test_stats_reflect_counters():
    manager, limits, clock = make()
    manager.can_issue_probe()
    limits.charge_api_call()
    stats = manager.stats()
    assert stats["probes_admitted"] == 1
    assert stats["api_calls_made"] == 1

"""Unit tests for region-level admission control."""

from repro.common.clock import SimClock
from repro.core.region_manager import RegionManager
from repro.ec2.limits import RegionLimits


def make(clock=None, **kw):
    clock = clock or SimClock()
    limits = RegionLimits("us-east-1", clock, **kw)
    return RegionManager("us-east-1", limits), limits, clock


def test_priority_probe_needs_one_token():
    manager, limits, clock = make(api_rate_per_second=1.0, api_burst=2.0)
    assert manager.can_issue_probe(priority=True)


def test_low_priority_deferred_near_api_limit():
    manager, limits, clock = make(api_rate_per_second=0.001, api_burst=6.0)
    assert manager.can_issue_probe(priority=False)  # 6 tokens >= reserve 5
    limits.charge_api_call()
    limits.charge_api_call()
    assert not manager.can_issue_probe(priority=False)  # 4 < reserve
    assert manager.probes_deferred == 1
    assert manager.deferred_reasons.get("api-rate") == 1


def test_low_priority_deferred_near_slot_limit():
    manager, limits, clock = make(max_on_demand_instances=3)
    limits.acquire_on_demand_slot()
    limits.acquire_on_demand_slot()
    assert not manager.can_issue_probe(priority=False)
    assert manager.can_issue_probe(priority=True)


def test_priority_deferred_only_at_hard_limit():
    manager, limits, clock = make(max_on_demand_instances=1)
    limits.acquire_on_demand_slot()
    assert not manager.can_issue_probe(priority=True)


def test_stats_reflect_counters():
    manager, limits, clock = make()
    manager.can_issue_probe()
    limits.charge_api_call()
    stats = manager.stats()
    assert stats["probes_admitted"] == 1
    assert stats["api_calls_made"] == 1

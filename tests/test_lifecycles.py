"""Unit tests for the Figure 3.1 / 3.2 state machines."""

import pytest

from repro.common import errors
from repro.common.errors import InvalidStateTransition
from repro.ec2.instance import Instance, InstanceState, LIFECYCLE_ON_DEMAND
from repro.ec2.spot_request import SpotRequest, SpotRequestState


def make_instance():
    return Instance(
        instance_id="i-1",
        instance_type="m3.large",
        availability_zone="us-east-1a",
        product="Linux/UNIX",
        lifecycle=LIFECYCLE_ON_DEMAND,
        launch_time=0.0,
        units=2,
    )


def make_request():
    return SpotRequest(
        request_id="sir-1",
        instance_type="m3.large",
        availability_zone="us-east-1a",
        product="Linux/UNIX",
        bid_price=0.1,
        create_time=0.0,
    )


# -- on-demand instances (Figure 3.1) -------------------------------------

class TestInstanceLifecycle:
    def test_pending_to_running_to_terminated(self):
        inst = make_instance()
        inst.mark_running(10.0)
        inst.begin_shutdown(20.0)
        inst.mark_terminated(30.0)
        assert inst.state is InstanceState.TERMINATED
        assert [s for _, s in inst.state_history] == [
            InstanceState.PENDING,
            InstanceState.RUNNING,
            InstanceState.SHUTTING_DOWN,
            InstanceState.TERMINATED,
        ]

    def test_pending_can_shut_down_directly(self):
        inst = make_instance()
        inst.begin_shutdown(5.0)
        assert inst.state is InstanceState.SHUTTING_DOWN

    def test_cannot_run_twice(self):
        inst = make_instance()
        inst.mark_running(10.0)
        with pytest.raises(InvalidStateTransition):
            inst.mark_running(11.0)

    def test_cannot_terminate_without_shutdown(self):
        inst = make_instance()
        with pytest.raises(InvalidStateTransition):
            inst.mark_terminated(5.0)

    def test_terminated_is_final(self):
        inst = make_instance()
        inst.begin_shutdown(1.0)
        inst.mark_terminated(2.0)
        with pytest.raises(InvalidStateTransition):
            inst.begin_shutdown(3.0)

    def test_is_live_and_duration(self):
        inst = make_instance()
        assert inst.is_live
        inst.begin_shutdown(50.0)
        inst.mark_terminated(60.0)
        assert not inst.is_live
        assert inst.running_duration(now=1000.0) == 60.0

    def test_transitions_are_timestamped(self):
        inst = make_instance()
        inst.mark_running(42.0)
        assert inst.state_history[-1] == (42.0, InstanceState.RUNNING)


# -- spot requests (Figure 3.2) ----------------------------------------------

class TestSpotRequestLifecycle:
    def test_fulfil_path(self):
        req = make_request()
        req.begin_fulfillment(1.0)
        req.fulfill("i-9", 2.0)
        assert req.state is SpotRequestState.ACTIVE
        assert req.status == errors.STATUS_FULFILLED
        assert req.instance_id == "i-9"

    def test_held_statuses(self):
        for status in (
            errors.STATUS_PRICE_TOO_LOW,
            errors.STATUS_CAPACITY_NOT_AVAILABLE,
            errors.STATUS_CAPACITY_OVERSUBSCRIBED,
        ):
            req = make_request()
            req.hold(status, 1.0)
            assert req.is_open
            assert req.status == status

    def test_holding_with_non_hold_status_rejected(self):
        req = make_request()
        with pytest.raises(InvalidStateTransition):
            req.hold(errors.STATUS_FULFILLED, 1.0)

    def test_held_request_can_later_fulfil(self):
        req = make_request()
        req.hold(errors.STATUS_PRICE_TOO_LOW, 1.0)
        req.fulfill("i-2", 5.0)
        assert req.is_active

    def test_revocation_path_with_warning(self):
        req = make_request()
        req.fulfill("i-1", 1.0)
        req.mark_for_termination(100.0)
        assert req.status == errors.STATUS_MARKED_FOR_TERMINATION
        req.terminate_by_price(220.0)
        assert req.was_revoked
        assert req.time_to_revocation() == pytest.approx(219.0)

    def test_user_termination(self):
        req = make_request()
        req.fulfill("i-1", 1.0)
        req.terminate_by_user(50.0)
        assert req.state is SpotRequestState.CLOSED
        assert not req.was_revoked

    def test_cancel_open_request(self):
        req = make_request()
        req.cancel(3.0)
        assert req.state is SpotRequestState.CANCELLED
        assert req.status == errors.STATUS_CANCELED_BEFORE_FULFILLMENT

    def test_cancel_active_keeps_instance(self):
        req = make_request()
        req.fulfill("i-1", 1.0)
        req.cancel(2.0)
        assert req.status == errors.STATUS_REQUEST_CANCELED_INSTANCE_RUNNING

    def test_cancel_closed_rejected(self):
        req = make_request()
        req.fulfill("i-1", 1.0)
        req.terminate_by_user(2.0)
        with pytest.raises(InvalidStateTransition):
            req.cancel(3.0)

    def test_fail_path(self):
        req = make_request()
        req.fail(errors.STATUS_BAD_PARAMETERS, 1.0)
        assert req.state is SpotRequestState.FAILED

    def test_cannot_revoke_open_request(self):
        req = make_request()
        with pytest.raises(InvalidStateTransition):
            req.terminate_by_price(1.0)

    def test_status_history_is_complete(self):
        req = make_request()
        req.hold(errors.STATUS_PRICE_TOO_LOW, 1.0)
        req.fulfill("i-1", 2.0)
        req.mark_for_termination(3.0)
        req.terminate_by_price(4.0)
        statuses = [s for _, s in req.status_history]
        assert statuses == [
            errors.STATUS_PENDING_EVALUATION,
            errors.STATUS_PRICE_TOO_LOW,
            errors.STATUS_FULFILLED,
            errors.STATUS_MARKED_FOR_TERMINATION,
            errors.STATUS_TERMINATED_BY_PRICE,
        ]

    def test_time_to_revocation_none_for_user_termination(self):
        req = make_request()
        req.fulfill("i-1", 1.0)
        req.terminate_by_user(2.0)
        assert req.time_to_revocation() is None

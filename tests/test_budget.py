"""Unit tests for the budget controller (Section 3.4)."""

import pytest

from repro.core.budget import BudgetController


def test_spend_within_window():
    budget = BudgetController(budget=10.0, window=100.0)
    assert budget.can_spend(0.0, 5.0)
    budget.charge(0.0, 5.0)
    assert budget.can_spend(1.0, 5.0)
    budget.charge(1.0, 5.0)
    assert not budget.can_spend(2.0, 0.1)


def test_budget_resets_each_window():
    budget = BudgetController(budget=10.0, window=100.0)
    budget.charge(0.0, 10.0)
    assert not budget.can_spend(50.0, 1.0)
    assert budget.can_spend(150.0, 10.0)  # next window


def test_suppressed_probes_counted():
    budget = BudgetController(budget=1.0, window=100.0)
    budget.charge(0.0, 1.0)
    budget.can_spend(1.0, 1.0)
    assert budget.windows[-1].probes_suppressed == 1


def test_total_spent_spans_windows():
    budget = BudgetController(budget=10.0, window=100.0)
    budget.charge(0.0, 4.0)
    budget.charge(150.0, 6.0)
    assert budget.total_spent() == 10.0


def test_negative_charge_rejected():
    budget = BudgetController(budget=10.0, window=100.0)
    with pytest.raises(ValueError):
        budget.charge(0.0, -1.0)


def test_invalid_construction():
    with pytest.raises(ValueError):
        BudgetController(budget=0.0, window=100.0)
    with pytest.raises(ValueError):
        BudgetController(budget=1.0, window=0.0)


class TestWindowEdges:
    """Window-boundary behaviour: charges at exactly k*window belong to
    window k, and spend up to exactly the budget is allowed."""

    def test_charge_exactly_at_boundary_lands_in_new_window(self):
        budget = BudgetController(budget=10.0, window=100.0)
        budget.charge(0.0, 10.0)
        assert not budget.can_spend(99.999, 0.01)
        # t=100.0 is the first instant of the second window.
        assert budget.can_spend(100.0, 10.0)
        budget.charge(100.0, 10.0)
        assert budget.windows[0].window_start == 0.0
        assert budget.windows[1].window_start == 100.0
        assert budget.windows[1].spent == 10.0

    def test_spend_exactly_to_budget_allowed(self):
        budget = BudgetController(budget=10.0, window=100.0)
        assert budget.can_spend(0.0, 10.0)
        budget.charge(0.0, 10.0)
        # The window is exactly full: nothing more fits, but a zero-cost
        # check is still within budget.
        assert not budget.can_spend(1.0, 0.0001)
        assert budget.can_spend(1.0, 0.0)

    def test_skipped_windows_do_not_materialise(self):
        budget = BudgetController(budget=10.0, window=100.0)
        budget.charge(50.0, 1.0)
        budget.charge(950.0, 2.0)  # windows 1..8 were silent
        assert [w.window_start for w in budget.windows] == [0.0, 900.0]
        assert budget.total_spent() == pytest.approx(3.0)

    def test_suppression_counted_in_the_window_it_happened(self):
        budget = BudgetController(budget=1.0, window=100.0)
        budget.charge(0.0, 1.0)
        budget.can_spend(50.0, 1.0)  # suppressed in window 0
        budget.can_spend(150.0, 0.5)  # fine in window 1
        assert budget.windows[0].probes_suppressed == 1
        assert budget.windows[1].probes_suppressed == 0
        assert budget.windows[0].probes_charged == 1


class TestThresholdDerivation:
    # A month of spikes: many small, few large.
    SPIKES = [0.6] * 100 + [1.5] * 40 + [3.0] * 10 + [8.0] * 2

    def test_big_budget_allows_low_threshold(self):
        t = BudgetController.derive_threshold(self.SPIKES, probe_cost=1.0, budget=500.0)
        assert t == 0.5

    def test_small_budget_forces_high_threshold(self):
        # 12 spikes at >=2x fit a budget of 12 probes; the 52 at >=1.5x don't.
        t = BudgetController.derive_threshold(self.SPIKES, probe_cost=1.0, budget=12.0)
        assert t == 2.0

    def test_tiny_budget_returns_max_candidate(self):
        t = BudgetController.derive_threshold(self.SPIKES, probe_cost=10.0, budget=1.0)
        assert t == 10.0

    def test_derive_sampling_probability(self):
        # 52 spikes >= 1.0; budget for 26 probes -> p = 0.5.
        p = BudgetController.derive_sampling_probability(
            self.SPIKES, threshold=1.0, probe_cost=1.0, budget=26.0
        )
        assert p == pytest.approx(0.5)

    def test_sampling_probability_caps_at_one(self):
        p = BudgetController.derive_sampling_probability(
            self.SPIKES, threshold=9.0, probe_cost=1.0, budget=1000.0
        )
        assert p == 1.0

    def test_spot_probe_interval_divides_budget_by_price(self):
        # $24 budget, $1/hr average price, 1-day window -> 1 probe/hour.
        interval = BudgetController.spot_probe_interval(
            average_spot_price=1.0, budget=24.0, window=86400.0
        )
        assert interval == pytest.approx(3600.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            BudgetController.derive_threshold([], probe_cost=0.0, budget=1.0)
        with pytest.raises(ValueError):
            BudgetController.spot_probe_interval(0.0, 1.0, 1.0)

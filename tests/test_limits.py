"""Unit tests for service limits and API rate limiting."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import (
    RequestLimitExceededError,
    ServiceLimitExceededError,
)
from repro.ec2.limits import RegionLimits, TokenBucket


class TestTokenBucket:
    def test_burst_then_throttle(self):
        clock = SimClock()
        bucket = TokenBucket(clock, rate=1.0, burst=5.0)
        assert all(bucket.try_consume() for _ in range(5))
        assert not bucket.try_consume()

    def test_refills_with_time(self):
        clock = SimClock()
        bucket = TokenBucket(clock, rate=2.0, burst=5.0)
        for _ in range(5):
            bucket.try_consume()
        clock.advance_by(1.0)
        assert bucket.try_consume()
        assert bucket.try_consume()
        assert not bucket.try_consume()

    def test_never_exceeds_burst(self):
        clock = SimClock()
        bucket = TokenBucket(clock, rate=100.0, burst=3.0)
        clock.advance_by(1000.0)
        assert bucket.available == 3.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(SimClock(), rate=0.0, burst=1.0)


class TestRegionLimits:
    def make(self, **kw):
        return RegionLimits("us-east-1", SimClock(), **kw)

    def test_api_throttle_raises(self):
        limits = self.make(api_rate_per_second=1.0, api_burst=2.0)
        limits.charge_api_call()
        limits.charge_api_call()
        with pytest.raises(RequestLimitExceededError):
            limits.charge_api_call()
        assert limits.api_calls_made == 2
        assert limits.api_calls_throttled == 1

    def test_on_demand_slot_limit(self):
        limits = self.make(max_on_demand_instances=2)
        limits.acquire_on_demand_slot()
        limits.acquire_on_demand_slot()
        with pytest.raises(ServiceLimitExceededError):
            limits.acquire_on_demand_slot()
        limits.release_on_demand_slot()
        limits.acquire_on_demand_slot()  # freed slot reusable

    def test_spot_request_slot_limit(self):
        limits = self.make(max_open_spot_requests=1)
        limits.acquire_spot_request_slot()
        with pytest.raises(ServiceLimitExceededError):
            limits.acquire_spot_request_slot()

    def test_releasing_unheld_slot_rejected(self):
        limits = self.make()
        with pytest.raises(ValueError):
            limits.release_on_demand_slot()
        with pytest.raises(ValueError):
            limits.release_spot_request_slot()

"""Unit tests for seeded RNG streams."""

import pytest

from repro.common.rng import RngStream


def test_same_seed_and_name_reproduce():
    a = RngStream(42, "demand")
    b = RngStream(42, "demand")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_are_independent():
    a = RngStream(42, "demand")
    b = RngStream(42, "prices")
    assert a.random() != b.random()


def test_different_seeds_differ():
    assert RngStream(1, "x").random() != RngStream(2, "x").random()


def test_child_streams_do_not_depend_on_consumption():
    a = RngStream(42, "root")
    b = RngStream(42, "root")
    a.random()  # consume from one parent only
    assert a.child("sub").random() == b.child("sub").random()


def test_bernoulli_extremes():
    rng = RngStream(1, "b")
    assert all(rng.bernoulli(1.0) for _ in range(10))
    assert not any(rng.bernoulli(0.0) for _ in range(10))


def test_choice_picks_members():
    rng = RngStream(7, "c")
    seq = ["a", "b", "c"]
    for _ in range(20):
        assert rng.choice(seq) in seq


def test_choice_empty_rejected():
    with pytest.raises(ValueError):
        RngStream(7, "c").choice([])


def test_integers_respects_bounds():
    rng = RngStream(9, "i")
    values = {rng.integers(0, 3) for _ in range(100)}
    assert values <= {0, 1, 2}


def test_exponential_positive():
    rng = RngStream(3, "e")
    assert all(rng.exponential(100.0) >= 0 for _ in range(50))

"""Unit tests for the spot market auction."""

import pytest

from repro.common import errors
from repro.ec2.market import Bid, SpotMarket


def make_market(od=1.0, units=4):
    return SpotMarket("us-east-1a", "c3.xlarge", "Linux/UNIX", od, units)


def test_price_starts_at_floor():
    market = make_market()
    assert market.current_price() == market.floor_price


def test_abundant_supply_clears_at_floor():
    market = make_market()
    market.set_bids([Bid(0.5, 2)])
    result = market.clear(0.0, supply_instances=10)
    assert result.clearing_price == market.floor_price
    assert result.fulfilled_instances == 2
    assert not result.capacity_constrained


def test_constrained_supply_sets_marginal_price():
    market = make_market()
    market.set_bids([Bid(0.9, 5), Bid(0.5, 5), Bid(0.2, 5)])
    result = market.clear(0.0, supply_instances=7)
    # 5 go at 0.9, 2 of 5 at 0.5 -> marginal (lowest winning) bid is 0.5.
    assert result.clearing_price == pytest.approx(0.5)
    assert result.fulfilled_instances == 7
    assert result.capacity_constrained


def test_zero_supply_prices_at_top_bid():
    market = make_market()
    market.set_bids([Bid(0.8, 3)])
    result = market.clear(0.0, supply_instances=0)
    assert result.clearing_price == pytest.approx(0.8)
    assert result.fulfilled_instances == 0


def test_bids_above_cap_are_clamped():
    market = make_market(od=1.0)
    market.set_bids([Bid(100.0, 1)])
    result = market.clear(0.0, supply_instances=0)
    assert result.clearing_price <= market.max_bid


def test_price_history_records_changes_only():
    market = make_market()
    market.set_bids([Bid(0.5, 10)])
    market.clear(0.0, 5)
    market.clear(300.0, 5)  # same clearing price
    assert len(market.price_history()) == 1


def test_history_time_range_filter():
    market = make_market()
    for i, supply in enumerate([1, 20, 1, 20]):
        market.set_bids([Bid(0.5, 10)])
        market.clear(i * 300.0, supply)
    events = market.price_history(start=300.0, end=600.0)
    assert all(300.0 <= t <= 600.0 for t, _ in events)


def test_published_price_lags_actual():
    market = make_market()
    market.set_bids([Bid(0.5, 10)])
    market.clear(1000.0, 5)  # constrained -> 0.5
    actual = market.current_price(1000.0)
    published = market.published_price(1000.0 + 1.0)
    assert actual == pytest.approx(0.5)
    assert published == market.floor_price  # not yet visible
    assert market.published_price(1000.0 + 60.0) == pytest.approx(0.5)


def test_withheld_in_deep_glut_at_low_price():
    market = make_market()
    market.set_bids([Bid(market.floor_price, 1)])
    result = market.clear(0.0, supply_instances=100)
    assert result.withheld


def test_not_withheld_when_demand_healthy():
    market = make_market()
    market.set_bids([Bid(0.05, 90)])
    result = market.clear(0.0, supply_instances=100)
    assert not result.withheld


def test_evaluate_bid_price_too_low():
    market = make_market()
    market.set_bids([Bid(0.5, 10)])
    market.clear(0.0, 5)
    status = market.evaluate_bid(0.3, 0.0, available_spot_units=100)
    assert status == errors.STATUS_PRICE_TOO_LOW


def test_evaluate_bid_wins_above_price():
    market = make_market()
    market.set_bids([Bid(0.5, 10)])
    market.clear(0.0, 5)
    assert market.evaluate_bid(0.6, 0.0, available_spot_units=100) == ""


def test_evaluate_bid_capacity_not_available_when_units_short():
    market = make_market(units=4)
    market.set_bids([Bid(0.5, 10)])
    market.clear(0.0, 5)
    status = market.evaluate_bid(0.6, 0.0, available_spot_units=3)
    assert status == errors.STATUS_CAPACITY_NOT_AVAILABLE


def test_evaluate_bid_oversubscribed_on_tie_when_constrained():
    market = make_market()
    market.set_bids([Bid(0.5, 10)])
    market.clear(0.0, 5)
    price = market.current_price(0.0)
    status = market.evaluate_bid(price, 0.0, available_spot_units=100)
    assert status == errors.STATUS_CAPACITY_OVERSUBSCRIBED


def test_evaluate_bid_withheld_beats_high_bid():
    market = make_market()
    market.set_bids([Bid(market.floor_price, 1)])
    market.clear(0.0, supply_instances=100)
    status = market.evaluate_bid(10.0 * 0.9, 0.0, available_spot_units=100)
    assert status == errors.STATUS_CAPACITY_NOT_AVAILABLE


def test_required_price_override():
    market = make_market()
    market.set_bids([Bid(0.5, 10)])
    market.clear(0.0, 5)
    status = market.evaluate_bid(
        0.55, 0.0, available_spot_units=100, required_price=0.6
    )
    assert status == errors.STATUS_PRICE_TOO_LOW


def test_malformed_construction_rejected():
    with pytest.raises(ValueError):
        SpotMarket("az", "t", "p", on_demand_price=0.0, units=4)
    with pytest.raises(ValueError):
        SpotMarket("az", "t", "p", on_demand_price=1.0, units=0)
    with pytest.raises(ValueError):
        SpotMarket(
            "az", "t", "p", 1.0, 4, floor_fraction=0.2, withhold_fraction=0.1
        )


def test_malformed_bids_rejected():
    market = make_market()
    with pytest.raises(ValueError):
        market.set_bids([Bid(-1.0, 5)])
    with pytest.raises(ValueError):
        market.clear(0.0, supply_instances=-1)

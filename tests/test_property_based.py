"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import InsufficientInstanceCapacityError
from repro.core.budget import BudgetController
from repro.ec2.market import Bid, SpotMarket
from repro.ec2.pool import CapacityPool
from repro.analysis.spikes import SpikeEvent, cluster_spikes
from repro.core.market_id import MarketID


# -- CapacityPool: no operation sequence may violate Figure 2.2 ------------

pool_ops = st.lists(
    st.tuples(
        st.sampled_from(
            ["grant", "start_res", "stop_res", "alloc_od", "rel_od",
             "alloc_spot", "rel_spot", "bg_spot"]
        ),
        st.integers(min_value=1, max_value=40),
    ),
    max_size=60,
)


@given(ops=pool_ops)
@settings(max_examples=200, deadline=None)
def test_pool_invariants_hold_under_any_op_sequence(ops):
    pool = CapacityPool("az", "fam", total_units=100)
    od_allocated = 0
    spot_allocated = 0
    for op, units in ops:
        try:
            if op == "grant":
                pool.grant_reserved(units)
            elif op == "start_res":
                can_start = (
                    pool.reserved_granted_units - pool.reserved_running_units
                )
                if units <= can_start:
                    pool.start_reserved(units)
            elif op == "stop_res":
                if units <= pool.reserved_running_units:
                    pool.stop_reserved(units)
            elif op == "alloc_od":
                pool.allocate_on_demand(units)
                od_allocated += units
            elif op == "rel_od":
                take = min(units, od_allocated)
                if take:
                    pool.release_on_demand(take)
                    od_allocated -= take
            elif op == "alloc_spot":
                if pool.allocate_spot(units):
                    spot_allocated += units
            elif op == "rel_spot":
                take = min(units, spot_allocated, pool.interactive_spot_units)
                if take:
                    pool.release_spot(take)
                    spot_allocated -= take
            elif op == "bg_spot":
                free = pool.spot_capacity - pool.interactive_spot_units
                pool.set_background_spot(min(units, max(free, 0)))
        except InsufficientInstanceCapacityError:
            pass
        # The invariants (checked internally too, but assert explicitly):
        occupied = (
            pool.reserved_running_units + pool.on_demand_units + pool.spot_units
        )
        assert occupied <= pool.total_units
        assert pool.on_demand_units <= pool.total_units - pool.reserved_granted_units
        assert pool.reserved_running_units <= pool.reserved_granted_units


# -- SpotMarket: clearing monotonicity ---------------------------------------

bids_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.01, max_value=9.9, allow_nan=False),
        st.integers(min_value=1, max_value=30),
    ),
    min_size=1,
    max_size=10,
)


@given(bids=bids_strategy, supply=st.integers(min_value=0, max_value=200))
@settings(max_examples=200, deadline=None)
def test_clearing_price_within_floor_cap_and_fulfilment_bounded(bids, supply):
    market = SpotMarket("az", "t", "p", on_demand_price=1.0, units=2)
    market.set_bids([Bid(price, count) for price, count in bids])
    result = market.clear(0.0, supply)
    assert market.floor_price <= result.clearing_price <= market.max_bid
    assert 0 <= result.fulfilled_instances <= min(supply, result.demanded_instances)


@given(bids=bids_strategy, supply=st.integers(min_value=0, max_value=100))
@settings(max_examples=100, deadline=None)
def test_more_supply_never_raises_price(bids, supply):
    def clear_with(s):
        market = SpotMarket("az", "t", "p", on_demand_price=1.0, units=2)
        market.set_bids([Bid(price, count) for price, count in bids])
        return market.clear(0.0, s).clearing_price

    assert clear_with(supply + 10) <= clear_with(supply) + 1e-9


# -- Budget: spend never undercounted ------------------------------------------

charges = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    ),
    max_size=50,
)


@given(charges=charges)
@settings(max_examples=100, deadline=None)
def test_budget_total_equals_sum_of_charges(charges):
    budget = BudgetController(budget=50.0, window=1000.0)
    total = 0.0
    for now, amount in sorted(charges):
        budget.charge(now, amount)
        total += amount
    assert budget.total_spent() == sum(w.spent for w in budget.windows)
    assert abs(budget.total_spent() - total) < 1e-6


# -- Spike clustering: gap property ----------------------------------------------

event_times = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=100
)


@given(times=event_times, window=st.floats(min_value=1.0, max_value=1e5))
@settings(max_examples=100, deadline=None)
def test_clustered_spikes_respect_minimum_gap(times, window):
    market = MarketID("us-east-1a", "m3.large", "Linux/UNIX")
    events = [SpikeEvent(t, market, 2.0) for t in sorted(times)]
    kept = cluster_spikes(events, window)
    for a, b in zip(kept, kept[1:]):
        assert b.time - a.time >= window
    # Clustering keeps a subset, never invents events.
    assert len(kept) <= len(events)
    if events:
        assert kept[0] == events[0]

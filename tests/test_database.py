"""Unit tests for the probe database."""

import pytest

from repro.core.database import ProbeDatabase
from repro.core.market_id import MarketID
from repro.core.records import (
    OUTCOME_FULFILLED,
    PriceRecord,
    ProbeKind,
    ProbeRecord,
    ProbeTrigger,
)

M1 = MarketID("us-east-1a", "m3.large", "Linux/UNIX")
M2 = MarketID("sa-east-1a", "c3.large", "Linux/UNIX")


def probe(t, market=M1, outcome=OUTCOME_FULFILLED, kind=ProbeKind.ON_DEMAND):
    return ProbeRecord(
        time=t,
        market=market,
        kind=kind,
        trigger=ProbeTrigger.PRICE_SPIKE,
        outcome=outcome,
    )


REJ = "InsufficientInstanceCapacity"


@pytest.fixture()
def db():
    return ProbeDatabase()


def test_insert_and_filter(db):
    db.insert_probe(probe(1.0))
    db.insert_probe(probe(2.0, outcome=REJ))
    db.insert_probe(probe(3.0, market=M2))
    assert len(db) == 3
    assert len(db.probes(market=M1)) == 2
    assert len(db.probes(rejected=True)) == 1
    assert len(db.probes(start=2.5)) == 1
    assert len(db.probes(end=1.5)) == 1


def test_out_of_order_probe_rejected(db):
    db.insert_probe(probe(5.0))
    with pytest.raises(ValueError):
        db.insert_probe(probe(4.0))


def test_out_of_order_allowed_across_markets(db):
    db.insert_probe(probe(5.0, market=M1))
    db.insert_probe(probe(4.0, market=M2))  # different market: fine


def test_prices_range_query(db):
    for t in [0.0, 100.0, 200.0, 300.0]:
        db.insert_price(PriceRecord(t, M1, 0.1 + t / 1000))
    records = db.prices(M1, start=100.0, end=200.0)
    assert [r.time for r in records] == [100.0, 200.0]


def test_price_at_is_step_function(db):
    db.insert_price(PriceRecord(100.0, M1, 0.5))
    db.insert_price(PriceRecord(200.0, M1, 0.9))
    assert db.price_at(M1, 50.0) is None
    assert db.price_at(M1, 150.0) == 0.5
    assert db.price_at(M1, 200.0) == 0.9


def test_unavailability_periods_basic(db):
    db.insert_probe(probe(0.0))
    db.insert_probe(probe(100.0, outcome=REJ))
    db.insert_probe(probe(200.0, outcome=REJ))
    db.insert_probe(probe(300.0))
    periods = db.unavailability_periods(M1)
    assert len(periods) == 1
    period = periods[0]
    assert period.start == 100.0
    assert period.end == 300.0
    assert period.probe_count == 2
    assert period.end_observed


def test_open_period_capped_by_horizon(db):
    db.insert_probe(probe(100.0, outcome=REJ))
    periods = db.unavailability_periods(M1, horizon=500.0)
    assert len(periods) == 1
    assert periods[0].end == 500.0
    assert not periods[0].end_observed


def test_periods_separate_kinds(db):
    db.insert_probe(probe(0.0, outcome=REJ, kind=ProbeKind.ON_DEMAND))
    db.insert_probe(probe(1.0, outcome="capacity-not-available", kind=ProbeKind.SPOT))
    assert len(db.unavailability_periods(M1, kind=ProbeKind.ON_DEMAND)) == 1
    assert len(db.unavailability_periods(M1, kind=ProbeKind.SPOT)) == 1


def test_rejection_rate(db):
    db.insert_probe(probe(0.0))
    db.insert_probe(probe(1.0, outcome=REJ))
    assert db.rejection_rate() == 0.5
    assert db.rejection_rate(market=M2) == 0.0


def test_csv_roundtrip(db, tmp_path):
    db.insert_probe(probe(0.0))
    db.insert_probe(probe(1.0, outcome=REJ))
    db.insert_probe(probe(2.0, market=M2, kind=ProbeKind.SPOT))
    path = tmp_path / "probes.csv"
    assert db.export_probes_csv(path) == 3
    restored = ProbeDatabase.import_probes_csv(path)
    assert len(restored) == 3
    assert restored.probes(rejected=True)[0].outcome == REJ


def test_prices_json_export(db, tmp_path):
    db.insert_price(PriceRecord(1.0, M1, 0.1))
    db.insert_price(PriceRecord(2.0, M1, 0.2))
    count = db.export_prices_json(tmp_path / "prices.json")
    assert count == 2


def test_csv_roundtrip_probes_and_prices(db, tmp_path):
    """Full persistence round-trip over both record kinds.

    Covers the columnar price path: prices go in through the packed
    columns, out through CSV, and back in; a probe-only market and a
    price-only market must both survive the trip.
    """
    db.insert_probe(probe(0.0))
    db.insert_probe(probe(1.0, outcome=REJ))
    db.insert_probe(probe(0.5, market=M2, kind=ProbeKind.SPOT))
    db.insert_price(PriceRecord(10.0, M2, 0.123456))
    db.insert_price(PriceRecord(20.0, M2, 0.2))
    db.insert_price(PriceRecord(20.0, M2, 0.2))  # duplicate sample survives

    probes_path = tmp_path / "probes.csv"
    prices_path = tmp_path / "prices.csv"
    assert db.export_probes_csv(probes_path) == 3
    assert db.export_prices_csv(prices_path) == 3

    restored_probes = ProbeDatabase.import_probes_csv(probes_path)
    restored_prices = ProbeDatabase.import_prices_csv(prices_path)

    assert len(restored_probes) == 3
    assert [r.time for r in restored_probes.probes()] == [0.0, 0.5, 1.0]
    assert restored_probes.probes(market=M2)[0].kind is ProbeKind.SPOT
    # M1 has probes but no prices; M2 has prices in the restored DB.
    assert restored_prices.prices(M1) == []
    assert restored_prices.prices(M2) == db.prices(M2)
    times, prices = restored_prices.price_arrays(M2)
    assert list(times) == [10.0, 20.0, 20.0]
    assert prices[0] == 0.123456


def test_csv_roundtrip_empty_database(tmp_path):
    db = ProbeDatabase()
    probes_path = tmp_path / "probes.csv"
    prices_path = tmp_path / "prices.csv"
    assert db.export_probes_csv(probes_path) == 0
    assert db.export_prices_csv(prices_path) == 0
    assert len(ProbeDatabase.import_probes_csv(probes_path)) == 0
    restored = ProbeDatabase.import_prices_csv(prices_path)
    assert restored.markets == []


def test_price_arrays_views_and_counts(db):
    assert db.price_count() == 0
    times, prices = db.price_arrays(M1)
    assert len(times) == 0 and len(prices) == 0
    for t in [0.0, 100.0, 200.0]:
        db.insert_price(PriceRecord(t, M1, t / 1000))
    times, prices = db.price_arrays(M1, start=50.0)
    assert list(times) == [100.0, 200.0]
    assert list(prices) == [0.1, 0.2]
    assert db.price_count(M1) == 3
    assert db.price_count() == 3


def test_global_probe_order_is_time_ordered(db):
    """The global view merges per-market logs by time (the per-market
    duplicate list is gone; order across markets is by timestamp)."""
    db.insert_probe(probe(5.0, market=M1))
    db.insert_probe(probe(1.0, market=M2))
    db.insert_probe(probe(3.0, market=M2, outcome=REJ))
    assert [r.time for r in db.probes()] == [1.0, 3.0, 5.0]
    # Cache invalidates on insert (times stay non-decreasing per market).
    db.insert_probe(probe(4.0, market=M2))
    assert [r.time for r in db.probes()] == [1.0, 3.0, 4.0, 5.0]


def test_total_probe_cost(db):
    db.insert_probe(
        ProbeRecord(
            time=0.0, market=M1, kind=ProbeKind.ON_DEMAND,
            trigger=ProbeTrigger.PRICE_SPIKE, outcome=OUTCOME_FULFILLED, cost=0.5,
        )
    )
    assert db.total_probe_cost() == 0.5


def test_markets_lists_everything(db):
    db.insert_probe(probe(0.0, market=M1))
    db.insert_price(PriceRecord(0.0, M2, 0.1))
    assert db.markets == sorted([M1, M2])

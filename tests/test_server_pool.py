"""Integration tests for the multi-process SO_REUSEPORT worker pool."""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.client import SpotLightClient
from repro.core.datastore import SnapshotDatastore
from repro.core.frontend import QueryFrontend
from repro.core.market_id import MarketID
from repro.core.query import SpotLightQuery
from repro.core.records import (
    OUTCOME_FULFILLED,
    PriceRecord,
    ProbeKind,
    ProbeRecord,
    ProbeTrigger,
)
from repro.ec2.catalog import default_catalog
from repro.server_pool import BOARD_FIELDS, WorkerPool

MARKETS = [
    MarketID(zone, itype, "Linux/UNIX")
    for zone in ("us-east-1a", "us-east-1b")
    for itype in ("m3.medium", "c3.large")
]


def _record_snapshot(path) -> None:
    store = SnapshotDatastore(path)
    for i, market in enumerate(MARKETS):
        base = 0.02 * (1 + i)
        for step in range(40):
            spike = 8.0 if (step + i) % 11 == 0 else 1.0
            store.insert_price(PriceRecord(300.0 * step, market, base * spike))
        for t, outcome in [
            (0.0, OUTCOME_FULFILLED),
            (600.0 + 100.0 * i, "InsufficientInstanceCapacity"),
            (1500.0 + 100.0 * i, OUTCOME_FULFILLED),
        ]:
            store.insert_probe(
                ProbeRecord(
                    time=t, market=market, kind=ProbeKind.ON_DEMAND,
                    trigger=ProbeTrigger.RECOVERY, outcome=outcome,
                )
            )
    store.save()
    store.close()


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    path = tmp_path_factory.mktemp("pool") / "state"
    _record_snapshot(path)
    return path


@pytest.fixture(scope="module")
def pool(snapshot):
    with WorkerPool(
        snapshot, workers=2, rate_per_second=1e6, burst=1e6
    ) as running:
        yield running


def test_pool_answers_like_a_direct_frontend(pool, snapshot):
    reference = QueryFrontend(
        SpotLightQuery(
            SnapshotDatastore(snapshot, append_log=False, must_exist=True),
            default_catalog(),
        )
    )
    with SpotLightClient(*pool.address) as client:
        assert client.healthz()["status"] == "serving"
        assert client.top_stable_markets(n=3) == [
            {
                "market": str(entry.market),
                "availability_zone": entry.market.availability_zone,
                "instance_type": entry.market.instance_type,
                "product": entry.market.product,
                "mean_time_to_revocation": pytest.approx(
                    entry.mean_time_to_revocation
                ),
                "availability_at_bid": pytest.approx(entry.availability_at_bid),
                "mean_price": pytest.approx(entry.mean_price),
            }
            for entry in reference.top_stable_markets(n=3)
        ]
        for market in MARKETS:
            assert client.availability(market) == pytest.approx(
                reference.availability(market)
            )


def test_stats_carry_worker_id_and_cluster_aggregate(pool):
    # Fresh connections so SO_REUSEPORT can spread them; each client
    # still observes the *cluster* totals regardless of which worker
    # its connection landed on.
    queries = 0
    workers_seen = set()
    for round_number in range(6):
        with SpotLightClient(*pool.address) as client:
            client.rejection_rate()
            queries += 1
            stats = client.stats()
            workers_seen.add(stats["worker"])
            cluster = client.cluster_stats()
    assert workers_seen <= {0, 1}
    assert cluster["workers"] == 2
    assert set(BOARD_FIELDS) <= set(cluster)
    assert cluster["queries"] >= queries
    # The aggregate is the sum of the per-worker rows.
    board = pool.board
    assert cluster["queries"] <= (
        board.row(0)["queries"] + board.row(1)["queries"] + queries
    )


def test_board_rows_sum_to_aggregate(pool):
    board = pool.board
    aggregate = board.aggregate()
    for field in BOARD_FIELDS:
        assert aggregate[field] == board.row(0)[field] + board.row(1)[field]


def test_pool_rejects_missing_snapshot(tmp_path):
    pool = WorkerPool(tmp_path / "nowhere", workers=2)
    with pytest.raises(RuntimeError, match="exited with code"):
        pool.start()


def test_pool_drains_cleanly(snapshot):
    with WorkerPool(snapshot, workers=2) as running:
        with SpotLightClient(*running.address) as client:
            client.top_stable_markets(n=2)
    # __exit__ ran stop(): it raises unless every worker exited 0.
    assert all(proc.exitcode == 0 for proc in running._procs)
    summary = running.drain_summary
    assert summary["unclean"] == [] and summary["killed"] == []
    assert set(summary["exit_codes"].values()) == {0}


def _wait_until(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestSupervision:
    def test_killed_worker_is_respawned_and_pool_recovers(self, snapshot):
        pool = WorkerPool(
            snapshot, workers=2, rate_per_second=1e6, burst=1e6,
            respawn_backoff=0.05, backoff_cap=0.2,
        )
        with pool:
            pids = pool.worker_pids()
            assert sorted(pids) == [0, 1]
            os.kill(pids[0], signal.SIGKILL)
            assert _wait_until(
                lambda: pool.respawns >= 1 and pool.alive_workers() == 2
                and pool.board.health()["alive"] == 2
            ), "killed worker was not respawned"
            replacement = pool.worker_pids()
            assert replacement[0] != pids[0]  # a new process in slot 0
            assert replacement[1] == pids[1]  # the survivor untouched
            with SpotLightClient(*pool.address) as client:
                assert client.rejection_rate() >= 0.0  # replacement serves
            health = pool.board.health()
            assert health == {
                "workers": 2, "alive": 2, "respawns": pool.respawns,
                "failed": 0,
            }
        assert (0, -signal.SIGKILL) in pool.exit_history
        assert pool.drain_summary["respawns"] >= 1
        assert not pool.failed

    def test_healthz_reports_degraded_while_a_worker_is_down(self, snapshot):
        # A long respawn backoff keeps the pool one-worker for a
        # window wide enough to observe the degraded health report.
        pool = WorkerPool(
            snapshot, workers=2, rate_per_second=1e6, burst=1e6,
            respawn_backoff=20.0, backoff_cap=20.0,
        )
        with pool:
            os.kill(pool.worker_pids()[1], signal.SIGKILL)
            assert _wait_until(
                lambda: pool.board.health()["alive"] == 1, timeout=10.0
            )
            with SpotLightClient(*pool.address) as client:
                payload = client.healthz()
            assert payload["status"] == "degraded"
            assert payload["pool"]["alive"] == 1
            assert payload["pool"]["workers"] == 2

    def test_unsupervised_wait_and_stop_never_hang_on_dead_workers(
        self, snapshot
    ):
        pool = WorkerPool(
            snapshot, workers=2, supervise=False,
            rate_per_second=1e6, burst=1e6,
        )
        pool.start()
        try:
            for pid in pool.worker_pids().values():
                os.kill(pid, signal.SIGKILL)
            assert _wait_until(lambda: pool.alive_workers() == 0, timeout=10.0)
            started = time.monotonic()
            pool.wait()  # every sentinel is dead: must return immediately
            assert time.monotonic() - started < 5.0
        finally:
            summary = pool.stop()  # nothing alive to drain: must not raise
        assert summary["exit_codes"] == {
            "spotlight-worker-0": -signal.SIGKILL,
            "spotlight-worker-1": -signal.SIGKILL,
        }
        assert sorted(summary["unexpected_exits"]) == [
            (0, -signal.SIGKILL), (1, -signal.SIGKILL),
        ]

    def test_respawn_budget_exhaustion_marks_the_pool_failed(self, snapshot):
        pool = WorkerPool(
            snapshot, workers=2, max_respawns=0,
            rate_per_second=1e6, burst=1e6,
        )
        pool.start()
        try:
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            assert pool.wait(timeout=15.0), "wait() did not report failure"
            assert pool.failed
            assert pool.board.health()["failed"] == 1
        finally:
            summary = pool.stop()
        assert summary["failed"] is True

"""Unit tests for SpotLightConfig validation."""

import pytest

from repro.core.config import SpotLightConfig


def test_paper_defaults():
    cfg = SpotLightConfig()
    # The prototype set T to the on-demand price and sampled everything.
    assert cfg.threshold_multiple == 1.0
    assert cfg.sampling_probability == 1.0
    assert cfg.probe_related_family
    assert cfg.probe_related_zones


def test_negative_threshold_rejected():
    with pytest.raises(ValueError):
        SpotLightConfig(threshold_multiple=-1.0)


def test_sampling_probability_bounds():
    with pytest.raises(ValueError):
        SpotLightConfig(sampling_probability=1.5)
    with pytest.raises(ValueError):
        SpotLightConfig(sampling_probability=-0.1)
    SpotLightConfig(sampling_probability=0.0)  # valid edge


def test_reprobe_interval_positive():
    with pytest.raises(ValueError):
        SpotLightConfig(reprobe_interval=0.0)


def test_bid_spread_needs_two_requests():
    with pytest.raises(ValueError):
        SpotLightConfig(bid_spread_max_requests=1)


def test_budget_positive():
    with pytest.raises(ValueError):
        SpotLightConfig(budget=0.0)

"""Integration tests for the SpotLight service."""

import pytest

from repro import EC2Simulator, FleetConfig, SpotLight, SpotLightConfig
from repro.core.market_id import MarketID
from repro.core.records import ProbeKind, ProbeTrigger
from repro.ec2.catalog import small_catalog


@pytest.fixture()
def rig():
    catalog = small_catalog(regions=["sa-east-1"], families=["c3"])
    sim = EC2Simulator(FleetConfig(catalog=catalog, seed=7, tick_interval=300.0))
    spotlight = SpotLight(sim, SpotLightConfig(spot_probe_interval=2 * 3600.0))
    return sim, spotlight


def test_scope_filters_markets():
    catalog = small_catalog(regions=["us-east-1", "sa-east-1"], families=["c3", "m3"])
    sim = EC2Simulator(FleetConfig(catalog=catalog, seed=7))
    spotlight = SpotLight(
        sim, SpotLightConfig(regions=["sa-east-1"], families=["c3"])
    )
    assert spotlight.markets
    for market in spotlight.markets:
        assert market.region == "sa-east-1"
        assert market.family == "c3"


def test_price_feed_recorded(rig):
    sim, spotlight = rig
    sim.run_for(3600.0)
    market = next(iter(spotlight.markets))
    assert spotlight.database.prices(market)


def test_price_recording_can_be_disabled():
    catalog = small_catalog(regions=["us-east-1"], families=["m3"])
    sim = EC2Simulator(FleetConfig(catalog=catalog, seed=7))
    spotlight = SpotLight(sim, record_prices=False)
    sim.run_for(3600.0)
    market = next(iter(spotlight.markets))
    assert not spotlight.database.prices(market)


def test_spike_triggers_on_demand_probes(rig):
    sim, spotlight = rig
    sim.run_for(2 * 86400.0)
    spike_probes = [
        p
        for p in spotlight.database.probes(kind=ProbeKind.ON_DEMAND)
        if p.trigger is ProbeTrigger.PRICE_SPIKE
    ]
    assert spike_probes, "a volatile region must produce spike-triggered probes"
    # Every spike-triggered probe was triggered at or above the threshold.
    for probe in spike_probes:
        assert probe.spike_multiple >= spotlight.config.threshold_multiple


def test_detected_rejection_fans_out_to_related_markets(rig):
    sim, spotlight = rig
    sim.run_for(3 * 86400.0)
    triggers = {p.trigger for p in spotlight.database.probes()}
    if not any(
        p.rejected for p in spotlight.database.probes(kind=ProbeKind.ON_DEMAND)
    ):
        pytest.skip("seed produced no rejections in the window")
    assert ProbeTrigger.RELATED_FAMILY in triggers
    assert ProbeTrigger.RECOVERY in triggers


def test_periodic_spot_probes_run(rig):
    sim, spotlight = rig
    spotlight.start()
    sim.run_for(86400.0)
    periodic = [
        p
        for p in spotlight.database.probes(kind=ProbeKind.SPOT)
        if p.trigger is ProbeTrigger.PERIODIC
    ]
    assert periodic


def test_start_is_idempotent(rig):
    sim, spotlight = rig
    spotlight.start()
    spotlight.start()
    sim.run_for(3600.0)  # would double-probe if start stacked schedules


def test_budget_limits_probing():
    catalog = small_catalog(regions=["sa-east-1"], families=["c3"])
    sim = EC2Simulator(FleetConfig(catalog=catalog, seed=7, tick_interval=300.0))
    spotlight = SpotLight(sim, SpotLightConfig(budget=1.0, budget_window=30 * 86400.0))
    sim.run_for(2 * 86400.0)
    assert spotlight.budget.total_spent() <= 3.0  # one in-flight overshoot max


def test_zero_sampling_probability_probes_nothing():
    catalog = small_catalog(regions=["sa-east-1"], families=["c3"])
    sim = EC2Simulator(FleetConfig(catalog=catalog, seed=7, tick_interval=300.0))
    spotlight = SpotLight(sim, SpotLightConfig(sampling_probability=0.0))
    sim.run_for(86400.0)
    spikes = [
        p for p in spotlight.database.probes()
        if p.trigger is ProbeTrigger.PRICE_SPIKE
    ]
    assert spikes == []


def test_manual_probes(rig):
    sim, spotlight = rig
    sim.run_for(600.0)
    market = next(iter(spotlight.markets))
    spotlight.probe_on_demand(market)
    spotlight.probe_spot(market)
    triggers = [p.trigger for p in spotlight.database.probes(market=market)]
    assert triggers.count(ProbeTrigger.MANUAL) == 2


def test_bid_spread_via_service(rig):
    sim, spotlight = rig
    sim.run_for(600.0)
    market = next(iter(spotlight.markets))
    result = spotlight.bid_spread(market)
    assert result.market == market


def test_unknown_market_raises(rig):
    sim, spotlight = rig
    with pytest.raises(KeyError):
        spotlight.probe_on_demand(MarketID("us-east-1a", "m3.large", "Linux/UNIX"))


def test_stats_shape(rig):
    sim, spotlight = rig
    sim.run_for(3600.0)
    stats = spotlight.stats()
    assert stats["monitored_markets"] == len(spotlight.markets)
    assert "sa-east-1" in stats["regions"]
    assert stats["probes_logged"] == len(spotlight.database)

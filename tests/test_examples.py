"""Smoke tests for the runnable examples (so they can't silently rot)."""

import importlib.util
import sys
from pathlib import Path

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples.{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs_at_small_scale(capsys):
    quickstart = _load_example("quickstart")
    spotlight = quickstart.main(
        days=0.25, regions=["sa-east-1"], families=["c3"], seed=3
    )
    out = capsys.readouterr().out
    assert "monitoring" in out
    assert "top 5 most stable spot markets" in out
    assert spotlight.database.price_count() > 0
    # The quickstart exercises the serving frontend, not raw internals.
    assert spotlight.frontend.stats()["misses"] > 0


def test_serving_example_round_trips_over_http(capsys):
    serving = _load_example("serving")
    stats = serving.main(days=0.25, regions=["sa-east-1"], families=["c3"], seed=3)
    out = capsys.readouterr().out
    assert "SpotLight serving on http://" in out
    assert "top 5 most stable spot markets" in out
    assert "server shut down cleanly" in out
    # Everything printed went over the wire, through the client SDK.
    assert stats["endpoints"]["/query"]["requests"] >= 5
    assert stats["connections_accepted"] >= 1

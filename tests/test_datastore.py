"""Tests for the pluggable datastore backends (snapshot + WAL resume)."""

import pytest

from repro import (
    EC2Simulator,
    FleetConfig,
    InMemoryDatastore,
    MarketID,
    SnapshotDatastore,
    SpotLight,
    SpotLightConfig,
    SpotLightQuery,
)
from repro.core.datastore import Datastore
from repro.core.records import (
    OUTCOME_FULFILLED,
    PriceRecord,
    ProbeKind,
    ProbeRecord,
    ProbeTrigger,
)
from repro.ec2.catalog import default_catalog, small_catalog

M1 = MarketID("us-east-1a", "m3.large", "Linux/UNIX")
M2 = MarketID("us-east-1b", "m3.large", "Linux/UNIX")


def _probe(t: float, market: MarketID = M1, outcome: str = OUTCOME_FULFILLED):
    return ProbeRecord(
        time=t,
        market=market,
        kind=ProbeKind.ON_DEMAND,
        trigger=ProbeTrigger.MANUAL,
        outcome=outcome,
        spike_multiple=1.25,
        cost=0.133,
    )


def _fill(store) -> None:
    store.insert_probe(_probe(10.0))
    store.insert_probe(_probe(20.0, outcome="InsufficientInstanceCapacity"))
    store.insert_probe(_probe(30.0))
    store.insert_probe(_probe(15.0, market=M2))
    store.insert_price(PriceRecord(0.0, M1, 0.0203))
    store.insert_price(PriceRecord(100.0, M1, 0.517))
    store.insert_price(PriceRecord(50.0, M2, 0.0101))


class TestInMemoryDatastore:
    def test_is_a_probe_database_with_noop_lifecycle(self):
        store = InMemoryDatastore()
        _fill(store)
        assert isinstance(store, Datastore)
        assert len(store) == 4
        assert store.price_count() == 3
        store.save()
        store.close()
        assert len(store) == 4  # nothing happened


class TestSnapshotDatastore:
    def test_save_and_reload_round_trips_exactly(self, tmp_path):
        store = SnapshotDatastore(tmp_path / "state")
        _fill(store)
        store.save()
        store.close()

        reloaded = SnapshotDatastore(tmp_path / "state")
        assert reloaded.probes() == store.probes()
        for market in (M1, M2):
            t0, p0 = store.price_arrays(market)
            t1, p1 = reloaded.price_arrays(market)
            assert t0.tolist() == t1.tolist()
            assert p0.tolist() == p1.tolist()

    def test_wal_recovers_unsnapshotted_inserts(self, tmp_path):
        store = SnapshotDatastore(tmp_path / "state")
        store.insert_probe(_probe(10.0))
        store.save()
        # Inserts after the snapshot land in the write-ahead log only.
        store.insert_probe(_probe(20.0))
        store.insert_price(PriceRecord(5.0, M1, 0.02))
        store.close()  # flush, but no snapshot

        reloaded = SnapshotDatastore(tmp_path / "state")
        assert len(reloaded) == 2
        assert reloaded.price_count(M1) == 1
        assert [p.time for p in reloaded.probes(market=M1)] == [10.0, 20.0]

    def test_wal_alone_recovers_without_any_snapshot(self, tmp_path):
        store = SnapshotDatastore(tmp_path / "state")
        _fill(store)
        store.close()  # never snapshotted
        reloaded = SnapshotDatastore(tmp_path / "state")
        assert reloaded.probes() == store.probes()
        assert reloaded.price_count() == 3

    def test_save_compacts_the_wal(self, tmp_path):
        root = tmp_path / "state"
        store = SnapshotDatastore(root)
        _fill(store)
        store.flush()
        assert list(root.glob("*.wal.*.csv"))
        store.save()
        # The superseded generation's WAL is *retained* (it is the
        # fallback should the new snapshot fail verification) but the
        # live generation starts with no WAL at all.
        assert not list(root.glob(f"*.wal.{store._generation}.csv"))
        assert (root / "manifest.json").exists()
        # The next save retires the old fallback generation entirely.
        store.insert_probe(_probe(40.0))
        store.save()
        store.close()
        assert not list(root.glob("*.wal.0.csv"))

    def test_superseded_wal_is_retained_but_not_replayed(self, tmp_path):
        root = tmp_path / "state"
        store = SnapshotDatastore(root)
        _fill(store)
        store.flush()
        wal = root / "probes.wal.0.csv"
        assert wal.exists()
        store.save()  # generation 1 commits; its snapshot holds the rows

        reloaded = SnapshotDatastore(root)
        assert len(reloaded) == len(store)  # no double replay
        assert wal.exists()  # kept as the fallback generation's WAL

    def test_append_log_can_be_disabled(self, tmp_path):
        root = tmp_path / "state"
        store = SnapshotDatastore(root, append_log=False)
        _fill(store)
        store.close()
        assert not list(root.glob("*.wal.*.csv"))
        # Without a snapshot either, nothing survives.
        assert len(SnapshotDatastore(root)) == 0

    def test_save_fsyncs_data_before_the_manifest_commit(self, tmp_path, monkeypatch):
        """Durability: every new-generation file (both snapshots and
        the manifest) must be fsync'd before the manifest rename that
        commits the save — otherwise a crash right after "commit" could
        leave a manifest pointing at torn snapshot data."""
        import repro.core.datastore as ds

        events: list[str] = []
        real_fsync, real_replace = ds.os.fsync, ds.Path.replace

        def spy_fsync(fd):
            events.append("fsync")
            return real_fsync(fd)

        def spy_replace(self, target):
            if str(target).endswith("manifest.json"):
                events.append("manifest-commit")
            return real_replace(self, target)

        monkeypatch.setattr(ds.os, "fsync", spy_fsync)
        monkeypatch.setattr(ds.Path, "replace", spy_replace)

        store = SnapshotDatastore(tmp_path / "state")
        _fill(store)
        events.clear()
        store.save()
        store.close()

        commit = events.index("manifest-commit")
        # Probes snapshot, prices snapshot, manifest tmp, directory:
        # all made durable before the commit rename.
        assert events[:commit].count("fsync") >= 4

    def test_flush_fsyncs_the_wal(self, tmp_path, monkeypatch):
        import repro.core.datastore as ds

        synced: list[int] = []
        real_fsync = ds.os.fsync
        monkeypatch.setattr(
            ds.os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
        )
        store = SnapshotDatastore(tmp_path / "state")
        _fill(store)
        synced.clear()
        store.flush()
        assert len(synced) == 2  # probe WAL + price WAL
        store.close()

    def test_must_exist_refuses_an_empty_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SnapshotDatastore(tmp_path / "typo", must_exist=True)
        assert not (tmp_path / "typo").exists()  # no side-effect mkdir
        store = SnapshotDatastore(tmp_path / "real")
        store.save()
        assert len(SnapshotDatastore(tmp_path / "real", must_exist=True)) == 0

    def test_unsupported_format_version_rejected(self, tmp_path):
        root = tmp_path / "state"
        store = SnapshotDatastore(root)
        _fill(store)
        store.save()
        manifest = root / "manifest.json"
        manifest.write_text(manifest.read_text().replace(
            '"format_version": 2', '"format_version": 99'
        ))
        with pytest.raises(ValueError):
            SnapshotDatastore(root)

    def test_legacy_v1_manifest_still_loads(self, tmp_path):
        """Directories written before checksums existed (format 1, no
        ``checksums``/``previous`` blocks, plain WAL rows) must load."""
        import csv
        import json

        from repro.core.records import PROBE_CSV_FIELDS

        root = tmp_path / "state"
        store = SnapshotDatastore(root)
        _fill(store)
        store.save()
        manifest = json.loads((root / "manifest.json").read_text())
        for key in ("checksums", "previous"):
            manifest.pop(key)
        manifest["format_version"] = 1
        (root / "manifest.json").write_text(json.dumps(manifest))
        (root / "manifest.prev.json").unlink(missing_ok=True)
        # A legacy WAL: no crc column.
        with (root / "probes.wal.1.csv").open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(PROBE_CSV_FIELDS)
            row = _probe(99.0).to_row()
            writer.writerow([row[field] for field in PROBE_CSV_FIELDS])

        reloaded = SnapshotDatastore(root)
        assert len(reloaded) == len(store) + 1
        assert reloaded.probes()[-1].time == 99.0
        assert reloaded.recovery_report == {}

    def test_reopening_appends_after_reload(self, tmp_path):
        root = tmp_path / "state"
        store = SnapshotDatastore(root)
        store.insert_probe(_probe(10.0))
        store.close()
        resumed = SnapshotDatastore(root)
        resumed.insert_probe(_probe(20.0))
        resumed.close()
        final = SnapshotDatastore(root)
        assert [p.time for p in final.probes(market=M1)] == [10.0, 20.0]


class TestCrashRecovery:
    """Chaos-grade recovery: torn WAL tails, corrupted snapshots, and
    faults injected mid-save (see RELIABILITY.md for the failure
    model these encode)."""

    def _times(self, store) -> list[float]:
        return [p.time for p in store.probes()]

    def test_truncated_wal_tail_recovers_every_complete_record(self, tmp_path):
        from repro.chaos import truncate_tail

        root = tmp_path / "state"
        store = SnapshotDatastore(root)
        for t in (10.0, 20.0, 30.0, 40.0, 50.0):
            store.insert_probe(_probe(t))
        store.close()
        truncate_tail(root / "probes.wal.0.csv", 7)  # shear the last row

        reloaded = SnapshotDatastore(root)
        # Record-for-record: everything except the torn final record.
        assert reloaded.probes() == store.probes()[:-1]
        report = reloaded.recovery_report["probes_wal"]
        assert report == {"generation": 0, "recovered": 4, "dropped": 1}

    def test_garbled_wal_tail_recovers_every_complete_record(self, tmp_path):
        from repro.chaos import garble_tail

        root = tmp_path / "state"
        store = SnapshotDatastore(root)
        for t in (10.0, 20.0, 30.0):
            store.insert_probe(_probe(t))
        store.insert_price(PriceRecord(5.0, M1, 0.02))
        store.close()
        garble_tail(root / "probes.wal.0.csv", 9)  # corrupt in place

        reloaded = SnapshotDatastore(root)
        assert reloaded.probes() == store.probes()[:-1]
        assert reloaded.recovery_report["probes_wal"]["dropped"] == 1
        # The untouched price WAL replays in full, and silently.
        assert reloaded.price_count() == 1
        assert "prices_wal" not in reloaded.recovery_report

    def test_torn_tail_is_trimmed_so_the_next_load_is_clean(self, tmp_path):
        from repro.chaos import truncate_tail

        root = tmp_path / "state"
        store = SnapshotDatastore(root)
        for t in (10.0, 20.0, 30.0):
            store.insert_probe(_probe(t))
        store.close()
        truncate_tail(root / "probes.wal.0.csv", 5)

        first = SnapshotDatastore(root)  # writer mode: trims the tail
        assert first.recovery_report["probes_wal"]["dropped"] == 1
        first.close()
        second = SnapshotDatastore(root)
        assert self._times(second) == [10.0, 20.0]
        assert second.recovery_report == {}  # nothing left to repair

    def test_corrupt_snapshot_falls_back_to_previous_generation(self, tmp_path):
        from repro.chaos import garble_tail

        root = tmp_path / "state"
        store = SnapshotDatastore(root)
        _fill(store)
        store.save()                        # generation 1
        store.insert_probe(_probe(40.0))    # -> WAL generation 1
        store.save()                        # generation 2
        store.insert_probe(_probe(50.0))    # -> WAL generation 2
        store.close()
        garble_tail(root / "probes.2.csv", 12)  # live snapshot now lies

        reloaded = SnapshotDatastore(root)
        # snapshot(1) + WAL(1) + WAL(2) = everything ever committed.
        assert reloaded.probes() == store.probes()
        assert reloaded.price_count() == store.price_count()
        fallback = reloaded.recovery_report["fallback"]
        assert fallback["reason"] == "snapshot failed verification"
        assert fallback["recovered_from"] == 1
        assert fallback["wal_generations_replayed"] == [1, 2]

    def test_saving_after_a_fallback_load_supersedes_the_damage(self, tmp_path):
        from repro.chaos import garble_tail

        root = tmp_path / "state"
        store = SnapshotDatastore(root)
        _fill(store)
        store.save()
        store.insert_probe(_probe(40.0))
        store.save()
        store.close()
        garble_tail(root / "probes.2.csv", 12)

        recovered = SnapshotDatastore(root)
        assert "fallback" in recovered.recovery_report
        recovered.insert_probe(_probe(60.0))
        recovered.save()  # must not collide with the damaged generation
        recovered.close()

        clean = SnapshotDatastore(root)
        assert clean.probes() == recovered.probes()
        assert clean.recovery_report == {}

    def test_garbled_manifest_recovers_via_the_retained_copy(self, tmp_path):
        root = tmp_path / "state"
        store = SnapshotDatastore(root)
        _fill(store)
        store.save()
        store.insert_probe(_probe(40.0))
        store.save()
        store.close()
        (root / "manifest.json").write_text("{ not json at all")

        reloaded = SnapshotDatastore(root)
        assert reloaded.probes() == store.probes()
        fallback = reloaded.recovery_report["fallback"]
        assert fallback["reason"] == "manifest unreadable"

    def test_unrecoverable_directory_raises_corrupt_snapshot_error(
        self, tmp_path
    ):
        from repro.chaos import garble_tail
        from repro.core.datastore import CorruptSnapshotError

        root = tmp_path / "state"
        store = SnapshotDatastore(root)
        _fill(store)
        store.save()
        store.insert_probe(_probe(40.0))
        store.save()
        store.close()
        garble_tail(root / "probes.2.csv", 12)  # live generation bad
        garble_tail(root / "probes.1.csv", 12)  # ...and its fallback too

        with pytest.raises(CorruptSnapshotError, match="failed verification"):
            SnapshotDatastore(root)

    def test_crash_at_the_commit_point_loses_nothing_committed(self, tmp_path):
        from repro.chaos import FaultError, FaultInjector

        root = tmp_path / "state"
        faults = FaultInjector(seed=7)
        store = SnapshotDatastore(root, fault_injector=faults)
        _fill(store)
        store.save()
        store.insert_probe(_probe(40.0))
        store.flush()

        faults.arm("datastore.save.commit", times=1)
        with pytest.raises(FaultError):
            store.save()  # "crashes" right before the manifest replace

        # A fresh process sees the last *committed* state: the gen-1
        # snapshot plus its WAL — the orphaned gen-2 files are ignored.
        reloaded = SnapshotDatastore(root)
        assert reloaded.probes() == store.probes()
        assert reloaded.recovery_report == {}
        # And the next save moves past the orphaned generation.
        reloaded.insert_probe(_probe(60.0))
        reloaded.save()
        reloaded.close()
        assert SnapshotDatastore(root).probes() == reloaded.probes()

    def test_crash_while_writing_the_snapshot_is_harmless(self, tmp_path):
        from repro.chaos import FaultError, FaultInjector

        root = tmp_path / "state"
        faults = FaultInjector(seed=7)
        store = SnapshotDatastore(root, fault_injector=faults)
        _fill(store)
        faults.arm("datastore.save.snapshot", times=1)
        with pytest.raises(FaultError):
            store.save()
        reloaded = SnapshotDatastore(root)  # WAL replay carries it all
        assert reloaded.probes() == store.probes()

    def test_fsync_faults_surface_as_io_errors(self, tmp_path):
        from repro.chaos import FaultError, FaultInjector

        faults = FaultInjector(seed=7)
        store = SnapshotDatastore(tmp_path / "state", fault_injector=faults)
        store.insert_probe(_probe(10.0))
        faults.arm("datastore.wal.fsync", times=1)
        with pytest.raises(FaultError):
            store.flush()
        store.flush()  # the budgeted fault is spent; IO works again
        store.close()


class TestServiceStopResume:
    """The acceptance scenario: one service run snapshots its state; a
    fresh service (new objects, as a second process would build) answers
    the flagship query identically."""

    def test_snapshot_resume_answers_top_stable_identically(self, tmp_path):
        root = tmp_path / "spotlight-state"
        catalog = small_catalog(regions=["sa-east-1"], families=["c3"])
        sim = EC2Simulator(FleetConfig(catalog=catalog, seed=7, tick_interval=300.0))
        spotlight = SpotLight(
            sim, SpotLightConfig(), datastore=SnapshotDatastore(root)
        )
        spotlight.start()
        sim.run_for(12 * 3600.0)
        spotlight.save()
        original = spotlight.frontend.top_stable_markets(n=10, bid_multiple=1.0)
        assert original  # the run must produce data for this test to mean anything
        spotlight.datastore.close()

        reloaded = SnapshotDatastore(root)
        engine = SpotLightQuery(reloaded, default_catalog())
        resumed = engine.top_stable_markets(n=10, bid_multiple=1.0)
        assert resumed == original

    def test_resume_without_final_save_uses_wal(self, tmp_path):
        root = tmp_path / "spotlight-state"
        catalog = small_catalog(regions=["sa-east-1"], families=["c3"])
        sim = EC2Simulator(FleetConfig(catalog=catalog, seed=7, tick_interval=300.0))
        spotlight = SpotLight(
            sim, SpotLightConfig(), datastore=SnapshotDatastore(root)
        )
        sim.run_for(2 * 3600.0)
        spotlight.datastore.close()  # "crash": no snapshot written

        reloaded = SnapshotDatastore(root)
        assert reloaded.price_count() == spotlight.database.price_count()

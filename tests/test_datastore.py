"""Tests for the pluggable datastore backends (snapshot + WAL resume)."""

import pytest

from repro import (
    EC2Simulator,
    FleetConfig,
    InMemoryDatastore,
    MarketID,
    SnapshotDatastore,
    SpotLight,
    SpotLightConfig,
    SpotLightQuery,
)
from repro.core.datastore import Datastore
from repro.core.records import (
    OUTCOME_FULFILLED,
    PriceRecord,
    ProbeKind,
    ProbeRecord,
    ProbeTrigger,
)
from repro.ec2.catalog import default_catalog, small_catalog

M1 = MarketID("us-east-1a", "m3.large", "Linux/UNIX")
M2 = MarketID("us-east-1b", "m3.large", "Linux/UNIX")


def _probe(t: float, market: MarketID = M1, outcome: str = OUTCOME_FULFILLED):
    return ProbeRecord(
        time=t,
        market=market,
        kind=ProbeKind.ON_DEMAND,
        trigger=ProbeTrigger.MANUAL,
        outcome=outcome,
        spike_multiple=1.25,
        cost=0.133,
    )


def _fill(store) -> None:
    store.insert_probe(_probe(10.0))
    store.insert_probe(_probe(20.0, outcome="InsufficientInstanceCapacity"))
    store.insert_probe(_probe(30.0))
    store.insert_probe(_probe(15.0, market=M2))
    store.insert_price(PriceRecord(0.0, M1, 0.0203))
    store.insert_price(PriceRecord(100.0, M1, 0.517))
    store.insert_price(PriceRecord(50.0, M2, 0.0101))


class TestInMemoryDatastore:
    def test_is_a_probe_database_with_noop_lifecycle(self):
        store = InMemoryDatastore()
        _fill(store)
        assert isinstance(store, Datastore)
        assert len(store) == 4
        assert store.price_count() == 3
        store.save()
        store.close()
        assert len(store) == 4  # nothing happened


class TestSnapshotDatastore:
    def test_save_and_reload_round_trips_exactly(self, tmp_path):
        store = SnapshotDatastore(tmp_path / "state")
        _fill(store)
        store.save()
        store.close()

        reloaded = SnapshotDatastore(tmp_path / "state")
        assert reloaded.probes() == store.probes()
        for market in (M1, M2):
            t0, p0 = store.price_arrays(market)
            t1, p1 = reloaded.price_arrays(market)
            assert t0.tolist() == t1.tolist()
            assert p0.tolist() == p1.tolist()

    def test_wal_recovers_unsnapshotted_inserts(self, tmp_path):
        store = SnapshotDatastore(tmp_path / "state")
        store.insert_probe(_probe(10.0))
        store.save()
        # Inserts after the snapshot land in the write-ahead log only.
        store.insert_probe(_probe(20.0))
        store.insert_price(PriceRecord(5.0, M1, 0.02))
        store.close()  # flush, but no snapshot

        reloaded = SnapshotDatastore(tmp_path / "state")
        assert len(reloaded) == 2
        assert reloaded.price_count(M1) == 1
        assert [p.time for p in reloaded.probes(market=M1)] == [10.0, 20.0]

    def test_wal_alone_recovers_without_any_snapshot(self, tmp_path):
        store = SnapshotDatastore(tmp_path / "state")
        _fill(store)
        store.close()  # never snapshotted
        reloaded = SnapshotDatastore(tmp_path / "state")
        assert reloaded.probes() == store.probes()
        assert reloaded.price_count() == 3

    def test_save_compacts_the_wal(self, tmp_path):
        root = tmp_path / "state"
        store = SnapshotDatastore(root)
        _fill(store)
        store.flush()
        assert list(root.glob("*.wal.*.csv"))
        store.save()
        assert not list(root.glob("*.wal.*.csv"))
        assert (root / "manifest.json").exists()

    def test_stale_wal_from_crashed_save_is_not_replayed(self, tmp_path):
        root = tmp_path / "state"
        store = SnapshotDatastore(root)
        _fill(store)
        store.save()  # now at generation 1; WALs swept
        # Simulate a save() that crashed after the manifest commit but
        # before the sweep: a WAL of the *previous* generation remains,
        # holding rows the snapshot already contains.
        wal = root / "probes.wal.0.csv"
        store.export_probes_csv(wal)

        reloaded = SnapshotDatastore(root)
        assert len(reloaded) == len(store)  # no double replay
        assert not wal.exists()  # stale file swept on load

    def test_append_log_can_be_disabled(self, tmp_path):
        root = tmp_path / "state"
        store = SnapshotDatastore(root, append_log=False)
        _fill(store)
        store.close()
        assert not list(root.glob("*.wal.*.csv"))
        # Without a snapshot either, nothing survives.
        assert len(SnapshotDatastore(root)) == 0

    def test_save_fsyncs_data_before_the_manifest_commit(self, tmp_path, monkeypatch):
        """Durability: every new-generation file (both snapshots and
        the manifest) must be fsync'd before the manifest rename that
        commits the save — otherwise a crash right after "commit" could
        leave a manifest pointing at torn snapshot data."""
        import repro.core.datastore as ds

        events: list[str] = []
        real_fsync, real_replace = ds.os.fsync, ds.Path.replace

        def spy_fsync(fd):
            events.append("fsync")
            return real_fsync(fd)

        def spy_replace(self, target):
            if str(target).endswith("manifest.json"):
                events.append("manifest-commit")
            return real_replace(self, target)

        monkeypatch.setattr(ds.os, "fsync", spy_fsync)
        monkeypatch.setattr(ds.Path, "replace", spy_replace)

        store = SnapshotDatastore(tmp_path / "state")
        _fill(store)
        events.clear()
        store.save()
        store.close()

        commit = events.index("manifest-commit")
        # Probes snapshot, prices snapshot, manifest tmp, directory:
        # all made durable before the commit rename.
        assert events[:commit].count("fsync") >= 4

    def test_flush_fsyncs_the_wal(self, tmp_path, monkeypatch):
        import repro.core.datastore as ds

        synced: list[int] = []
        real_fsync = ds.os.fsync
        monkeypatch.setattr(
            ds.os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
        )
        store = SnapshotDatastore(tmp_path / "state")
        _fill(store)
        synced.clear()
        store.flush()
        assert len(synced) == 2  # probe WAL + price WAL
        store.close()

    def test_must_exist_refuses_an_empty_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SnapshotDatastore(tmp_path / "typo", must_exist=True)
        assert not (tmp_path / "typo").exists()  # no side-effect mkdir
        store = SnapshotDatastore(tmp_path / "real")
        store.save()
        assert len(SnapshotDatastore(tmp_path / "real", must_exist=True)) == 0

    def test_unsupported_format_version_rejected(self, tmp_path):
        root = tmp_path / "state"
        store = SnapshotDatastore(root)
        _fill(store)
        store.save()
        manifest = root / "manifest.json"
        manifest.write_text(manifest.read_text().replace(
            '"format_version": 1', '"format_version": 99'
        ))
        with pytest.raises(ValueError):
            SnapshotDatastore(root)

    def test_reopening_appends_after_reload(self, tmp_path):
        root = tmp_path / "state"
        store = SnapshotDatastore(root)
        store.insert_probe(_probe(10.0))
        store.close()
        resumed = SnapshotDatastore(root)
        resumed.insert_probe(_probe(20.0))
        resumed.close()
        final = SnapshotDatastore(root)
        assert [p.time for p in final.probes(market=M1)] == [10.0, 20.0]


class TestServiceStopResume:
    """The acceptance scenario: one service run snapshots its state; a
    fresh service (new objects, as a second process would build) answers
    the flagship query identically."""

    def test_snapshot_resume_answers_top_stable_identically(self, tmp_path):
        root = tmp_path / "spotlight-state"
        catalog = small_catalog(regions=["sa-east-1"], families=["c3"])
        sim = EC2Simulator(FleetConfig(catalog=catalog, seed=7, tick_interval=300.0))
        spotlight = SpotLight(
            sim, SpotLightConfig(), datastore=SnapshotDatastore(root)
        )
        spotlight.start()
        sim.run_for(12 * 3600.0)
        spotlight.save()
        original = spotlight.frontend.top_stable_markets(n=10, bid_multiple=1.0)
        assert original  # the run must produce data for this test to mean anything
        spotlight.datastore.close()

        reloaded = SnapshotDatastore(root)
        engine = SpotLightQuery(reloaded, default_catalog())
        resumed = engine.top_stable_markets(n=10, bid_multiple=1.0)
        assert resumed == original

    def test_resume_without_final_save_uses_wal(self, tmp_path):
        root = tmp_path / "spotlight-state"
        catalog = small_catalog(regions=["sa-east-1"], families=["c3"])
        sim = EC2Simulator(FleetConfig(catalog=catalog, seed=7, tick_interval=300.0))
        spotlight = SpotLight(
            sim, SpotLightConfig(), datastore=SnapshotDatastore(root)
        )
        sim.run_for(2 * 3600.0)
        spotlight.datastore.close()  # "crash": no snapshot written

        reloaded = SnapshotDatastore(root)
        assert reloaded.price_count() == spotlight.database.price_count()

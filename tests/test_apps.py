"""Tests for the SpotCheck and SpotOn case-study simulations."""

import pytest

from repro.apps.spotcheck import SpotCheckConfig, SpotCheckSimulator
from repro.apps.spoton import JobConfig, SpotOnSimulator
from repro.core.database import ProbeDatabase
from repro.core.market_id import MarketID
from repro.core.query import SpotLightQuery
from repro.core.records import (
    OUTCOME_FULFILLED,
    PriceRecord,
    ProbeKind,
    ProbeRecord,
    ProbeTrigger,
)
from repro.ec2.catalog import default_catalog

VOLATILE = MarketID("us-east-1a", "m3.large", "Linux/UNIX")  # od = 0.133
SAFE = MarketID("us-west-2a", "m3.large", "Linux/UNIX")

REJ = "InsufficientInstanceCapacity"
HOUR = 3600.0
DAY = 86400.0


@pytest.fixture()
def query():
    """Hand-built scenario: VOLATILE spikes above on-demand at hour 10
    and hour 30; its on-demand pool is out exactly during the first
    spike (the paper's correlation).  SAFE never spikes and is always
    available."""
    db = ProbeDatabase()
    od = 0.133
    # Price series for VOLATILE: calm, spike at 10 h (1 h long), calm,
    # spike at 30 h, calm until 48 h.
    points = [
        (0.0, 0.02), (10 * HOUR, od * 3), (11 * HOUR, 0.02),
        (30 * HOUR, od * 2), (31 * HOUR, 0.02), (48 * HOUR, 0.02),
    ]
    for t, p in points:
        db.insert_price(PriceRecord(t, VOLATILE, p))
    for t in (0.0, 48 * HOUR):
        db.insert_price(PriceRecord(t, SAFE, 0.01))
    # On-demand probes: VOLATILE rejected during [10 h, 12 h).
    for t, outcome in [
        (0.0, OUTCOME_FULFILLED),
        (10 * HOUR, REJ),
        (12 * HOUR, OUTCOME_FULFILLED),
    ]:
        db.insert_probe(
            ProbeRecord(
                time=t, market=VOLATILE, kind=ProbeKind.ON_DEMAND,
                trigger=ProbeTrigger.RECOVERY, outcome=outcome,
            )
        )
    return SpotLightQuery(db, default_catalog())


class TestSpotCheck:
    def test_revocations_found_at_price_crossings(self, query):
        simulator = SpotCheckSimulator(query)
        config = SpotCheckConfig(market=VOLATILE)
        times = simulator.revocation_times(config, 0.0, 48 * HOUR)
        assert times == [10 * HOUR, 30 * HOUR]

    def test_naive_policy_pays_for_unavailable_fallback(self, query):
        simulator = SpotCheckSimulator(query)
        result = simulator.run_naive(
            SpotCheckConfig(market=VOLATILE), 0.0, 48 * HOUR
        )
        assert result.revocations == 2
        assert result.failed_failovers == 1
        # Two hours of waiting for the on-demand pool to recover.
        assert result.downtime == pytest.approx(2 * HOUR + 2 * 1.0)
        assert result.availability < 0.96

    def test_spotlight_policy_restores_availability(self, query):
        simulator = SpotCheckSimulator(query)
        result = simulator.run_with_spotlight(
            SpotCheckConfig(market=VOLATILE), 0.0, 48 * HOUR, candidates=[SAFE]
        )
        assert result.failed_failovers == 0
        assert result.availability > 0.9999

    def test_spotlight_needs_candidates(self, query):
        simulator = SpotCheckSimulator(query)
        with pytest.raises(ValueError):
            simulator.run_with_spotlight(
                SpotCheckConfig(market=VOLATILE), 0.0, 48 * HOUR, candidates=[]
            )

    def test_availability_never_negative(self, query):
        simulator = SpotCheckSimulator(query)
        result = simulator.run_naive(
            SpotCheckConfig(market=VOLATILE), 0.0, 1.0
        )
        assert 0.0 <= result.availability <= 1.0


class TestSpotOn:
    def test_uninterrupted_job_takes_work_plus_checkpoint_overhead(self, query):
        simulator = SpotOnSimulator(query)
        job = JobConfig()
        outcome = simulator.simulate_job(VOLATILE, job, start=15 * HOUR)
        assert not outcome.revoked
        expected = job.running_time * (1 + job.checkpoint_time / job.checkpoint_interval)
        assert outcome.completion_time == pytest.approx(expected)

    def test_revoked_job_waits_for_on_demand(self, query):
        simulator = SpotOnSimulator(query)
        job = JobConfig()
        outcome = simulator.simulate_job(VOLATILE, job, start=9.5 * HOUR)
        assert outcome.revoked
        assert outcome.waited_for_on_demand > 0
        expected_wait = 2 * HOUR  # outage ends at 12 h, revocation at 10 h
        assert outcome.waited_for_on_demand == pytest.approx(expected_wait)

    def test_baseline_assumption_ignores_wait(self, query):
        simulator = SpotOnSimulator(query)
        job = JobConfig()
        optimistic = simulator.simulate_job(
            VOLATILE, job, start=9.5 * HOUR, assume_on_demand_available=True
        )
        realistic = simulator.simulate_job(VOLATILE, job, start=9.5 * HOUR)
        assert optimistic.completion_time < realistic.completion_time

    def test_spotlight_fallback_avoids_wait(self, query):
        simulator = SpotOnSimulator(query)
        job = JobConfig()
        fallback = simulator.choose_fallback_with_spotlight(VOLATILE, [SAFE])
        assert fallback == SAFE
        outcome = simulator.simulate_job(
            VOLATILE, job, start=9.5 * HOUR, fallback=fallback
        )
        assert outcome.waited_for_on_demand == 0.0

    def test_expected_cost_prefers_stable_market(self, query):
        simulator = SpotOnSimulator(query)
        job = JobConfig()
        chosen = simulator.choose_market([VOLATILE, SAFE], job, 0.0, 48 * HOUR)
        assert chosen == SAFE

    def test_average_running_time_with_vs_without_unavailability(self, query):
        simulator = SpotOnSimulator(query, seed=1)
        job = JobConfig()
        horizon = (0.0, 40 * HOUR)
        with_wait = simulator.average_running_time(
            VOLATILE, job, trials=200, horizon=horizon
        )
        simulator2 = SpotOnSimulator(query, seed=1)
        without_wait = simulator2.average_running_time(
            VOLATILE, job, trials=200, horizon=horizon,
            assume_on_demand_available=True,
        )
        assert with_wait >= without_wait

    def test_job_config_validation(self):
        with pytest.raises(ValueError):
            JobConfig(running_time=0.0)
        with pytest.raises(ValueError):
            JobConfig(checkpoint_interval=0.0)

    def test_choose_market_requires_candidates(self, query):
        with pytest.raises(ValueError):
            SpotOnSimulator(query).choose_market([], JobConfig())


class TestSpotOnReplication:
    def test_surviving_replica_finishes_at_full_speed(self, query):
        simulator = SpotOnSimulator(query)
        job = JobConfig()
        # VOLATILE is revoked at 10 h, SAFE never: the SAFE replica wins.
        outcome = simulator.simulate_replicated_job(
            [VOLATILE, SAFE], job, start=9.5 * HOUR
        )
        assert not outcome.revoked
        # Replication carries no checkpoint overhead.
        assert outcome.completion_time == pytest.approx(job.running_time)

    def test_all_replicas_revoked_restarts_from_scratch(self, query):
        simulator = SpotOnSimulator(query)
        job = JobConfig()
        outcome = simulator.simulate_replicated_job(
            [VOLATILE], job, start=9.5 * HOUR
        )
        assert outcome.revoked
        # Lost 30 min of work, waited out the 2 h outage, redid the hour.
        assert outcome.waited_for_on_demand == pytest.approx(2 * HOUR)
        assert outcome.completion_time > job.running_time

    def test_empty_replica_set_rejected(self, query):
        with pytest.raises(ValueError):
            SpotOnSimulator(query).simulate_replicated_job([], JobConfig(), 0.0)

    def test_mechanism_choice_prefers_replication_on_stable_cheap_market(self, query):
        from repro.apps.spoton import FaultTolerance

        simulator = SpotOnSimulator(query)
        # SAFE never revokes and is very cheap: two replicas cost less
        # than checkpointing overhead.
        choice = simulator.choose_mechanism(SAFE, JobConfig(), replicas=2)
        assert choice in (FaultTolerance.REPLICATION, FaultTolerance.CHECKPOINT)

    def test_mechanism_choice_defaults_to_checkpoint_without_data(self, query):
        from repro.apps.spoton import FaultTolerance

        simulator = SpotOnSimulator(query)
        unknown = MarketID("us-east-1c", "m3.large", "Linux/UNIX")
        assert simulator.choose_mechanism(unknown, JobConfig()) is (
            FaultTolerance.CHECKPOINT
        )

"""Tests for the markdown study report."""

import pytest

from repro.analysis.report import render_study_report


@pytest.fixture(scope="module")
def report(monitored_run):
    _, spotlight = monitored_run
    return render_study_report(spotlight)


def test_report_has_all_sections(report):
    for heading in (
        "# SpotLight availability study",
        "## On-demand unavailability vs spot price spikes",
        "## Per-region picture",
        "## Related-market probing",
        "## Unavailability durations",
        "## Spot capacity",
        "## On-demand vs spot relationship",
    ):
        assert heading in report


def test_report_mentions_monitored_regions(report):
    assert "sa-east-1" in report
    assert "us-east-1" in report


def test_report_tables_are_well_formed(report):
    for line in report.splitlines():
        if line.startswith("|"):
            assert line.count("|") >= 3  # at least two cells


def test_report_numbers_render_as_percentages(report):
    assert "%" in report
    assert "$" in report

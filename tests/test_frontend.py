"""Tests for the serving frontend: schema handling and the TTL cache."""

import pytest

from repro.core.database import ProbeDatabase
from repro.core.frontend import QueryFrontend
from repro.core.market_id import MarketID
from repro.core.query import SpotLightQuery
from repro.core.records import (
    OUTCOME_FULFILLED,
    PriceRecord,
    ProbeKind,
    ProbeRecord,
    ProbeTrigger,
)
from repro.ec2.catalog import default_catalog

M1 = MarketID("us-east-1a", "m3.large", "Linux/UNIX")
M2 = MarketID("us-east-1b", "m3.large", "Linux/UNIX")

REJ = "InsufficientInstanceCapacity"


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture()
def engine() -> SpotLightQuery:
    db = ProbeDatabase()
    db.insert_price(PriceRecord(0.0, M1, 0.02))
    db.insert_price(PriceRecord(1000.0, M1, 0.5))
    db.insert_price(PriceRecord(2000.0, M1, 0.02))
    db.insert_price(PriceRecord(3000.0, M1, 0.02))
    db.insert_price(PriceRecord(0.0, M2, 0.01))
    db.insert_price(PriceRecord(3000.0, M2, 0.01))
    for t, outcome in [
        (0.0, OUTCOME_FULFILLED), (500.0, REJ), (800.0, OUTCOME_FULFILLED),
    ]:
        db.insert_probe(
            ProbeRecord(
                time=t, market=M1, kind=ProbeKind.ON_DEMAND,
                trigger=ProbeTrigger.RECOVERY, outcome=outcome,
            )
        )
    return SpotLightQuery(db, default_catalog())


@pytest.fixture()
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture()
def frontend(engine, clock) -> QueryFrontend:
    return QueryFrontend(engine, clock=clock, cache_ttl=300.0)


class TestTypedApi:
    def test_typed_methods_match_engine(self, frontend, engine):
        assert frontend.on_demand_price(M1) == engine.on_demand_price(M1)
        assert frontend.mean_price(M1) == engine.mean_price(M1)
        assert frontend.top_stable_markets(n=2) == engine.top_stable_markets(n=2)
        assert frontend.unavailability_periods(M1) == (
            engine.unavailability_periods(M1)
        )
        assert frontend.is_unavailable_at(M1, 600.0)
        assert frontend.least_unavailable_markets([M1, M2])[0][0] == M2

    def test_repeated_call_is_a_cache_hit(self, frontend):
        frontend.top_stable_markets(n=2)
        assert frontend.stats()["misses"] == 1
        frontend.top_stable_markets(n=2)
        assert frontend.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "evictions": 0,
            "expirations": 0, "wire_entries": 0, "wire_hits": 0,
            "wire_misses": 0, "generation": 0,
        }

    def test_different_params_are_different_entries(self, frontend):
        frontend.top_stable_markets(n=2)
        frontend.top_stable_markets(n=3)
        assert frontend.stats()["entries"] == 2
        assert frontend.stats()["hits"] == 0

    def test_ttl_expiry_recomputes(self, frontend, clock):
        frontend.mean_price(M1)
        clock.now = 299.0
        frontend.mean_price(M1)
        assert frontend.hits == 1
        clock.now = 301.0
        frontend.mean_price(M1)
        assert frontend.hits == 1
        assert frontend.misses == 2

    def test_invalidate_clears_cache(self, frontend):
        frontend.mean_price(M1)
        frontend.invalidate()
        frontend.mean_price(M1)
        assert frontend.misses == 2

    def test_cache_eviction_drops_oldest(self, engine, clock):
        frontend = QueryFrontend(engine, clock=clock, cache_ttl=300.0, max_entries=2)
        frontend.mean_price(M1)
        frontend.mean_price(M2)
        frontend.on_demand_price(M1)  # evicts the oldest (mean_price M1)
        assert frontend.stats()["entries"] == 2
        frontend.mean_price(M1)
        assert frontend.hits == 0  # it was evicted, so this recomputed

    def test_eviction_accounting_at_the_capacity_boundary(self, engine, clock):
        """``evictions`` counts capacity drops only; TTL lapses land in
        ``expirations`` — each removed entry is tallied exactly once."""
        frontend = QueryFrontend(engine, clock=clock, cache_ttl=300.0, max_entries=2)
        frontend.mean_price(M1)
        frontend.mean_price(M2)         # exactly at capacity
        frontend.on_demand_price(M1)    # one live entry dropped for room
        stats = frontend.stats()
        assert stats["evictions"] == 1
        assert stats["expirations"] == 0
        assert stats["entries"] == 2

        clock.now = 1000.0              # everything cached has expired
        frontend.on_demand_price(M2)    # room comes from expiry alone
        stats = frontend.stats()
        assert stats["evictions"] == 1  # unchanged: no live entry dropped
        assert stats["expirations"] == 2
        assert stats["entries"] == 1

    def test_request_key_is_canonical(self):
        key_a = QueryFrontend.request_key("q", {"b": 1, "a": 2})
        key_b = QueryFrontend.request_key("q", {"a": 2, "b": 1})
        assert key_a == key_b
        assert QueryFrontend.request_key("q", {"a": 1}) != key_a

    def test_invalid_construction(self, engine):
        with pytest.raises(ValueError):
            QueryFrontend(engine, cache_ttl=-1.0)
        with pytest.raises(ValueError):
            QueryFrontend(engine, max_entries=0)


class TestSchemaApi:
    def test_top_stable_markets_schema(self, frontend):
        response = frontend.handle(
            {"query": "top-stable-markets", "params": {"n": 2, "bid_multiple": 1.0}}
        )
        assert response["ok"]
        assert response["cached"] is False
        result = response["result"]
        assert len(result) == 2
        assert result[0]["market"] == str(M2)  # flat + cheap ranks first
        assert {"availability_zone", "instance_type", "product",
                "mean_time_to_revocation", "availability_at_bid",
                "mean_price"} <= set(result[0])

    def test_second_request_served_from_cache(self, frontend):
        request = {"query": "mean-price", "params": {"market": str(M1)}}
        first = frontend.handle(request)
        second = frontend.handle(request)
        assert first["result"] == second["result"]
        assert not first["cached"] and second["cached"]

    def test_market_accepts_string_and_dict(self, frontend):
        by_string = frontend.handle(
            {"query": "on-demand-price", "params": {"market": str(M1)}}
        )
        by_dict = frontend.handle(
            {"query": "on-demand-price",
             "params": {"market": {
                 "availability_zone": "us-east-1a",
                 "instance_type": "m3.large",
                 "product": "Linux/UNIX",
             }}}
        )
        assert by_string["result"] == by_dict["result"]

    def test_unavailability_periods_schema(self, frontend):
        response = frontend.handle(
            {"query": "unavailability-periods",
             "params": {"market": str(M1), "kind": "on-demand"}}
        )
        assert response["ok"]
        (period,) = response["result"]
        assert period["start"] == 500.0
        assert period["end"] == 800.0
        assert period["duration"] == 300.0

    def test_least_unavailable_markets_schema(self, frontend):
        response = frontend.handle(
            {"query": "least-unavailable-markets",
             "params": {"candidates": [str(M1), str(M2)]}}
        )
        assert response["ok"]
        assert response["result"][0]["market"] == str(M2)
        assert response["result"][0]["unavailable_seconds"] == 0.0

    def test_unknown_query_is_an_error(self, frontend):
        response = frontend.handle({"query": "nope"})
        assert not response["ok"]
        assert response["error"]["code"] == "unknown-query"
        assert "top-stable-markets" in response["error"]["message"]

    def test_malformed_market_is_bad_request(self, frontend):
        response = frontend.handle(
            {"query": "mean-price", "params": {"market": "us-east-1a"}}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "bad-request"

    def test_missing_required_param_is_bad_request(self, frontend):
        response = frontend.handle({"query": "availability-at-bid",
                                    "params": {"market": str(M1)}})
        assert not response["ok"]
        assert response["error"]["code"] == "bad-request"

    def test_non_dict_request_rejected(self, frontend):
        assert not frontend.handle(["top-stable-markets"])["ok"]
        assert not frontend.handle({"query": "mean-price", "params": 3})["ok"]

    def test_unknown_kind_is_bad_request(self, frontend):
        response = frontend.handle(
            {"query": "rejection-rate", "params": {"kind": "weird"}}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "bad-request"

    def test_engine_failure_is_internal_error_not_bad_request(self, frontend):
        # The request is well-formed; the engine's catalog simply has no
        # such instance type — that is a server-side failure.
        response = frontend.handle(
            {"query": "on-demand-price",
             "params": {"market": "us-east-1a/zz9.plural/Linux/UNIX"}}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "internal-error"

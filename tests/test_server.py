"""Tests for the network serving tier: wire correctness, single-flight
coalescing, admission control, HTTP framing, and graceful shutdown."""

from __future__ import annotations

import collections
import json
import socket
import threading
import time

import pytest

from repro.client import QueryError, SpotLightClient, ThrottledError, TransportError
from repro.core.database import ProbeDatabase
from repro.core.frontend import QueryFrontend
from repro.core.market_id import MarketID
from repro.core.query import SpotLightQuery
from repro.core.records import (
    OUTCOME_FULFILLED,
    PriceRecord,
    ProbeKind,
    ProbeRecord,
    ProbeTrigger,
)
from repro.ec2.catalog import default_catalog
from repro.server import BackgroundServer

REJ = "InsufficientInstanceCapacity"

MARKETS = [
    MarketID("us-east-1a", "m3.large", "Linux/UNIX"),
    MarketID("us-east-1b", "m3.large", "Linux/UNIX"),
    MarketID("us-east-1a", "m3.xlarge", "Linux/UNIX"),
    MarketID("us-east-1b", "m3.xlarge", "Linux/UNIX"),
    MarketID("us-east-1a", "c3.large", "Linux/UNIX"),
    MarketID("us-east-1b", "c3.large", "Linux/UNIX"),
]


def build_database() -> ProbeDatabase:
    db = ProbeDatabase()
    for index, market in enumerate(MARKETS):
        base = 0.01 * (index + 1)
        for step in range(40):
            t = 250.0 * step
            price = base * (8.0 if (step + index) % 11 == 0 else 1.0)
            db.insert_price(PriceRecord(t, market, price))
        for t, outcome in [
            (0.0, OUTCOME_FULFILLED),
            (500.0 + 100 * index, REJ),
            (900.0 + 100 * index, OUTCOME_FULFILLED),
        ]:
            db.insert_probe(
                ProbeRecord(
                    time=t, market=market, kind=ProbeKind.ON_DEMAND,
                    trigger=ProbeTrigger.RECOVERY, outcome=outcome,
                )
            )
    return db


#: A mixed workload covering every query family the frontend serves.
def workload_requests() -> list[dict]:
    requests = [
        {"query": "top-stable-markets", "params": {"n": 3, "bid_multiple": 1.0}},
        {"query": "top-stable-markets", "params": {"n": 5, "bid_multiple": 1.5}},
        {"query": "unavailability-periods", "params": {"kind": "on-demand"}},
        {"query": "rejection-rate", "params": {}},
        {"query": "least-unavailable-markets",
         "params": {"candidates": [str(m) for m in MARKETS[:4]]}},
    ]
    for market in MARKETS:
        requests.append(
            {"query": "mean-price", "params": {"market": str(market)}}
        )
        requests.append(
            {"query": "availability",
             "params": {"market": str(market), "kind": "on-demand"}}
        )
        requests.append(
            {"query": "availability-at-bid",
             "params": {"market": str(market), "bid_price": 0.25}}
        )
    return requests


@pytest.fixture(scope="module")
def database() -> ProbeDatabase:
    return build_database()


@pytest.fixture()
def frontend(database) -> QueryFrontend:
    return QueryFrontend(SpotLightQuery(database, default_catalog()))


@pytest.fixture()
def served(frontend):
    with BackgroundServer(frontend) as background:
        with SpotLightClient(*background.address) as client:
            yield background, client


class TestWireCorrectness:
    def test_query_answers_match_in_process_frontend(self, served, database):
        _, client = served
        reference = QueryFrontend(SpotLightQuery(database, default_catalog()))
        for request in workload_requests():
            over_wire = client.query(request["query"], request["params"])
            direct = reference.handle(request)["result"]
            assert json.dumps(over_wire, sort_keys=True) == json.dumps(
                direct, sort_keys=True
            ), request

    def test_typed_helpers_mirror_frontend(self, served, frontend):
        _, client = served
        market = MARKETS[0]
        assert client.on_demand_price(market) == frontend.on_demand_price(market)
        assert client.mean_price(market) == frontend.mean_price(market)
        assert client.availability(market) == frontend.availability(market)
        assert client.rejection_rate() == frontend.rejection_rate()
        wire_top = client.top_stable_markets(n=3)
        direct_top = frontend.top_stable_markets(n=3)
        assert [e["market"] for e in wire_top] == [
            str(e.market) for e in direct_top
        ]
        wire_periods = client.unavailability_periods(market)
        direct_periods = frontend.unavailability_periods(market)
        assert [p["start"] for p in wire_periods] == [
            p.start for p in direct_periods
        ]
        ranked = client.least_unavailable_markets([str(m) for m in MARKETS[:3]])
        direct_ranked = frontend.least_unavailable_markets(MARKETS[:3])
        assert ranked[0]["market"] == str(direct_ranked[0][0])

    def test_cached_flag_travels_over_the_wire(self, served):
        _, client = served
        request = ("mean-price", {"market": str(MARKETS[0])})
        first = client.query_response(*request)
        second = client.query_response(*request)
        assert first["ok"] and second["ok"]
        assert not first["cached"] and second["cached"]

    def test_healthz_and_stats(self, served):
        _, client = served
        health = client.healthz()
        assert health["ok"] and health["status"] == "serving"
        client.query("rejection-rate", {})
        stats = client.stats()
        assert stats["endpoints"]["/query"]["requests"] >= 1
        assert stats["endpoints"]["/query"]["latency"]["count"] >= 1
        assert stats["endpoints"]["/query"]["latency"]["p99_seconds"] > 0
        assert stats["frontend"]["misses"] >= 1
        assert stats["connections_accepted"] >= 1

    def test_keep_alive_reuses_one_connection(self, served):
        background, client = served
        before = client.stats()["connections_accepted"]
        for _ in range(5):
            client.query("rejection-rate", {})
        after = client.stats()["connections_accepted"]
        assert after == before  # all rode the same keep-alive connection


class TestErrors:
    def test_unknown_query_is_http_400(self, served):
        _, client = served
        with pytest.raises(QueryError) as excinfo:
            client.query("nope", {})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "unknown-query"

    def test_bad_params_is_http_400(self, served):
        _, client = served
        with pytest.raises(QueryError) as excinfo:
            client.query("mean-price", {"market": "not-a-market"})
        assert excinfo.value.code == "bad-request"

    def test_engine_failure_is_http_500(self, served):
        _, client = served
        with pytest.raises(QueryError) as excinfo:
            client.query(
                "on-demand-price",
                {"market": "us-east-1a/zz9.plural/Linux/UNIX"},
            )
        assert excinfo.value.status == 500
        assert excinfo.value.code == "internal-error"

    def test_unknown_path_is_http_404(self, served):
        background, _ = served
        host, port = background.address
        conn_client = SpotLightClient(host, port)
        status, _, body = conn_client._request("GET", "/nope")
        assert status == 404
        assert body["error"]["code"] == "not-found"
        conn_client.close()

    def test_get_on_query_is_http_405(self, served):
        background, _ = served
        client = SpotLightClient(*background.address)
        status, _, body = client._request("GET", "/query")
        assert status == 405
        client.close()

    def test_malformed_request_line_is_http_400(self, served):
        background, _ = served
        with socket.create_connection(background.address, timeout=5.0) as raw:
            raw.sendall(b"WHAT\r\n\r\n")
            response = raw.recv(4096)
        assert b"400 Bad Request" in response

    def test_non_json_body_is_http_400(self, served):
        background, _ = served
        with socket.create_connection(background.address, timeout=5.0) as raw:
            body = b"{not json"
            raw.sendall(
                b"POST /query HTTP/1.1\r\nContent-Length: "
                + str(len(body)).encode() + b"\r\n\r\n" + body
            )
            response = raw.recv(4096)
        assert b"400 Bad Request" in response

    def test_oversized_body_is_http_413(self, frontend):
        with BackgroundServer(frontend, max_request_bytes=512) as background:
            with SpotLightClient(*background.address) as client:
                with pytest.raises(QueryError) as excinfo:
                    client.query("mean-price", {"market": "x" * 2048})
                assert excinfo.value.status == 413

    def test_oversized_header_line_is_http_431(self, served):
        background, _ = served
        with socket.create_connection(background.address, timeout=5.0) as raw:
            raw.sendall(
                b"GET /healthz HTTP/1.1\r\nX-Big: " + b"a" * (1 << 17) + b"\r\n"
            )
            response = raw.recv(4096)
        assert b"431" in response.split(b"\r\n", 1)[0]

    def test_header_flood_is_http_431(self, served):
        from repro.server import MAX_HEADER_LINES

        background, _ = served
        # Exactly the cap, with no terminating blank line: the server
        # consumes every line, then rejects before reading further.
        flood = b"".join(
            b"X-%d: y\r\n" % index for index in range(MAX_HEADER_LINES)
        )
        with socket.create_connection(background.address, timeout=5.0) as raw:
            raw.sendall(b"GET /healthz HTTP/1.1\r\n" + flood)
            response = raw.recv(4096)
        assert b"431" in response.split(b"\r\n", 1)[0]

    def test_head_sends_headers_without_a_body(self, served):
        background, _ = served
        with socket.create_connection(background.address, timeout=5.0) as raw:
            raw.sendall(b"HEAD /healthz HTTP/1.1\r\n\r\n")
            time.sleep(0.2)
            first = raw.recv(65536)
            assert first.startswith(b"HTTP/1.1 200")
            assert first.endswith(b"\r\n\r\n")  # headers only, no body
            # ... and the keep-alive stream stays usable afterwards.
            raw.sendall(b"GET /healthz HTTP/1.1\r\n\r\n")
            second = raw.recv(65536)
        assert b'"serving"' in second


class _SlowCountingEngine:
    """Delegates to a real engine, counting calls and slowing them down
    so concurrent identical queries genuinely overlap."""

    def __init__(self, engine: SpotLightQuery, delay: float) -> None:
        self._engine = engine
        self._delay = delay
        self.calls: collections.Counter = collections.Counter()

    def __getattr__(self, name: str):
        attr = getattr(self._engine, name)
        if not callable(attr):
            return attr

        def slow(*args, **kwargs):
            self.calls[name] += 1
            time.sleep(self._delay)
            return attr(*args, **kwargs)

        return slow


class TestSingleFlight:
    def test_identical_cold_queries_share_one_computation(self, database):
        engine = _SlowCountingEngine(
            SpotLightQuery(database, default_catalog()), delay=0.5
        )
        frontend = QueryFrontend(engine)
        workers = 6
        barrier = threading.Barrier(workers)
        results: list[object] = []

        with BackgroundServer(frontend) as background:

            def hit() -> None:
                with SpotLightClient(*background.address) as client:
                    barrier.wait()
                    results.append(
                        client.query("mean-price", {"market": str(MARKETS[0])})
                    )

            threads = [threading.Thread(target=hit) for _ in range(workers)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            stats = background.server.stats()

        assert len(results) == workers
        assert len(set(map(str, results))) == 1
        assert engine.calls["mean_price"] == 1  # the whole point
        assert stats["coalesced"] == workers - 1
        # The frontend saw exactly one request: the coalesced followers
        # never reached it, so they are neither hits nor misses.
        assert stats["frontend"]["misses"] == 1

    def test_distinct_queries_are_not_coalesced(self, database):
        engine = _SlowCountingEngine(
            SpotLightQuery(database, default_catalog()), delay=0.05
        )
        frontend = QueryFrontend(engine)
        with BackgroundServer(frontend) as background:
            def hit(market: MarketID) -> None:
                with SpotLightClient(*background.address) as client:
                    client.query("mean-price", {"market": str(market)})

            threads = [
                threading.Thread(target=hit, args=(market,))
                for market in MARKETS[:3]
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert background.server.stats()["coalesced"] == 0
        assert engine.calls["mean_price"] == 3


class TestAdmissionControl:
    def test_overrunning_client_gets_429_with_retry_hint(self, frontend):
        with BackgroundServer(
            frontend, rate_per_second=5.0, burst=3.0
        ) as background:
            with SpotLightClient(*background.address) as client:
                with pytest.raises(ThrottledError) as excinfo:
                    for _ in range(20):
                        client.query("rejection-rate", {})
                assert excinfo.value.retry_after > 0
                # Liveness endpoints are never rate-limited.
                assert client.healthz()["ok"]
                assert background.server.stats()["throttled"] >= 1

    def test_client_bucket_map_stays_bounded(self, frontend):
        from repro.server import MAX_CLIENT_BUCKETS, SpotLightServer

        server = SpotLightServer(frontend)
        for index in range(MAX_CLIENT_BUCKETS + 500):
            assert server._admit(f"10.0.{index // 256}.{index % 256}") is None
        # Fresh buckets are instantly full (idle), so the sweep at the
        # cap clears them; the map never exceeds the bound.
        assert len(server._buckets) <= MAX_CLIENT_BUCKETS

    def test_retrying_query_rides_out_backpressure(self, frontend):
        with BackgroundServer(
            frontend, rate_per_second=50.0, burst=2.0
        ) as background:
            with SpotLightClient(*background.address) as client:
                for _ in range(30):
                    client.retrying_query("rejection-rate", {})
                stats = background.server.stats()
                assert stats["throttled"] >= 1  # backpressure engaged
        # ... and every request eventually succeeded (no exception).


class TestConcurrentServingCorrectness:
    def test_hammered_server_matches_direct_frontend(self, database):
        """N threads through the SDK get byte-identical answers to the
        direct frontend, under cache eviction AND 429 backpressure."""
        requests = workload_requests()
        reference = QueryFrontend(SpotLightQuery(database, default_catalog()))
        expected = {
            QueryFrontend.request_key(r["query"], r["params"]): json.dumps(
                reference.handle(r)["result"], sort_keys=True
            )
            for r in requests
        }

        # Small cache (constant eviction) + tight-ish bucket (some 429s).
        frontend = QueryFrontend(
            SpotLightQuery(database, default_catalog()), max_entries=4
        )
        workers, rounds = 6, 4
        failures: list[str] = []

        with BackgroundServer(
            frontend, rate_per_second=400.0, burst=20.0
        ) as background:

            def hammer(worker_index: int) -> None:
                import random

                order = requests * rounds
                random.Random(worker_index).shuffle(order)
                with SpotLightClient(*background.address) as client:
                    for request in order:
                        result = client.retrying_query(
                            request["query"], request["params"],
                            max_attempts=50,
                        )
                        key = QueryFrontend.request_key(
                            request["query"], request["params"]
                        )
                        got = json.dumps(result, sort_keys=True)
                        if got != expected[key]:
                            failures.append(f"{request}: {got}")

            threads = [
                threading.Thread(target=hammer, args=(i,))
                for i in range(workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            stats = background.server.stats()

        assert not failures, failures[:3]
        assert stats["frontend"]["evictions"] > 0  # eviction really happened
        served = stats["endpoints"]["/query"]["requests"]
        assert served >= workers * rounds * len(requests)


class TestLifecycle:
    def test_graceful_shutdown_finishes_inflight_request(self, database):
        engine = _SlowCountingEngine(
            SpotLightQuery(database, default_catalog()), delay=0.8
        )
        background = BackgroundServer(QueryFrontend(engine)).start()
        outcome: dict[str, object] = {}

        def slow_query() -> None:
            with SpotLightClient(*background.address) as client:
                outcome["result"] = client.query(
                    "mean-price", {"market": str(MARKETS[0])}
                )

        thread = threading.Thread(target=slow_query)
        thread.start()
        time.sleep(0.3)  # request is now in flight
        background.stop()  # drains before closing
        thread.join(timeout=30.0)
        assert "result" in outcome

    def test_stopped_server_refuses_connections(self, frontend):
        background = BackgroundServer(frontend).start()
        address = background.address
        with SpotLightClient(*address) as client:
            assert client.healthz()["ok"]
        background.stop()
        with SpotLightClient(*address) as client:
            with pytest.raises(TransportError):
                client.healthz()

    def test_port_zero_binds_an_ephemeral_port(self, frontend):
        with BackgroundServer(frontend, port=0) as background:
            assert background.address[1] > 0

    def test_two_servers_can_coexist(self, frontend, database):
        other = QueryFrontend(SpotLightQuery(database, default_catalog()))
        with BackgroundServer(frontend) as first, BackgroundServer(other) as second:
            assert first.address[1] != second.address[1]
            with SpotLightClient(*first.address) as c1, \
                    SpotLightClient(*second.address) as c2:
                assert c1.healthz()["ok"] and c2.healthz()["ok"]

"""Tests for the synthetic trace generator."""

import pytest

from repro.traces import (
    SpotPriceTraceGenerator,
    TraceConfig,
    load_trace_csv,
    profile,
    save_trace_csv,
)

WEEK = 7 * 86400.0


def make(seed=1, **kw):
    return SpotPriceTraceGenerator(TraceConfig(**kw), seed=seed)


def test_deterministic_given_seed():
    a = make(seed=5).generate(86400.0)
    b = make(seed=5).generate(86400.0)
    assert a == b


def test_different_seeds_differ():
    assert make(seed=1).generate(86400.0) != make(seed=2).generate(86400.0)


def test_prices_respect_floor_and_cap():
    cfg = TraceConfig(on_demand_price=1.0)
    events = SpotPriceTraceGenerator(cfg, seed=3).generate(WEEK)
    for _, price in events:
        assert cfg.on_demand_price * cfg.floor_fraction <= price
        assert price <= cfg.on_demand_price * cfg.cap_multiple + 1e-9


def test_mean_price_near_base_fraction():
    cfg = TraceConfig(on_demand_price=1.0, base_fraction=0.1, spike_rate_per_day=0.0)
    events = SpotPriceTraceGenerator(cfg, seed=3).generate(WEEK)
    prices = [p for _, p in events]
    mean = sum(prices) / len(prices)
    assert 0.03 <= mean <= 0.35


def test_volatile_profile_exceeds_on_demand_sometimes():
    """Figure 2.1's headline: the spot price periodically exceeds the
    on-demand price."""
    cfg = profile("c3.2xlarge-us-east-1d")
    events = SpotPriceTraceGenerator(cfg, seed=9).generate(2 * WEEK)
    assert any(price > cfg.on_demand_price for _, price in events)


def test_events_are_time_ordered_changes():
    events = make(seed=4).generate(86400.0)
    times = [t for t, _ in events]
    assert times == sorted(times)
    for (_, p1), (_, p2) in zip(events, events[1:]):
        assert p1 != p2  # only changes are recorded


def test_correlated_siblings_share_spikes():
    cfg = profile("c3.2xlarge-us-east-1d")
    gen = SpotPriceTraceGenerator(cfg, seed=7)
    series = gen.generate_correlated(WEEK, siblings=3, correlation=1.0)
    assert len(series) == 3
    for events in series:
        assert events


def test_correlation_bounds_validated():
    gen = make()
    with pytest.raises(ValueError):
        gen.generate_correlated(WEEK, siblings=2, correlation=1.5)
    with pytest.raises(ValueError):
        gen.generate_correlated(WEEK, siblings=0)


def test_unknown_profile_rejected():
    with pytest.raises(KeyError):
        profile("q9.mega-moon-1a")


def test_csv_roundtrip(tmp_path):
    events = make(seed=2).generate(86400.0)
    path = tmp_path / "trace.csv"
    assert save_trace_csv(path, events, market="test") == len(events)
    restored = load_trace_csv(path)
    assert len(restored) == len(events)
    assert restored[0][0] == pytest.approx(events[0][0])
    assert restored[0][1] == pytest.approx(events[0][1])


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        TraceConfig(on_demand_price=0.0)
    with pytest.raises(ValueError):
        TraceConfig(base_fraction=0.0)
    with pytest.raises(ValueError):
        TraceConfig(step_seconds=0.0)

"""Tests for the spot-block (defined duration) contract of Table 2.1."""

import pytest

from repro.common.errors import BadParametersError, InsufficientInstanceCapacityError
from repro.ec2.catalog import small_catalog
from repro.ec2.instance import LIFECYCLE_SPOT_BLOCK
from repro.ec2.platform import EC2Simulator, FleetConfig


@pytest.fixture()
def sim():
    catalog = small_catalog(regions=["us-east-1"], families=["m3"])
    simulator = EC2Simulator(FleetConfig(catalog=catalog, seed=3, tick_interval=300.0))
    simulator.run_for(600.0)
    return simulator


MARKET = ("m3.large", "us-east-1a", "Linux/UNIX")


class TestPricing:
    def test_block_price_between_spot_and_on_demand(self, sim):
        od = sim.catalog.on_demand_price("m3.large", "us-east-1")
        for hours in range(1, 7):
            block = sim.catalog.spot_block_price("m3.large", "us-east-1", "Linux/UNIX", hours)
            assert 0.3 * od < block < od  # "Medium" cost in Table 2.1

    def test_longer_blocks_cost_more_per_hour(self, sim):
        prices = [
            sim.catalog.spot_block_price("m3.large", "us-east-1", "Linux/UNIX", h)
            for h in range(1, 7)
        ]
        assert prices == sorted(prices)

    def test_duration_bounds(self, sim):
        with pytest.raises(ValueError):
            sim.catalog.spot_block_price("m3.large", "us-east-1", "Linux/UNIX", 0)
        with pytest.raises(ValueError):
            sim.catalog.spot_block_price("m3.large", "us-east-1", "Linux/UNIX", 7)


class TestLifecycle:
    def test_block_runs_for_its_duration_then_expires(self, sim):
        block = sim.request_spot_block(*MARKET, duration_hours=2)
        assert block.lifecycle == LIFECYCLE_SPOT_BLOCK
        sim.run_for(3600.0)
        assert block.state.value == "running"
        sim.run_for(3700.0)  # past the 2-hour mark
        assert block.state.value == "terminated"

    def test_block_is_not_revoked_by_price_spikes(self, sim):
        block = sim.request_spot_block(*MARKET, duration_hours=3)
        market = sim.markets[("us-east-1a", "m3.large", "Linux/UNIX")]
        from repro.ec2.market import Bid

        sim.run_for(300.0)
        market.set_bids([Bid(market.max_bid * 0.9, 1000)])
        market.clear(sim.now, 1)
        sim._revoke_outbid_instances(market)
        sim.run_for(600.0)
        assert block.is_live  # unaffected: blocks are not in the spot pool

    def test_block_billing_at_block_rate(self, sim):
        sim.request_spot_block(*MARKET, duration_hours=2)
        sim.run_for(2 * 3600.0 + 120.0)
        record = sim.billing[-1]
        expected_rate = sim.catalog.spot_block_price(
            "m3.large", "us-east-1", "Linux/UNIX", 2
        )
        assert record.rate == pytest.approx(expected_rate)
        assert record.hours_charged >= 2.0

    def test_early_termination_releases_capacity(self, sim):
        pool = sim.pools[("us-east-1a", "m3")]
        sim.run_for(310.0)  # settle past a demand tick
        before = pool.od_units_by_type.get("m3.large", 0)
        block = sim.request_spot_block(*MARKET, duration_hours=6)
        assert pool.od_units_by_type["m3.large"] == before + block.units
        sim.terminate_spot_block(block.instance_id)
        assert pool.od_units_by_type["m3.large"] == before
        assert block.state.value == "terminated"

    def test_obtainability_not_guaranteed(self, sim):
        pool = sim.pools[("us-east-1a", "m3")]
        pool.od_type_bounds["m3.large"] = pool.od_units_by_type.get("m3.large", 0)
        with pytest.raises(InsufficientInstanceCapacityError):
            sim.request_spot_block(*MARKET, duration_hours=1)

    def test_terminating_unknown_block_rejected(self, sim):
        with pytest.raises(BadParametersError):
            sim.terminate_spot_block("i-doesnotexist")

    def test_terminating_regular_instance_as_block_rejected(self, sim):
        instance = sim.run_instances(*MARKET)
        with pytest.raises(BadParametersError):
            sim.terminate_spot_block(instance.instance_id)

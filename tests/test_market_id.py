"""Unit tests for MarketID."""

from repro.core.market_id import MarketID


def make():
    return MarketID("us-east-1d", "c3.2xlarge", "Linux/UNIX")


def test_region_derivation():
    assert make().region == "us-east-1"
    assert MarketID("ap-southeast-2c", "m3.large", "Windows").region == "ap-southeast-2"


def test_family_derivation():
    assert make().family == "c3"


def test_key_matches_simulator_map_order():
    assert make().key == ("us-east-1d", "c3.2xlarge", "Linux/UNIX")


def test_api_args_put_type_first():
    assert make().api_args == ("c3.2xlarge", "us-east-1d", "Linux/UNIX")


def test_same_family():
    a = make()
    b = MarketID("us-east-1a", "c3.8xlarge", "Linux/UNIX")
    c = MarketID("us-east-1d", "m3.large", "Linux/UNIX")
    assert a.same_family(b)
    assert not a.same_family(c)


def test_hashable_and_ordered():
    markets = {make(), make()}
    assert len(markets) == 1
    assert sorted([MarketID("b", "t", "p"), MarketID("a", "t", "p")])[0].availability_zone == "a"


def test_str_is_readable():
    assert str(make()) == "us-east-1d/c3.2xlarge/Linux/UNIX"

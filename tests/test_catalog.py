"""Unit tests for the platform catalog."""

import pytest

from repro.ec2.catalog import (
    PRODUCT_LINUX,
    PRODUCT_WINDOWS,
    default_catalog,
    small_catalog,
)


@pytest.fixture(scope="module")
def catalog():
    return default_catalog()


def test_nine_regions(catalog):
    assert len(catalog.regions) == 9


def test_twenty_six_availability_zones(catalog):
    zones = sum(len(r.availability_zones) for r in catalog.regions.values())
    assert zones == 26


def test_market_count_is_paper_scale(catalog):
    # The paper monitored ~4500 markets; the catalog is the same order.
    assert 3500 <= catalog.market_count() <= 5500


def test_region_of_zone_roundtrip(catalog):
    assert catalog.region_of_zone("us-east-1d") == "us-east-1"
    assert catalog.region_of_zone("sa-east-1b") == "sa-east-1"


def test_unknown_zone_rejected(catalog):
    with pytest.raises(KeyError):
        catalog.region_of_zone("mars-central-1a")
    with pytest.raises(KeyError):
        catalog.region_of_zone("us-east-1z")  # region exists, zone doesn't


def test_family_sizes_double(catalog):
    """Within a family, consecutive sizes differ by a factor of two
    (the bin-packing observation from Section 3.2.1)."""
    m3 = catalog.types_in_family("m3")
    units = [t.units for t in m3]
    assert units == sorted(units)
    for small, large in zip(units, units[1:]):
        assert large == 2 * small


def test_windows_costs_more_than_linux(catalog):
    linux = catalog.on_demand_price("c3.2xlarge", "us-east-1", PRODUCT_LINUX)
    windows = catalog.on_demand_price("c3.2xlarge", "us-east-1", PRODUCT_WINDOWS)
    assert windows > linux


def test_sa_east_priced_above_us_east(catalog):
    cheap = catalog.on_demand_price("c3.large", "us-east-1")
    dear = catalog.on_demand_price("c3.large", "sa-east-1")
    assert dear > cheap


def test_max_bid_is_ten_x(catalog):
    od = catalog.on_demand_price("m3.large", "us-east-1")
    assert catalog.max_bid("m3.large", "us-east-1") == pytest.approx(10 * od)


def test_unknown_product_rejected(catalog):
    with pytest.raises(KeyError):
        catalog.on_demand_price("m3.large", "us-east-1", "BeOS")


def test_iter_markets_covers_all(catalog):
    count = sum(1 for _ in catalog.iter_markets())
    assert count == catalog.market_count()


def test_small_catalog_subsets():
    cat = small_catalog(regions=["us-east-1"], families=["c3"])
    assert set(cat.regions) == {"us-east-1"}
    assert cat.families() == ["c3"]


def test_small_catalog_unknown_region_rejected():
    with pytest.raises(KeyError):
        small_catalog(regions=["atlantis-1"])


def test_small_catalog_unknown_family_rejected():
    with pytest.raises(KeyError):
        small_catalog(families=["z9"])


def test_c3_2xlarge_price_matches_2015_sheet(catalog):
    # Figure 2.1's horizontal line: c3.2xlarge on-demand = $0.42/hour.
    assert catalog.on_demand_price("c3.2xlarge", "us-east-1") == pytest.approx(0.42)

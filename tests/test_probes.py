"""Tests for the five probe functions against a live simulator."""

import pytest

from repro.common import errors as err
from repro.common.rng import RngStream
from repro.core.budget import BudgetController
from repro.core.config import SpotLightConfig
from repro.core.database import ProbeDatabase
from repro.core.market_id import MarketID
from repro.core.probes import ProbeExecutor
from repro.providers.simulator import SimulatorProvider
from repro.core.records import OUTCOME_FULFILLED, ProbeKind, ProbeTrigger
from repro.ec2.catalog import small_catalog
from repro.ec2.platform import EC2Simulator, FleetConfig

MARKET = MarketID("us-east-1a", "m3.large", "Linux/UNIX")


@pytest.fixture()
def setup():
    catalog = small_catalog(regions=["us-east-1"], families=["m3"])
    sim = EC2Simulator(FleetConfig(catalog=catalog, seed=3, tick_interval=300.0))
    sim.run_for(600.0)
    db = ProbeDatabase()
    budget = BudgetController(budget=1e9, window=30 * 86400.0)
    config = SpotLightConfig()
    executor = ProbeExecutor(SimulatorProvider(sim), db, budget, config, RngStream(1, "t"))
    return sim, db, budget, executor


class TestRequestOnDemand:
    def test_fulfilled_probe_terminates_instance_and_charges(self, setup):
        sim, db, budget, executor = setup
        record = executor.request_on_demand(MARKET, ProbeTrigger.MANUAL)
        assert record.outcome == OUTCOME_FULFILLED
        assert record.cost == pytest.approx(sim.on_demand_price(*MARKET.api_args))
        instance = sim.instances[record.request_id]
        assert instance.state.value in ("shutting-down", "terminated")
        assert budget.total_spent() == record.cost

    def test_rejected_probe_logs_error_code(self, setup):
        sim, db, budget, executor = setup
        pool = sim.pools[("us-east-1a", "m3")]
        pool.od_type_bounds["m3.large"] = pool.od_units_by_type.get("m3.large", 0)
        record = executor.request_on_demand(MARKET, ProbeTrigger.PRICE_SPIKE, 2.0)
        assert record.outcome == err.INSUFFICIENT_INSTANCE_CAPACITY
        assert record.cost == 0.0  # rejected probes are free
        assert record.spike_multiple == 2.0

    def test_budget_suppression_returns_none(self, setup):
        sim, db, _, executor = setup
        tight = BudgetController(budget=0.001, window=86400.0)
        executor._budget = tight
        assert executor.request_on_demand(MARKET, ProbeTrigger.MANUAL) is None
        assert len(db) == 0

    def test_probe_does_not_leak_instance_slots(self, setup):
        sim, db, budget, executor = setup
        limits = sim.limits["us-east-1"]
        for _ in range(5):
            executor.request_on_demand(MARKET, ProbeTrigger.MANUAL)
            sim.run_for(120.0)
        assert limits.running_on_demand == 0


class TestCheckCapacity:
    def test_probe_at_current_price_outcome_logged(self, setup):
        sim, db, budget, executor = setup
        record = executor.check_capacity(MARKET, ProbeTrigger.PERIODIC)
        assert record.kind is ProbeKind.SPOT
        assert record.outcome in (
            OUTCOME_FULFILLED,
            err.STATUS_PRICE_TOO_LOW,
            err.STATUS_CAPACITY_OVERSUBSCRIBED,
            err.STATUS_CAPACITY_NOT_AVAILABLE,
        )

    def test_high_bid_fulfils_and_cleans_up(self, setup):
        sim, db, budget, executor = setup
        od = executor.on_demand_price(MARKET)
        record = executor.check_capacity(
            MARKET, ProbeTrigger.PERIODIC, bid_price=od * 5
        )
        assert record.outcome == OUTCOME_FULFILLED
        request = sim.spot_requests[record.request_id]
        assert request.status == err.STATUS_TERMINATED_BY_USER
        assert sim.limits["us-east-1"].open_spot_requests == 0

    def test_keep_instance_for_revocation_watch(self, setup):
        sim, db, budget, executor = setup
        od = executor.on_demand_price(MARKET)
        record = executor.check_capacity(
            MARKET, ProbeTrigger.REVOCATION, bid_price=od * 5, keep_instance=True
        )
        assert record.outcome == OUTCOME_FULFILLED
        assert sim.spot_requests[record.request_id].is_active

    def test_low_bid_held_and_cancelled(self, setup):
        sim, db, budget, executor = setup
        record = executor.check_capacity(
            MARKET, ProbeTrigger.PERIODIC, bid_price=0.0001
        )
        assert record.rejected
        request = sim.spot_requests[record.request_id]
        assert request.state.value in ("cancelled", "failed")


class TestBidSpread:
    def test_finds_intrinsic_price_within_request_cap(self, setup):
        sim, db, budget, executor = setup
        result = executor.bid_spread(MARKET)
        assert result.requests_used <= SpotLightConfig().bid_spread_max_requests
        if result.intrinsic_price is not None:
            # Intrinsic price is never below the published price.
            assert result.intrinsic_price >= result.published_price * 0.99
            assert result.premium >= -0.01

    def test_uses_few_requests_in_calm_market(self, setup):
        sim, db, budget, executor = setup
        result = executor.bid_spread(MARKET)
        # The paper: 2-3 requests on average, max 6.
        assert 1 <= result.requests_used <= 6


class TestRevocationWatch:
    def test_watch_and_stop(self, setup):
        sim, db, budget, executor = setup
        od = executor.on_demand_price(MARKET)
        request_id = executor.check_capacity(
            MARKET, ProbeTrigger.REVOCATION, bid_price=od * 5, keep_instance=True
        ).request_id
        assert executor.poll_revocation(request_id) is None
        executor.stop_revocation_watch(request_id)
        assert sim.spot_requests[request_id].status == err.STATUS_TERMINATED_BY_USER

    def test_watched_instance_gets_revoked_on_spike(self, setup):
        sim, db, budget, executor = setup
        price = executor.published_spot_price(MARKET)
        record = executor.check_capacity(
            MARKET, ProbeTrigger.REVOCATION, bid_price=price * 1.2,
            keep_instance=True,
        )
        if record.outcome != OUTCOME_FULFILLED:
            pytest.skip("market did not fulfil at the published price")
        market = sim.markets[MARKET.key]
        from repro.ec2.market import Bid

        market.set_bids([Bid(market.max_bid * 0.9, 1000)])
        market.clear(sim.now, 1)
        sim._revoke_outbid_instances(market)
        sim.run_for(180.0)
        ttr = executor.poll_revocation(record.request_id)
        assert ttr is not None and ttr > 0

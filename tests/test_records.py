"""Unit tests for probe/price record types."""

from repro.core.market_id import MarketID
from repro.core.records import (
    OUTCOME_FULFILLED,
    ProbeKind,
    ProbeRecord,
    ProbeTrigger,
    UnavailabilityPeriod,
)

MARKET = MarketID("us-east-1a", "m3.large", "Linux/UNIX")


def make_record(outcome=OUTCOME_FULFILLED):
    return ProbeRecord(
        time=100.0,
        market=MARKET,
        kind=ProbeKind.ON_DEMAND,
        trigger=ProbeTrigger.PRICE_SPIKE,
        outcome=outcome,
        spike_multiple=2.5,
        cost=0.133,
        request_id="i-1",
    )


def test_rejected_flag():
    assert not make_record().rejected
    assert make_record("InsufficientInstanceCapacity").rejected


def test_row_roundtrip():
    record = make_record("InsufficientInstanceCapacity")
    assert ProbeRecord.from_row(record.to_row()) == record


def test_row_roundtrip_through_strings():
    """CSV readers hand back strings; from_row must coerce."""
    record = make_record()
    row = {k: str(v) for k, v in record.to_row().items()}
    assert ProbeRecord.from_row(row) == record


def test_unavailability_period_duration():
    period = UnavailabilityPeriod(
        MARKET, ProbeKind.ON_DEMAND, start=100.0, end=400.0, probe_count=3
    )
    assert period.duration == 300.0
    assert period.end_observed

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_trace_command_writes_csv(tmp_path, capsys):
    out = tmp_path / "trace.csv"
    code = main([
        "trace", "--profile", "m3.medium-us-west-2a", "--days", "2",
        "--seed", "3", "-o", str(out),
    ])
    assert code == 0
    assert out.exists()
    assert "wrote" in capsys.readouterr().out


def test_trace_unknown_profile_raises():
    with pytest.raises(KeyError):
        main(["trace", "--profile", "nope", "--days", "1"])


def test_study_command_runs_and_exports(tmp_path, capsys):
    out = tmp_path / "probes.csv"
    report = tmp_path / "report.md"
    code = main([
        "study", "--days", "0.5", "--seed", "3",
        "--regions", "sa-east-1", "--families", "c3",
        "--export", str(out), "--report", str(report),
    ])
    assert code == 0
    captured = capsys.readouterr().out
    assert "probes issued" in captured
    assert out.exists()
    assert "# SpotLight availability study" in report.read_text()


def test_figures_command_prints_series(capsys):
    code = main([
        "figures", "--days", "0.5", "--seed", "3",
        "--regions", "sa-east-1", "--families", "c3",
    ])
    assert code == 0
    captured = capsys.readouterr().out
    assert "[Fig 5.4]" in captured
    assert "[Fig 5.9]" in captured


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_threshold_and_sampling_flags_accepted():
    args = build_parser().parse_args(
        ["study", "--threshold", "2.0", "--sampling", "0.5"]
    )
    assert args.threshold == 2.0
    assert args.sampling == 0.5

"""Tests for the command-line interface."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_trace_command_writes_csv(tmp_path, capsys):
    out = tmp_path / "trace.csv"
    code = main([
        "trace", "--profile", "m3.medium-us-west-2a", "--days", "2",
        "--seed", "3", "-o", str(out),
    ])
    assert code == 0
    assert out.exists()
    assert "wrote" in capsys.readouterr().out


def test_trace_unknown_profile_raises():
    with pytest.raises(KeyError):
        main(["trace", "--profile", "nope", "--days", "1"])


def test_study_command_runs_and_exports(tmp_path, capsys):
    out = tmp_path / "probes.csv"
    report = tmp_path / "report.md"
    code = main([
        "study", "--days", "0.5", "--seed", "3",
        "--regions", "sa-east-1", "--families", "c3",
        "--export", str(out), "--report", str(report),
    ])
    assert code == 0
    captured = capsys.readouterr().out
    assert "probes issued" in captured
    assert out.exists()
    assert "# SpotLight availability study" in report.read_text()


def test_figures_command_prints_series(capsys):
    code = main([
        "figures", "--days", "0.5", "--seed", "3",
        "--regions", "sa-east-1", "--families", "c3",
    ])
    assert code == 0
    captured = capsys.readouterr().out
    assert "[Fig 5.4]" in captured
    assert "[Fig 5.9]" in captured


def test_study_snapshot_then_replay_then_query(tmp_path, capsys):
    """The layered workflow end-to-end: record a study with a snapshot,
    replay its exported prices with no simulator, and serve the flagship
    query from the snapshot in a *separate process*."""
    snapshot = tmp_path / "state"
    prices = tmp_path / "prices.csv"
    code = main([
        "study", "--days", "0.5", "--seed", "3",
        "--regions", "sa-east-1", "--families", "c3",
        "--snapshot", str(snapshot),
    ])
    assert code == 0
    assert (snapshot / "manifest.json").exists()
    captured = capsys.readouterr().out
    assert "saved datastore snapshot" in captured

    # Export the recorded prices and replay them simulator-free.
    from repro.core.datastore import SnapshotDatastore

    SnapshotDatastore(snapshot, append_log=False).export_prices_csv(prices)
    code = main(["replay", "--prices", str(prices), "--top", "3"])
    assert code == 0
    replay_out = capsys.readouterr().out
    assert "passive mode:           True" in replay_out
    assert "top 3 most stable markets" in replay_out

    # A second process reloads the snapshot and answers the query.
    in_process = main([
        "query", "--snapshot", str(snapshot),
        "--name", "top-stable-markets", "--params", '{"n": 5}',
    ])
    assert in_process == 0
    in_process_response = json.loads(capsys.readouterr().out)

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, "-m", "repro", "query", "--snapshot", str(snapshot),
         "--name", "top-stable-markets", "--params", '{"n": 5}'],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    subprocess_response = json.loads(result.stdout)
    assert subprocess_response["ok"]
    assert subprocess_response["result"] == in_process_response["result"]


def test_query_command_reports_schema_errors(tmp_path, capsys):
    from repro.core.datastore import SnapshotDatastore

    snapshot = tmp_path / "state"
    SnapshotDatastore(snapshot).save()  # a valid (empty) snapshot
    code = main(["query", "--snapshot", str(snapshot), "--name", "bogus"])
    assert code == 1
    response = json.loads(capsys.readouterr().out)
    assert response["error"]["code"] == "unknown-query"

    code = main(["query", "--snapshot", str(snapshot), "--params", "{not json"])
    assert code == 2


def test_query_stats_exposes_cache_counters(tmp_path, capsys):
    """--stats makes cache behavior observable without the server."""
    from repro.core.datastore import SnapshotDatastore

    snapshot = tmp_path / "state"
    SnapshotDatastore(snapshot).save()  # a valid (empty) snapshot
    code = main([
        "query", "--snapshot", str(snapshot),
        "--name", "top-stable-markets", "--params", '{"n": 3}',
        "--repeat", "3", "--stats",
    ])
    assert code == 0
    response = json.loads(capsys.readouterr().out)
    assert response["ok"]
    stats = response["frontend_stats"]
    assert stats["misses"] == 1
    assert stats["hits"] == 2  # the two repeats were cache hits
    assert stats["entries"] == 1
    assert "expirations" in stats and "evictions" in stats


def test_serve_command_end_to_end(tmp_path):
    """`repro serve` on a snapshot answers /healthz and /query over
    HTTP, matches the in-process `repro query` answer, and shuts down
    cleanly on SIGINT."""
    import re
    import signal

    from repro.client import SpotLightClient

    snapshot = tmp_path / "state"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    subprocess.run(
        [sys.executable, "-m", "repro", "study", "--days", "0.25",
         "--seed", "3", "--regions", "sa-east-1", "--families", "c3",
         "--snapshot", str(snapshot)],
        check=True, capture_output=True, env=env, timeout=300,
    )

    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--snapshot", str(snapshot), "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    try:
        line = server.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", line)
        assert match, f"no address announced: {line!r}"
        host, port = match.group(1), int(match.group(2))

        with SpotLightClient(host, port, timeout=30.0) as client:
            assert client.healthz()["status"] == "serving"
            served = client.query("top-stable-markets", {"n": 5})
            stats = client.stats()
            assert stats["endpoints"]["/query"]["requests"] == 1

        # The wire answer matches the in-process `repro query` answer.
        direct = subprocess.run(
            [sys.executable, "-m", "repro", "query", "--snapshot",
             str(snapshot), "--name", "top-stable-markets",
             "--params", '{"n": 5, "bid_multiple": 1.0, "start": 0.0, '
                         '"end": null, "region": null}'],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert direct.returncode == 0, direct.stderr
        assert json.loads(direct.stdout)["result"] == served

        server.send_signal(signal.SIGINT)
        code = server.wait(timeout=30)
        assert code == 0, server.stderr.read()
        tail = server.stdout.read()
        assert "shutdown complete" in tail
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)


def test_query_refuses_a_missing_snapshot(tmp_path, capsys):
    code = main(["query", "--snapshot", str(tmp_path / "typo")])
    assert code == 2
    assert "no datastore snapshot" in capsys.readouterr().err
    assert not (tmp_path / "typo").exists()


def test_study_refuses_an_occupied_snapshot_dir(tmp_path, capsys):
    snapshot = tmp_path / "state"
    args = ["study", "--days", "0.1", "--seed", "3",
            "--regions", "sa-east-1", "--families", "c3",
            "--snapshot", str(snapshot)]
    assert main(args) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit, match="already holds a recording"):
        main(args)


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_threshold_and_sampling_flags_accepted():
    args = build_parser().parse_args(
        ["study", "--threshold", "2.0", "--sampling", "0.5"]
    )
    assert args.threshold == 2.0
    assert args.sampling == 0.5

"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.common.clock import SimClock
from repro.common.events import EventQueue


@pytest.fixture()
def queue():
    return EventQueue(SimClock())


def test_events_fire_in_time_order(queue):
    order = []
    queue.schedule_at(20.0, lambda: order.append("b"))
    queue.schedule_at(10.0, lambda: order.append("a"))
    queue.schedule_at(30.0, lambda: order.append("c"))
    queue.run_all()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order(queue):
    order = []
    for label in "abc":
        queue.schedule_at(5.0, lambda lbl=label: order.append(lbl))
    queue.run_all()
    assert order == ["a", "b", "c"]


def test_step_advances_clock(queue):
    queue.schedule_at(42.0, lambda: None)
    queue.step()
    assert queue.clock.now == 42.0


def test_schedule_in_is_relative(queue):
    queue.clock.advance_to(100.0)
    event = queue.schedule_in(5.0, lambda: None)
    assert event.time == 105.0


def test_scheduling_in_the_past_rejected(queue):
    queue.clock.advance_to(10.0)
    with pytest.raises(ValueError):
        queue.schedule_at(5.0, lambda: None)


def test_negative_delay_rejected(queue):
    with pytest.raises(ValueError):
        queue.schedule_in(-1.0, lambda: None)


def test_cancelled_events_do_not_fire(queue):
    fired = []
    event = queue.schedule_at(10.0, lambda: fired.append(1))
    event.cancel()
    queue.run_all()
    assert fired == []


def test_run_until_executes_only_due_events(queue):
    fired = []
    queue.schedule_at(10.0, lambda: fired.append("early"))
    queue.schedule_at(100.0, lambda: fired.append("late"))
    executed = queue.run_until(50.0)
    assert executed == 1
    assert fired == ["early"]
    assert queue.clock.now == 50.0


def test_run_until_advances_clock_even_without_events(queue):
    queue.run_until(77.0)
    assert queue.clock.now == 77.0


def test_events_can_schedule_more_events(queue):
    fired = []

    def chain():
        fired.append(queue.clock.now)
        if len(fired) < 3:
            queue.schedule_in(10.0, chain)

    queue.schedule_at(0.0, chain)
    queue.run_all()
    assert fired == [0.0, 10.0, 20.0]


def test_len_counts_live_events(queue):
    e1 = queue.schedule_at(1.0, lambda: None)
    queue.schedule_at(2.0, lambda: None)
    assert len(queue) == 2
    e1.cancel()
    assert len(queue) == 1


def test_len_is_constant_time_bookkeeping(queue):
    """len() comes from a live counter, not a heap scan: it stays
    correct through schedule, double-cancel, pop, and post-pop cancel."""
    events = [queue.schedule_at(float(i), lambda: None) for i in range(10)]
    assert len(queue) == 10
    events[3].cancel()
    events[3].cancel()  # idempotent
    assert len(queue) == 9
    queue.step()  # pops event 0
    assert len(queue) == 8
    events[0].cancel()  # cancelling an already-fired event is a no-op
    assert len(queue) == 8
    queue.run_all()
    assert len(queue) == 0


def test_heavy_cancellation_compacts_heap(queue):
    """Mass cancellation must not leave the heap full of dead entries."""
    events = [queue.schedule_at(float(i), lambda: None) for i in range(500)]
    for event in events[:499]:
        event.cancel()
    assert len(queue) == 1
    assert len(queue._heap) < 500  # compaction kicked in
    assert queue.peek_time() == 499.0
    assert queue.run_all() == 1


def test_peek_time_skips_cancelled(queue):
    e1 = queue.schedule_at(1.0, lambda: None)
    queue.schedule_at(2.0, lambda: None)
    e1.cancel()
    assert queue.peek_time() == 2.0


def test_run_all_guards_against_runaway(queue):
    def forever():
        queue.schedule_in(1.0, forever)

    queue.schedule_at(0.0, forever)
    with pytest.raises(RuntimeError):
        queue.run_all(max_events=100)

"""Tests for the wire hot path: the serialized-bytes response cache,
batch queries, and conditional (ETag/304) requests.

Byte-identity matters here: the wire cache serves stored bytes, the
batch endpoint concatenates per-query bytes, and a 304 stands in for a
body — each test pins the bytes, not just the decoded values.  The
frontends use a fixed clock so ``served_at`` is deterministic and two
servers over the same data answer byte-identically.
"""

from __future__ import annotations

import collections
import json
import socket
import time

import pytest

from repro.client import QueryError, SpotLightClient, ThrottledError
from repro.core.database import ProbeDatabase
from repro.core.frontend import (
    QueryFrontend,
    QueryRequest,
    assemble_batch_body,
    wire_encode,
)
from repro.core.market_id import MarketID
from repro.core.query import SpotLightQuery
from repro.core.records import (
    OUTCOME_FULFILLED,
    PriceRecord,
    ProbeKind,
    ProbeRecord,
    ProbeTrigger,
)
from repro.ec2.catalog import default_catalog
from repro.server import MAX_BATCH_QUERIES, BackgroundServer

REJ = "InsufficientInstanceCapacity"

MARKETS = [
    MarketID("us-east-1a", "m3.large", "Linux/UNIX"),
    MarketID("us-east-1b", "m3.large", "Linux/UNIX"),
    MarketID("us-east-1a", "c3.large", "Linux/UNIX"),
]


def build_database() -> ProbeDatabase:
    db = ProbeDatabase()
    for index, market in enumerate(MARKETS):
        base = 0.01 * (index + 1)
        for step in range(30):
            t = 250.0 * step
            price = base * (8.0 if (step + index) % 7 == 0 else 1.0)
            db.insert_price(PriceRecord(t, market, price))
        for t, outcome in [
            (0.0, OUTCOME_FULFILLED),
            (500.0 + 100 * index, REJ),
            (900.0 + 100 * index, OUTCOME_FULFILLED),
        ]:
            db.insert_probe(
                ProbeRecord(
                    time=t, market=market, kind=ProbeKind.ON_DEMAND,
                    trigger=ProbeTrigger.RECOVERY, outcome=outcome,
                )
            )
    return db


@pytest.fixture(scope="module")
def database() -> ProbeDatabase:
    return build_database()


def fixed_clock_frontend(database: ProbeDatabase) -> QueryFrontend:
    """A frontend whose responses are deterministic (``served_at`` is
    always 0.0), so byte-level comparisons hold across processes."""
    return QueryFrontend(
        SpotLightQuery(database, default_catalog()), clock=lambda: 0.0
    )


class RawConnection:
    """A keep-alive socket speaking just enough HTTP/1.1 to capture the
    server's exact response bytes (the SDK decodes; these tests must
    not)."""

    def __init__(self, address: tuple[str, int]) -> None:
        self.sock = socket.create_connection(address, timeout=10.0)
        self.rfile = self.sock.makefile("rb")

    def request(
        self, method: str, path: str, body: bytes = b"", extra: bytes = b""
    ) -> tuple[int, dict[str, str], bytes]:
        self.sock.sendall(
            f"{method} {path} HTTP/1.1\r\n"
            f"Content-Length: {len(body)}\r\n".encode()
            + extra + b"\r\n" + body
        )
        status = int(self.rfile.readline().split()[1])
        headers: dict[str, str] = {}
        while True:
            line = self.rfile.readline()
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        payload = self.rfile.read(length) if length else b""
        return status, headers, payload

    def close(self) -> None:
        self.rfile.close()
        self.sock.close()


def post_query(conn: RawConnection, request: dict, extra: bytes = b""):
    return conn.request("POST", "/query", json.dumps(request).encode(), extra)


WORKLOAD = [
    {"query": "top-stable-markets", "params": {"n": 3, "bid_multiple": 1.0}},
    {"query": "mean-price", "params": {"market": str(MARKETS[0])}},
    # A duplicate: must come back as the *cached* variant, exactly as a
    # repeated single query would.
    {"query": "top-stable-markets", "params": {"n": 3, "bid_multiple": 1.0}},
    {"query": "availability",
     "params": {"market": str(MARKETS[1]), "kind": "on-demand"}},
    # An error mid-batch must not cost the other answers.
    {"query": "no-such-query", "params": {}},
    {"query": "rejection-rate", "params": {}},
]

#: Five *distinct* cold stackable point queries (>= STACKED_BATCH_MIN)
#: plus the riders the kernel must leave untouched: a duplicate, a
#: non-stackable query, and a stackable query with broken params.
STACKED_WORKLOAD = [
    {"query": "mean-price", "params": {"market": str(MARKETS[0])}},
    {"query": "mean-price", "params": {"market": str(MARKETS[1])}},
    {"query": "mean-price", "params": {"market": str(MARKETS[2])}},
    {"query": "availability-at-bid",
     "params": {"market": str(MARKETS[0]), "bid_price": 0.05}},
    {"query": "mean-time-to-revocation",
     "params": {"market": str(MARKETS[1]), "bid_price": 0.05}},
    # A duplicate: must come back as the cached follower variant.
    {"query": "mean-price", "params": {"market": str(MARKETS[0])}},
    {"query": "rejection-rate", "params": {}},
    # Missing bid_price: the per-query path renders the error bytes.
    {"query": "availability-at-bid",
     "params": {"market": str(MARKETS[2])}},
]


def counting_frontend(database: ProbeDatabase):
    """A fixed-clock frontend over an engine proxy that counts every
    method call (including ``point_stats_batch``)."""

    class CountingEngine:
        def __init__(self, engine: SpotLightQuery) -> None:
            self._engine = engine
            self.calls: collections.Counter = collections.Counter()

        def __getattr__(self, name: str):
            attr = getattr(self._engine, name)
            if not callable(attr):
                return attr

            def counted(*args, **kwargs):
                self.calls[name] += 1
                return attr(*args, **kwargs)

            return counted

    engine = CountingEngine(SpotLightQuery(database, default_catalog()))
    return engine, QueryFrontend(engine, clock=lambda: 0.0)


class TestByteCache:
    def test_miss_bytes_round_trip_through_canonical_encoding(self, database):
        frontend = fixed_clock_frontend(database)
        wire = frontend.handle_wire(
            QueryRequest("rejection-rate", {})
        )
        assert wire.status == 200
        assert not wire.cached
        # The served bytes ARE the canonical encoding of their decode.
        assert wire.body == wire_encode(json.loads(wire.body))
        assert json.loads(wire.body)["cached"] is False

    def test_hit_serves_stored_bytes_identical_to_fresh_encoding(
        self, database
    ):
        frontend = fixed_clock_frontend(database)
        request = QueryRequest("rejection-rate", {})
        first = frontend.handle_wire(request)
        second = frontend.handle_wire(QueryRequest("rejection-rate", {}))
        assert second.cached
        assert second.body == wire_encode(
            {**json.loads(first.body), "cached": True}
        )
        assert second.body is frontend.handle_wire(request).body  # same object
        stats = frontend.stats()
        assert stats["wire_misses"] == 1
        assert stats["wire_hits"] == 2
        assert stats["wire_entries"] == 1

    def test_error_responses_are_not_cached(self, database):
        frontend = fixed_clock_frontend(database)
        for _ in range(2):
            wire = frontend.handle_wire(QueryRequest("no-such-query", {}))
            assert wire.status == 400
            assert wire.etag is None
        assert frontend.stats()["wire_entries"] == 0
        assert frontend.stats()["wire_misses"] == 2

    def test_invalidate_clears_wire_cache_and_changes_etag(self, database):
        frontend = fixed_clock_frontend(database)
        before = frontend.handle_wire(QueryRequest("rejection-rate", {}))
        frontend.invalidate()
        assert frontend.stats()["wire_entries"] == 0
        after = frontend.handle_wire(QueryRequest("rejection-rate", {}))
        assert not after.cached  # recomputed, not served from bytes
        # Same result, but the generation bump forces a fresh tag.
        assert before.etag != after.etag

    def test_etag_stable_across_ttl_recompute_of_identical_result(
        self, database
    ):
        now = {"t": 0.0}
        frontend = QueryFrontend(
            SpotLightQuery(database, default_catalog()),
            clock=lambda: now["t"], cache_ttl=10.0,
        )
        first = frontend.handle_wire(QueryRequest("rejection-rate", {}))
        now["t"] = 100.0  # everything expired; same underlying data
        second = frontend.handle_wire(QueryRequest("rejection-rate", {}))
        assert not second.cached
        assert first.etag == second.etag  # content hash, not timestamps


class TestExpiryOrderedEviction:
    def test_refreshed_entry_moves_to_the_back_of_the_eviction_order(self):
        """A refresh re-inserts at the end of the expiry-ordered dict;
        capacity eviction must then drop the *other* (older) key."""
        now = {"t": 0.0}

        class Engine:
            def prime(self) -> None:
                pass

            def rejection_rate(self, market=None, kind=None) -> float:
                return now["t"]

        frontend = QueryFrontend(
            Engine(), clock=lambda: now["t"], cache_ttl=5.0, max_entries=2
        )

        def rate(market: str) -> float:
            return frontend.rejection_rate(market=MarketID("z", market, "L"))

        rate("a")            # a @ t=0
        now["t"] = 1.0
        rate("b")            # b @ t=1; cache full
        now["t"] = 6.0       # a, b both expired
        rate("a")            # a recomputed, re-inserted @ t=6
        now["t"] = 7.0
        rate("c")            # room is made: b expired -> expiration
        assert frontend.stats()["expirations"] == 1
        # a (fresh, t=6) must have survived the insert of c.
        assert rate("a") == 6.0
        assert frontend.stats()["hits"] == 1

    def test_capacity_eviction_drops_oldest_live_entry(self):
        class Engine:
            def rejection_rate(self, market=None, kind=None) -> float:
                return 1.0

        frontend = QueryFrontend(
            Engine(), clock=lambda: 0.0, cache_ttl=100.0, max_entries=2
        )
        for market in ("a", "b", "c"):
            frontend.rejection_rate(market=MarketID("z", market, "L"))
        stats = frontend.stats()
        assert stats["evictions"] == 1
        assert stats["expirations"] == 0
        assert stats["entries"] == 2


class TestBatch:
    def test_batch_is_byte_identical_to_single_query_sequence(self, database):
        """The acceptance criterion, literally: one /batch response
        carries exactly the bytes that the same requests issued as
        sequential /query calls produce — duplicates, errors and all —
        measured against two independent servers over the same data."""
        singles_frontend = fixed_clock_frontend(database)
        batch_frontend = fixed_clock_frontend(database)
        with BackgroundServer(singles_frontend) as single_server, \
                BackgroundServer(batch_frontend) as batch_server:
            conn = RawConnection(single_server.address)
            single_bodies = []
            for request in WORKLOAD:
                _, _, payload = post_query(conn, request)
                single_bodies.append(payload)
            conn.close()

            conn = RawConnection(batch_server.address)
            status, _, batch_body = conn.request(
                "POST", "/batch",
                json.dumps({"queries": WORKLOAD}).encode(),
            )
            conn.close()
        assert status == 200
        assert batch_body == assemble_batch_body(single_bodies)
        decoded = json.loads(batch_body)
        assert decoded["ok"] is True
        assert decoded["count"] == len(WORKLOAD)
        assert [sub.get("ok") for sub in decoded["results"]] == [
            True, True, True, True, False, True,
        ]
        assert decoded["results"][2]["cached"] is True  # the duplicate

    def test_client_batch_query_matches_single_queries(self, database):
        frontend = fixed_clock_frontend(database)
        requests = [r for r in WORKLOAD if r["query"] != "no-such-query"]
        with BackgroundServer(frontend) as background:
            with SpotLightClient(*background.address) as client:
                batched = client.batch_query(requests)
                singles = [
                    client.query(r["query"], r["params"]) for r in requests
                ]
        assert json.dumps(batched, sort_keys=True) == json.dumps(
            singles, sort_keys=True
        )

    def test_client_batch_query_raises_on_failed_subquery(self, database):
        frontend = fixed_clock_frontend(database)
        with BackgroundServer(frontend) as background:
            with SpotLightClient(*background.address) as client:
                responses = client.batch_response(WORKLOAD)
                assert responses[4]["ok"] is False
                with pytest.raises(QueryError) as excinfo:
                    client.batch_query(WORKLOAD)
                assert excinfo.value.code == "unknown-query"

    def test_batch_consumes_one_admission_token_per_subquery(self, database):
        frontend = fixed_clock_frontend(database)
        with BackgroundServer(
            frontend, rate_per_second=1.0, burst=4.0
        ) as background:
            with SpotLightClient(*background.address) as client:
                request = {"query": "rejection-rate", "params": {}}
                with pytest.raises(ThrottledError):
                    client.batch_response([request] * 6)  # > burst of 4
                # A batch within the burst is admitted.
                assert len(client.batch_response([request] * 3)) == 3

    def test_batch_size_cap_is_http_400(self, database):
        frontend = fixed_clock_frontend(database)
        with BackgroundServer(frontend) as background:
            with SpotLightClient(*background.address) as client:
                oversized = [{"query": "rejection-rate", "params": {}}] * (
                    MAX_BATCH_QUERIES + 1
                )
                with pytest.raises(QueryError) as excinfo:
                    client.batch_response(oversized)
                assert excinfo.value.status == 400

    def test_identical_cold_subqueries_coalesce_to_one_engine_call(
        self, database
    ):
        """K identical sub-queries in one batch: one engine call, the
        followers byte-identical to what repeats would have seen."""

        class SlowCountingEngine:
            def __init__(self, engine: SpotLightQuery) -> None:
                self._engine = engine
                self.calls: collections.Counter = collections.Counter()

            def __getattr__(self, name: str):
                attr = getattr(self._engine, name)
                if not callable(attr):
                    return attr

                def slow(*args, **kwargs):
                    self.calls[name] += 1
                    time.sleep(0.3)
                    return attr(*args, **kwargs)

                return slow

        engine = SlowCountingEngine(SpotLightQuery(database, default_catalog()))
        frontend = QueryFrontend(engine, clock=lambda: 0.0)
        k = 8
        request = {"query": "mean-price", "params": {"market": str(MARKETS[0])}}
        with BackgroundServer(frontend) as background:
            with SpotLightClient(*background.address) as client:
                results = client.batch_response([request] * k)
            stats = background.server.stats()
        assert engine.calls["mean_price"] == 1  # the whole point
        assert stats["coalesced"] == k - 1
        assert stats["batch_queries"] == k
        assert results[0]["cached"] is False
        assert all(sub["cached"] for sub in results[1:])
        # Followers carry the leader's answer, byte-for-byte.
        assert len({json.dumps(sub, sort_keys=True)
                    for sub in results[1:]}) == 1

    def test_stacked_cold_batch_is_byte_identical_to_single_sequence(
        self, database
    ):
        """A cold batch with enough distinct stackable point queries is
        answered by the stacked read-index kernel — and still produces
        exactly the bytes the per-query path would have."""
        with BackgroundServer(fixed_clock_frontend(database)) as singles, \
                BackgroundServer(fixed_clock_frontend(database)) as batched:
            conn = RawConnection(singles.address)
            single_bodies = [
                post_query(conn, request)[2]
                for request in STACKED_WORKLOAD
            ]
            conn.close()
            conn = RawConnection(batched.address)
            status, _, batch_body = conn.request(
                "POST", "/batch",
                json.dumps({"queries": STACKED_WORKLOAD}).encode(),
            )
            conn.close()
        assert status == 200
        assert batch_body == assemble_batch_body(single_bodies)

    def test_stacked_cold_batch_costs_one_read_index_pass(self, database):
        engine, frontend = counting_frontend(database)
        with BackgroundServer(frontend) as background:
            with SpotLightClient(*background.address) as client:
                results = client.batch_response(STACKED_WORKLOAD)
        # One catalog-wide pass answered every distinct stackable
        # sub-query; the per-market methods never ran.
        assert engine.calls["point_stats_batch"] == 1
        assert engine.calls["mean_price"] == 0
        assert engine.calls["availability_at_bid"] == 0
        assert engine.calls["mean_time_to_revocation"] == 0
        # The non-stackable rider took the normal path.
        assert engine.calls["rejection_rate"] == 1
        assert results[0]["cached"] is False
        assert results[5]["cached"] is True  # the duplicate follows
        assert results[5]["result"] == results[0]["result"]
        assert results[7]["ok"] is False  # the bad-params error survived

    def test_small_stackable_batches_stay_on_the_per_query_path(
        self, database
    ):
        engine, frontend = counting_frontend(database)
        with BackgroundServer(frontend) as background:
            with SpotLightClient(*background.address) as client:
                client.batch_response(STACKED_WORKLOAD[:3])
        # Three distinct stackable queries is below STACKED_BATCH_MIN.
        assert engine.calls["point_stats_batch"] == 0
        assert engine.calls["mean_price"] == 3

    def test_conflicting_bids_for_one_market_force_a_second_pass(
        self, database
    ):
        engine, frontend = counting_frontend(database)
        workload = STACKED_WORKLOAD[:4] + [
            # Same market as the bid-0.05 query, different bid: a layer
            # evaluates one bid per market, so this needs a second pass.
            {"query": "availability-at-bid",
             "params": {"market": str(MARKETS[0]), "bid_price": 0.5}},
        ]
        with BackgroundServer(frontend) as background:
            with SpotLightClient(*background.address) as client:
                results = client.batch_response(workload)
        assert engine.calls["point_stats_batch"] == 2
        assert all(sub["ok"] for sub in results)

    def test_malformed_batch_bodies_are_http_400(self, database):
        frontend = fixed_clock_frontend(database)
        with BackgroundServer(frontend) as background:
            conn = RawConnection(background.address)
            for bad in (b"{not json", b'{"queries": []}', b'{"queries": 3}',
                        b'"just a string"'):
                status, _, payload = conn.request("POST", "/batch", bad)
                assert status == 400, bad
                assert json.loads(payload)["ok"] is False
            conn.close()


class TestConditionalRequests:
    REQUEST = {"query": "rejection-rate", "params": {}}

    def test_if_none_match_roundtrip_is_304_until_invalidation(self, database):
        frontend = fixed_clock_frontend(database)
        with BackgroundServer(frontend) as background:
            conn = RawConnection(background.address)
            status, headers, payload = post_query(conn, self.REQUEST)
            assert status == 200
            etag = headers["etag"]
            assert etag.startswith('"g0-')

            # Conditional repeat: bodyless 304 carrying the same tag.
            match = b"If-None-Match: " + etag.encode() + b"\r\n"
            status, headers, payload = post_query(conn, self.REQUEST, match)
            assert status == 304
            assert payload == b""
            assert headers["etag"] == etag

            # A request without the header still gets the full body.
            status, _, payload = post_query(conn, self.REQUEST)
            assert status == 200
            assert json.loads(payload)["ok"] is True

            # Invalidation: same bytes would answer, but the generation
            # moved — the held tag must stop matching.
            with background.server._frontend_lock:
                frontend.invalidate()
            status, headers, payload = post_query(conn, self.REQUEST, match)
            assert status == 200
            assert json.loads(payload)["ok"] is True
            new_etag = headers["etag"]
            assert new_etag != etag
            assert new_etag.startswith('"g1-')

            stats = background.server.stats()
            assert stats["not_modified"] == 1
            conn.close()

    def test_wrong_etag_gets_full_response(self, database):
        frontend = fixed_clock_frontend(database)
        with BackgroundServer(frontend) as background:
            conn = RawConnection(background.address)
            post_query(conn, self.REQUEST)
            status, _, payload = post_query(
                conn, self.REQUEST, b'If-None-Match: "bogus"\r\n'
            )
            assert status == 200
            assert json.loads(payload)["ok"] is True
            assert background.server.stats()["not_modified"] == 0
            conn.close()

    def test_if_none_match_list_and_star_match(self, database):
        frontend = fixed_clock_frontend(database)
        with BackgroundServer(frontend) as background:
            conn = RawConnection(background.address)
            _, headers, _ = post_query(conn, self.REQUEST)
            etag = headers["etag"]
            listed = f'If-None-Match: "other", {etag}\r\n'.encode()
            status, _, _ = post_query(conn, self.REQUEST, listed)
            assert status == 304
            status, _, _ = post_query(conn, self.REQUEST, b"If-None-Match: *\r\n")
            assert status == 304
            conn.close()

    def test_client_poll_uses_304s(self, database):
        frontend = fixed_clock_frontend(database)
        with BackgroundServer(frontend) as background:
            with SpotLightClient(*background.address) as client:
                first = client.poll("rejection-rate", {})
                second = client.poll("rejection-rate", {})
                third = client.poll("rejection-rate", {})
                assert first == second == third
                assert client.polls_not_modified == 2
            assert background.server.stats()["not_modified"] == 2

    def test_error_responses_carry_no_etag(self, database):
        frontend = fixed_clock_frontend(database)
        with BackgroundServer(frontend) as background:
            conn = RawConnection(background.address)
            status, headers, _ = post_query(
                conn, {"query": "no-such-query", "params": {}}
            )
            assert status == 400
            assert "etag" not in headers
            conn.close()

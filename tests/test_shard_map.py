"""Tests for the deterministic catalog shard map and filtered loading.

The shard map is the contract the whole sharded tier stands on: every
process — shard workers, the router, direct-routing clients — computes
ownership independently, so the map must be a pure function of the
market and the shard count, partition the catalog completely and
disjointly, and collapse to the unsharded world at N=1.
"""

from __future__ import annotations

import pytest

from repro.core.database import ProbeDatabase
from repro.core.datastore import SnapshotDatastore
from repro.core.market_id import MarketID
from repro.core.records import (
    OUTCOME_FULFILLED,
    PriceRecord,
    ProbeKind,
    ProbeRecord,
    ProbeTrigger,
)
from repro.core.shard import ShardMap

MARKETS = [
    MarketID(zone, itype, product)
    for zone in ("us-east-1a", "us-east-1b", "eu-west-1a", "ap-south-1b")
    for itype in ("m3.medium", "m3.large", "c3.large", "r3.xlarge")
    for product in ("Linux/UNIX", "Windows")
]


def _records_for(market: MarketID):
    yield PriceRecord(0.0, market, 0.05)
    yield PriceRecord(300.0, market, 0.07)


class TestShardMap:
    def test_owner_is_deterministic_and_in_range(self):
        shard_map = ShardMap(5)
        for market in MARKETS:
            owner = shard_map.owner(market)
            assert 0 <= owner < 5
            # Recomputed by an independent instance (another process).
            assert ShardMap(5).owner(market) == owner
            # String and MarketID forms hash identically — clients
            # route by the wire-format string.
            assert shard_map.owner(str(market)) == owner

    def test_partition_is_complete_and_disjoint(self):
        shard_map = ShardMap(4)
        filters = [shard_map.filter(shard) for shard in range(4)]
        for market in MARKETS:
            owners = [shard for shard, f in enumerate(filters) if f(market)]
            assert owners == [shard_map.owner(market)]

    def test_hash_spreads_markets_across_shards(self):
        shard_map = ShardMap(4)
        assignments = shard_map.assignments(MARKETS)
        # All four shards get some of the 32 markets (a pathologically
        # unbalanced hash would defeat the point of sharding).
        assert set(assignments) == {0, 1, 2, 3}

    def test_assignments_preserve_input_order(self):
        shard_map = ShardMap(3)
        assignments = shard_map.assignments(MARKETS)
        for shard, members in assignments.items():
            expected = [m for m in MARKETS if shard_map.owner(m) == shard]
            assert members == expected

    def test_single_shard_owns_everything(self):
        shard_map = ShardMap(1)
        assert all(shard_map.owner(m) == 0 for m in MARKETS)
        assert all(shard_map.filter(0)(m) for m in MARKETS)

    def test_epoch_defaults_to_shard_count(self):
        assert ShardMap(3).epoch == 3
        assert ShardMap(3, epoch=17).epoch == 17

    def test_dict_round_trip(self):
        shard_map = ShardMap(6, epoch=9)
        restored = ShardMap.from_dict(shard_map.to_dict())
        assert restored == shard_map
        assert restored.epoch == 9
        assert shard_map.to_dict()["strategy"] == "hash"

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ShardMap(0)
        with pytest.raises(ValueError):
            ShardMap.from_dict({"strategy": "range", "shards": 2, "epoch": 2})
        with pytest.raises(ValueError):
            ShardMap(3).filter(3)


class TestFilteredDatabase:
    def test_filter_drops_foreign_markets_on_insert(self):
        shard_map = ShardMap(3)
        shard = 1
        db = ProbeDatabase(market_filter=shard_map.filter(shard))
        for market in MARKETS:
            for record in _records_for(market):
                db.insert_price(record)
            db.insert_probe(
                ProbeRecord(
                    time=0.0, market=market, kind=ProbeKind.ON_DEMAND,
                    trigger=ProbeTrigger.RECOVERY, outcome=OUTCOME_FULFILLED,
                )
            )
        owned = [m for m in MARKETS if shard_map.owner(m) == shard]
        assert db.markets == sorted(owned)

    def test_market_added_mid_study_lands_on_owning_shard(self):
        shard_map = ShardMap(3)
        databases = [
            ProbeDatabase(market_filter=shard_map.filter(shard))
            for shard in range(3)
        ]
        new_market = MarketID("sa-east-1a", "i2.xlarge", "Linux/UNIX")
        owner = shard_map.owner(new_market)
        for db in databases:  # every shard sees the same insert stream
            db.insert_price(PriceRecord(100.0, new_market, 0.3))
        for shard, db in enumerate(databases):
            assert (new_market in db.markets) == (shard == owner)

    def test_unfiltered_database_owns_everything(self):
        db = ProbeDatabase()
        assert all(db.owns(m) for m in MARKETS)


class TestFilteredSnapshot:
    @pytest.fixture(scope="class")
    def snapshot(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("shards") / "state"
        store = SnapshotDatastore(path)
        for market in MARKETS:
            for record in _records_for(market):
                store.insert_price(record)
            store.insert_probe(
                ProbeRecord(
                    time=0.0, market=market, kind=ProbeKind.ON_DEMAND,
                    trigger=ProbeTrigger.RECOVERY, outcome=OUTCOME_FULFILLED,
                )
            )
        store.save()
        store.close()
        return path

    def test_filtered_load_builds_exactly_one_shards_slice(self, snapshot):
        shard_map = ShardMap(3)
        seen: list[MarketID] = []
        for shard in range(3):
            store = SnapshotDatastore(
                snapshot, append_log=False, must_exist=True,
                market_filter=shard_map.filter(shard),
            )
            expected = sorted(
                m for m in MARKETS if shard_map.owner(m) == shard
            )
            assert store.markets == expected
            seen.extend(store.markets)
            store.close()
        # Together the filtered loads partition the full snapshot.
        assert sorted(seen) == sorted(MARKETS)

    def test_shard_filter_keeps_foreign_records_out_of_the_wal(
        self, snapshot, tmp_path
    ):
        shard_map = ShardMap(2)
        root = tmp_path / "shard0"
        store = SnapshotDatastore(root, market_filter=shard_map.filter(0))
        mine = next(m for m in MARKETS if shard_map.owner(m) == 0)
        foreign = next(m for m in MARKETS if shard_map.owner(m) == 1)
        store.insert_price(PriceRecord(10.0, mine, 0.1))
        store.insert_price(PriceRecord(10.0, foreign, 0.1))
        store.close()
        # Reload without any filter: only the owned record made it to
        # disk — a shard's directory holds only its own slice.
        reloaded = SnapshotDatastore(root)
        assert reloaded.markets == [mine]
        reloaded.close()

    def test_n_equals_one_filter_load_matches_unfiltered(self, snapshot):
        filtered = SnapshotDatastore(
            snapshot, append_log=False, must_exist=True,
            market_filter=ShardMap(1).filter(0),
        )
        plain = SnapshotDatastore(snapshot, append_log=False, must_exist=True)
        assert filtered.markets == plain.markets
        assert len(filtered) == len(plain)
        filtered.close()
        plain.close()

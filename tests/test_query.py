"""Unit tests for the query API over a hand-built database."""

import pytest

from repro.core.database import ProbeDatabase
from repro.core.market_id import MarketID
from repro.core.query import SpotLightQuery
from repro.core.records import (
    OUTCOME_FULFILLED,
    PriceRecord,
    ProbeKind,
    ProbeRecord,
    ProbeTrigger,
)
from repro.ec2.catalog import default_catalog

M1 = MarketID("us-east-1a", "m3.large", "Linux/UNIX")
M2 = MarketID("us-east-1b", "m3.large", "Linux/UNIX")

REJ = "InsufficientInstanceCapacity"


@pytest.fixture()
def query():
    db = ProbeDatabase()
    # M1 prices: 0.02 for [0, 1000), 0.5 for [1000, 2000), 0.02 after.
    db.insert_price(PriceRecord(0.0, M1, 0.02))
    db.insert_price(PriceRecord(1000.0, M1, 0.5))
    db.insert_price(PriceRecord(2000.0, M1, 0.02))
    db.insert_price(PriceRecord(3000.0, M1, 0.02))
    # M2: flat and cheap.
    db.insert_price(PriceRecord(0.0, M2, 0.01))
    db.insert_price(PriceRecord(3000.0, M2, 0.01))
    # M1 on-demand: unavailable in [500, 800).
    for t, outcome in [(0.0, OUTCOME_FULFILLED), (500.0, REJ), (800.0, OUTCOME_FULFILLED)]:
        db.insert_probe(
            ProbeRecord(
                time=t, market=M1, kind=ProbeKind.ON_DEMAND,
                trigger=ProbeTrigger.RECOVERY, outcome=outcome,
            )
        )
    return SpotLightQuery(db, default_catalog())


def test_on_demand_price_lookup(query):
    assert query.on_demand_price(M1) == pytest.approx(0.133)


def test_availability_accounts_measured_periods(query):
    availability = query.availability(M1, start=0.0, end=1000.0)
    assert availability == pytest.approx(1.0 - 300.0 / 1000.0)


def test_availability_of_clean_market_is_one(query):
    assert query.availability(M2, start=0.0, end=1000.0) == 1.0


def test_is_unavailable_at(query):
    assert query.is_unavailable_at(M1, 600.0)
    assert not query.is_unavailable_at(M1, 900.0)


def test_availability_at_bid(query):
    # Price <= 0.1 for 2000 of 3000 seconds.
    assert query.availability_at_bid(M1, 0.1) == pytest.approx(2000.0 / 3000.0)
    assert query.availability_at_bid(M1, 1.0) == 1.0


def test_mean_time_to_revocation(query):
    # Runs below 0.1: [0,1000) and [2000,3000) -> mean 1000 s.
    assert query.mean_time_to_revocation(M1, 0.1) == pytest.approx(1000.0)
    # A bid above every price never revokes: one run to the horizon.
    assert query.mean_time_to_revocation(M1, 1.0) == pytest.approx(3000.0)


def test_mean_price_is_time_weighted(query):
    expected = (0.02 * 1000 + 0.5 * 1000 + 0.02 * 1000) / 3000
    assert query.mean_price(M1) == pytest.approx(expected)


def test_spike_multiples_use_on_demand_price(query):
    series = query.spike_multiples(M1)
    od = query.on_demand_price(M1)
    assert series[1] == (1000.0, pytest.approx(0.5 / od))


def test_top_stable_markets_prefers_flat_market(query):
    ranking = query.top_stable_markets(n=2, bid_multiple=1.0)
    assert ranking[0].market == M2  # flat, never revokes, cheaper
    assert ranking[0].mean_time_to_revocation >= ranking[1].mean_time_to_revocation


def test_top_stable_markets_region_filter(query):
    ranking = query.top_stable_markets(n=5, region="sa-east-1")
    assert ranking == []


def test_least_unavailable_markets_orders_by_downtime(query):
    ranked = query.least_unavailable_markets([M1, M2])
    assert ranked[0] == (M2, 0.0)
    assert ranked[1][0] == M1
    assert ranked[1][1] == pytest.approx(300.0)


def test_rejection_rate_passthrough(query):
    assert query.rejection_rate(market=M1) == pytest.approx(1.0 / 3.0)

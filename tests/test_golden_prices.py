"""Golden regression tests for the vectorized simulation core.

Three guarantees the vectorization must not break:

* **Determinism** — two runs with the same seed produce byte-identical
  price series (checksummed per market).
* **Path equivalence** — the vectorized batch clearing and the scalar
  reference path (``vectorized_demand=False``) produce identical
  series: both draw the same RNG blocks and build the same bid stacks,
  so any divergence is a bug in the batch auction math.
* **Goldens** — the per-market checksums of a pinned seeded run match
  the checked-in golden file, so a refactor cannot silently change the
  price series behind the paper's figures.  Regenerate with
  ``REPRO_UPDATE_GOLDENS=1`` after an *intentional* model change and
  commit the diff.

The golden comparison is exact within one platform/numpy build; libm
differences across platforms can shift the last float ulp, which is why
the regeneration escape hatch exists.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro import EC2Simulator, FleetConfig
from repro.ec2.catalog import small_catalog

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_prices.json"
GOLDEN_SEED = 1234
GOLDEN_DAY = 86400.0


def _golden_sim(vectorized: bool = True) -> EC2Simulator:
    catalog = small_catalog(regions=["us-east-1", "sa-east-1"], families=["m3"])
    sim = EC2Simulator(
        FleetConfig(
            catalog=catalog,
            seed=GOLDEN_SEED,
            tick_interval=300.0,
            vectorized_demand=vectorized,
        )
    )
    sim.run_for(GOLDEN_DAY)
    return sim


def _checksums(sim: EC2Simulator) -> dict[str, str]:
    out = {}
    for key, market in sim.markets.items():
        payload = repr(market.price_history()).encode()
        out["/".join(key)] = hashlib.sha256(payload).hexdigest()
    return out


@pytest.fixture(scope="module")
def golden_run() -> dict[str, str]:
    return _checksums(_golden_sim())


def test_seeded_run_is_deterministic(golden_run):
    again = _checksums(_golden_sim())
    assert golden_run == again


def test_scalar_and_vectorized_paths_match(golden_run):
    scalar = _checksums(_golden_sim(vectorized=False))
    mismatched = [k for k in golden_run if golden_run[k] != scalar.get(k)]
    assert scalar.keys() == golden_run.keys()
    assert mismatched == []


def test_price_series_match_goldens(golden_run):
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(golden_run, indent=1, sort_keys=True))
        pytest.skip("goldens regenerated")
    assert GOLDEN_PATH.exists(), (
        "golden file missing; regenerate with REPRO_UPDATE_GOLDENS=1"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    changed = sorted(k for k in golden if golden[k] != golden_run.get(k))
    assert golden_run == golden, (
        f"{len(changed)} market series changed (first: {changed[:3]}); if the "
        "model change is intentional, rerun with REPRO_UPDATE_GOLDENS=1 and "
        "commit the new goldens"
    )


def test_run_is_deterministic_across_chunked_stepping():
    """run_for in chunks must equal one straight run (event coalescing
    must not depend on the observation pattern)."""
    whole = _checksums(_golden_sim())
    catalog = small_catalog(regions=["us-east-1", "sa-east-1"], families=["m3"])
    sim = EC2Simulator(
        FleetConfig(catalog=catalog, seed=GOLDEN_SEED, tick_interval=300.0)
    )
    for _ in range(24):
        sim.run_for(GOLDEN_DAY / 24)
    assert _checksums(sim) == whole

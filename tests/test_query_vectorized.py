"""Golden equivalence tests for the vectorized read path.

Mirrors the PR-1 contract for the simulation core: the columnar
read-side index must answer exactly what the scalar reference path
answers.

* **Single-market queries** (availability, periods, point lookups,
  price metrics, rejection rates) must be **byte-equal**: the
  vectorized path runs the same formulas over the same floats, just
  read from cached columnar snapshots.
* **The stacked ranking kernel** must produce the identical market
  ordering, with metric values equal to float round-off (its segment
  reductions sum in a different — segment-local — order than the
  per-market reference reductions, which can move the last ulp).
* **Incremental invalidation**: appending records refreshes the index;
  a stale view is never served.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.database import ProbeDatabase
from repro.core.market_id import MarketID
from repro.core.query import SpotLightQuery
from repro.core.records import (
    OUTCOME_FULFILLED,
    PriceRecord,
    ProbeKind,
    ProbeRecord,
    ProbeTrigger,
)
from repro.ec2.catalog import default_catalog

REJECTED = "InsufficientInstanceCapacity"

ZONES = ["us-east-1a", "us-east-1b", "sa-east-1a", "ap-southeast-2a"]
TYPES = ["m3.medium", "m3.large", "c3.large"]

#: The stacked kernel reduces per segment (np.add.reduceat) while the
#: reference reduces per market (pairwise np.sum / BLAS dot); both are
#: correct to the ulp, so ranking *metrics* are compared at round-off
#: tolerance while ranking *order* must match exactly.
KERNEL_REL_TOL = 1e-9
KERNEL_ABS_TOL = 1e-12


def kernel_close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=KERNEL_REL_TOL, abs_tol=KERNEL_ABS_TOL)


def build_database(seed: int) -> tuple[ProbeDatabase, list[MarketID]]:
    """A randomized probe/price log covering the edge shapes: price-only
    markets, probe-only markets, single-sample series, flat series that
    tie exactly, open trailing rejection runs, and both probe kinds."""
    rng = np.random.default_rng(seed)
    catalog = default_catalog()
    db = ProbeDatabase()
    markets = [
        MarketID(zone, itype, "Linux/UNIX") for zone in ZONES for itype in TYPES
    ]
    for i, market in enumerate(markets):
        od = catalog.on_demand_price(
            market.instance_type, market.region, market.product
        )
        # Price series; markets i % 5 == 0 record no prices at all, and
        # the last two markets share one flat series (an exact tie).
        if i % 5:
            if i >= len(markets) - 2:
                samples = [(600.0 * s, od * 0.31) for s in range(10)]
            else:
                count = int(rng.integers(1, 45))
                t = 0.0
                samples = []
                for _ in range(count):
                    t += float(rng.exponential(700.0))
                    samples.append((t, od * float(rng.uniform(0.08, 2.6))))
            for t, price in samples:
                db.insert_price(PriceRecord(t, market, price))
        # Probe sequences; markets i % 4 == 0 record none.
        if i % 4:
            t = 0.0
            for _ in range(int(rng.integers(1, 30))):
                t += float(rng.exponential(900.0))
                kind = (
                    ProbeKind.ON_DEMAND
                    if rng.random() < 0.7
                    else ProbeKind.SPOT
                )
                outcome = (
                    REJECTED if rng.random() < 0.45 else OUTCOME_FULFILLED
                )
                db.insert_probe(
                    ProbeRecord(
                        time=t, market=market, kind=kind,
                        trigger=ProbeTrigger.RECOVERY, outcome=outcome,
                    )
                )
    return db, markets


@pytest.fixture(params=[0, 1, 2])
def engines(request):
    db, markets = build_database(request.param)
    catalog = default_catalog()
    return (
        SpotLightQuery(db, catalog, vectorized=True),
        SpotLightQuery(db, catalog, vectorized=False),
        db,
        markets,
    )


WINDOWS = [(0.0, None), (0.0, 6000.0), (1500.0, 20000.0), (3000.0, None)]


def test_single_market_queries_byte_equal(engines):
    vectorized, reference, _, markets = engines
    for market in markets:
        for kind in ProbeKind:
            for start, end in WINDOWS:
                assert vectorized.availability(market, kind, start, end) == (
                    reference.availability(market, kind, start, end)
                )
            for horizon in (None, 50000.0):
                assert vectorized.unavailability_periods(
                    market, kind, horizon
                ) == reference.unavailability_periods(market, kind, horizon)
            for when in (400.0, 2500.0, 9000.0, 1e6):
                assert vectorized.is_unavailable_at(market, when, kind) == (
                    reference.is_unavailable_at(market, when, kind)
                )
            assert vectorized.rejection_rate(market, kind) == (
                reference.rejection_rate(market, kind)
            )
        for bid in (0.02, 0.15, 0.9):
            assert vectorized.availability_at_bid(market, bid) == (
                reference.availability_at_bid(market, bid)
            )
            assert vectorized.mean_time_to_revocation(market, bid) == (
                reference.mean_time_to_revocation(market, bid)
            )
        for start, end in WINDOWS:
            assert vectorized.mean_price(market, start, end) == (
                reference.mean_price(market, start, end)
            )
        assert vectorized.spike_multiples(market) == (
            reference.spike_multiples(market)
        )
    assert vectorized.rejection_rate() == reference.rejection_rate()


def test_global_period_list_and_rankings_match(engines):
    vectorized, reference, _, markets = engines
    for kind in ProbeKind:
        assert vectorized.unavailability_periods(kind=kind) == (
            reference.unavailability_periods(kind=kind)
        )
    assert vectorized.least_unavailable_markets(markets) == (
        reference.least_unavailable_markets(markets)
    )
    assert vectorized.least_unavailable_markets(markets, horizon=40000.0) == (
        reference.least_unavailable_markets(markets, horizon=40000.0)
    )


def test_duration_stack_matches_period_objects(engines):
    _, _, db, _ = engines
    for kind in ProbeKind:
        for horizon in (None, 60000.0):
            expected = [
                p.duration
                for p in db.unavailability_periods(kind=kind, horizon=horizon)
            ]
            got = db.unavailability_durations(kind, horizon).tolist()
            assert got == expected


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n": 1000},
        {"n": 1000, "bid_multiple": 0.4},
        {"n": 1000, "bid_multiple": 1.5, "start": 2000.0, "end": 15000.0},
        {"n": 1000, "region": "sa-east-1"},
    ],
)
def test_ranking_kernel_matches_reference(engines, kwargs):
    vectorized, reference, _, _ = engines
    fast = vectorized.top_stable_markets(**kwargs)
    slow = reference.top_stable_markets(**kwargs)
    assert [e.market for e in fast] == [e.market for e in slow]
    for a, b in zip(fast, slow):
        assert kernel_close(a.mean_time_to_revocation, b.mean_time_to_revocation)
        assert kernel_close(a.availability_at_bid, b.availability_at_bid)
        assert kernel_close(a.mean_price, b.mean_price)


def test_monitored_run_equivalence(monitored_run):
    """Realism check: a seeded simulator study answers identically on
    both paths (the synthetic logs above cannot stand in for the
    simulator's time/price distributions)."""
    simulator, spotlight = monitored_run
    db = spotlight.database
    vectorized = SpotLightQuery(db, simulator.catalog, vectorized=True)
    reference = SpotLightQuery(db, simulator.catalog, vectorized=False)
    fast = vectorized.top_stable_markets(n=10_000)
    slow = reference.top_stable_markets(n=10_000)
    assert [e.market for e in fast] == [e.market for e in slow]
    for a, b in zip(fast, slow):
        assert kernel_close(a.mean_time_to_revocation, b.mean_time_to_revocation)
        assert kernel_close(a.availability_at_bid, b.availability_at_bid)
        assert kernel_close(a.mean_price, b.mean_price)
    for market in list(db.markets)[::7]:
        assert vectorized.availability(market) == reference.availability(market)
        assert vectorized.unavailability_periods(market) == (
            reference.unavailability_periods(market)
        )


def test_availability_fetches_periods_once(engines, monkeypatch):
    """The reference path used to derive the default end from one fetch
    and then loop over a second; both paths now fetch at most once."""
    vectorized, reference, db, markets = engines
    calls = []
    original = type(db).unavailability_periods

    def counting(self, *args, **kwargs):
        calls.append((args, kwargs))
        return original(self, *args, **kwargs)

    monkeypatch.setattr(type(db), "unavailability_periods", counting)
    market = markets[1]
    reference.availability(market)
    assert len(calls) == 1
    calls.clear()
    reference.availability(market, end=5000.0)
    assert len(calls) == 1
    calls.clear()
    vectorized.availability(market)  # index path: no object fetch at all
    assert calls == []


class TestIncrementalInvalidation:
    def test_appends_refresh_views_and_results(self):
        db, markets = build_database(3)
        catalog = default_catalog()
        vectorized = SpotLightQuery(db, catalog, vectorized=True)
        market = markets[1]

        stack_before = db.read_index.price_stack()
        assert db.read_index.price_stack() is stack_before  # cached
        periods_before = db.read_index.period_columns(
            market, ProbeKind.ON_DEMAND
        )
        vectorized.top_stable_markets(n=5)
        vectorized.availability(market)

        horizon = 10_000_000.0
        db.insert_price(PriceRecord(horizon, market, 123.0))
        db.insert_probe(
            ProbeRecord(
                time=horizon, market=market, kind=ProbeKind.ON_DEMAND,
                trigger=ProbeTrigger.RECOVERY, outcome=REJECTED,
            )
        )

        stack_after = db.read_index.price_stack()
        assert stack_after is not stack_before
        assert len(stack_after.times) == len(stack_before.times) + 1
        periods_after = db.read_index.period_columns(
            market, ProbeKind.ON_DEMAND
        )
        assert periods_after is not periods_before
        assert periods_after.open_start == horizon

        # Results after the append equal a freshly built reference
        # engine: nothing stale is served.
        reference = SpotLightQuery(db, catalog, vectorized=False)
        assert vectorized.availability(market) == reference.availability(market)
        assert vectorized.unavailability_periods(market) == (
            reference.unavailability_periods(market)
        )
        fast = vectorized.top_stable_markets(n=1000)
        slow = reference.top_stable_markets(n=1000)
        assert [e.market for e in fast] == [e.market for e in slow]

    def test_unrelated_market_entries_stay_cached(self):
        db, markets = build_database(4)
        index = db.read_index
        untouched = markets[2]
        cached = index.period_columns(untouched, ProbeKind.ON_DEMAND)
        prices_cached = index.market_price_arrays(untouched)
        db.insert_probe(
            ProbeRecord(
                time=10_000_000.0, market=markets[1],
                kind=ProbeKind.ON_DEMAND, trigger=ProbeTrigger.RECOVERY,
                outcome=OUTCOME_FULFILLED,
            )
        )
        db.insert_price(PriceRecord(10_000_000.0, markets[1], 1.0))
        # Per-market entries of other markets survive the append ...
        assert index.period_columns(untouched, ProbeKind.ON_DEMAND) is cached
        assert index.market_price_arrays(untouched) is prices_cached
        # ... while the touched market's entries were dropped.
        assert index.period_columns(
            markets[1], ProbeKind.ON_DEMAND
        ).last_time == 10_000_000.0

    def test_probe_columns_track_appends(self):
        db, markets = build_database(5)
        columns = db.probe_columns()
        assert db.probe_columns() is columns  # cached until a write
        db.insert_probe(
            ProbeRecord(
                time=10_000_000.0, market=markets[0], kind=ProbeKind.SPOT,
                trigger=ProbeTrigger.PERIODIC, outcome="capacity-not-available",
            )
        )
        refreshed = db.probe_columns()
        assert refreshed is not columns
        assert len(refreshed) == len(columns) + 1
        assert refreshed.outcome_code("capacity-not-available") >= 0

"""Tests for the price-series analyses (Figures 5.1, 5.2, 5.3)."""

import pytest

from repro.analysis.efficiency import cross_zone_divergence, family_inversions
from repro.analysis.intrinsic import (
    IntrinsicSample,
    intrinsic_premium_summary,
    least_price_to_hold,
)
from repro.core.database import ProbeDatabase
from repro.core.market_id import MarketID
from repro.core.records import PriceRecord

SMALL = MarketID("us-east-1d", "c3.2xlarge", "Linux/UNIX")
LARGE = MarketID("us-east-1d", "c3.8xlarge", "Linux/UNIX")
ZONE_A = MarketID("us-east-1a", "c3.2xlarge", "Linux/UNIX")

UNITS = {"c3.2xlarge": 8, "c3.8xlarge": 32}


def make_db(small_prices, large_prices):
    db = ProbeDatabase()
    for t, p in small_prices:
        db.insert_price(PriceRecord(t, SMALL, p))
    for t, p in large_prices:
        db.insert_price(PriceRecord(t, LARGE, p))
    return db


class TestFamilyInversions:
    def test_detects_per_unit_inversion(self):
        # Small at $2 (0.25/unit), large at $4 (0.125/unit): inverted.
        db = make_db([(0.0, 2.0)], [(0.0, 4.0)])
        inversions = family_inversions(db, [SMALL, LARGE], UNITS, 900.0)
        assert inversions
        assert inversions[0].small_type == "c3.2xlarge"
        assert inversions[0].unit_ratio == pytest.approx(0.5)

    def test_no_inversion_when_prices_proportional(self):
        db = make_db([(0.0, 1.0)], [(0.0, 4.0)])  # equal per-unit price
        assert family_inversions(db, [SMALL, LARGE], UNITS, 900.0) == []

    def test_empty_series(self):
        db = ProbeDatabase()
        assert family_inversions(db, [SMALL, LARGE], UNITS) == []


class TestCrossZoneDivergence:
    def test_ratio_computed_per_sample(self):
        db = ProbeDatabase()
        db.insert_price(PriceRecord(0.0, SMALL, 0.5))
        db.insert_price(PriceRecord(0.0, ZONE_A, 0.1))
        series = cross_zone_divergence(db, [SMALL, ZONE_A], 900.0)
        assert series[0][1] == pytest.approx(5.0)

    def test_single_market_yields_nothing(self):
        db = ProbeDatabase()
        db.insert_price(PriceRecord(0.0, SMALL, 0.5))
        assert cross_zone_divergence(db, [SMALL], 900.0) == []


class TestLeastPriceToHold:
    EVENTS = [(0.0, 0.1), (3600.0, 0.5), (7200.0, 0.1), (36000.0, 0.1)]

    def test_hold_price_is_future_running_max(self):
        series = least_price_to_hold(self.EVENTS, horizon_hours=2.0, step=3600.0)
        by_time = dict(series)
        assert by_time[0.0] == pytest.approx(0.5)  # spike inside horizon
        assert by_time[7200.0] == pytest.approx(0.1)  # spike has passed

    def test_longer_horizons_cost_at_least_as_much(self):
        short = dict(least_price_to_hold(self.EVENTS, 1.0, step=3600.0))
        long = dict(least_price_to_hold(self.EVENTS, 6.0, step=3600.0))
        for t in short:
            assert long[t] >= short[t] - 1e-12

    def test_invalid_horizon_rejected(self):
        with pytest.raises(ValueError):
            least_price_to_hold(self.EVENTS, 0.0)

    def test_empty_events(self):
        assert least_price_to_hold([], 1.0) == []


class TestIntrinsicSummary:
    def test_summary_statistics(self):
        samples = [
            IntrinsicSample(0.0, 1.0, 1.0, 1),
            IntrinsicSample(1.0, 1.0, 1.2, 3),
            IntrinsicSample(2.0, 1.0, 1.5, 6),
        ]
        summary = intrinsic_premium_summary(samples)
        assert summary["count"] == 3
        assert summary["fraction_above_published"] == pytest.approx(2 / 3)
        assert summary["max_premium"] == pytest.approx(0.5)
        assert summary["max_requests"] == 6

    def test_empty_samples(self):
        assert intrinsic_premium_summary([])["count"] == 0
